"""Synthetic "core library" corpus generator.

The paper's pattern counts come from "a core library at Google which
consists of approximately 80 complex C++ files containing many inline
assembly sequences".  This generator synthesizes an assembly corpus with
the same pattern populations, seeded and scalable:

* ~1000 redundant zero-extension sites (§III.B.a), of which ~7% are shaped
  so a conservative pass must skip them (MAO's prototype "catches more
  than 90% of the opportunities handled by the compiler");
* 79763 test instructions of which 19272 (24%) are redundant (§III.B.b);
* 13362 redundant memory-access pairs (§III.B.c);
* add/add immediate sequences (§III.B.d);
* 320 indirect branches: 74 resolvable from the branch operand alone,
  242 more through the reaching-definitions pattern, 4 genuinely hard
  (§II's 246/320 -> 4/320 anecdote).

``scale`` multiplies every population (the shape statistics — ratios,
catch rates — are scale-invariant).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.ir import MaoUnit, parse_unit

#: Paper populations at scale=1.0.
PAPER_ZEXT = 1000
PAPER_TESTS_TOTAL = 79763
PAPER_TESTS_REDUNDANT = 19272
PAPER_REDMOV = 13362
PAPER_INDIRECT = 320
PAPER_INDIRECT_TIER1 = 74      # resolved by the base operand pattern
PAPER_INDIRECT_TIER2 = 242     # resolved via reaching definitions
PAPER_INDIRECT_HARD = 4        # remain unresolved


@dataclass
class CorpusConfig:
    seed: int = 0
    scale: float = 0.05
    #: average filler instructions between injected patterns
    filler_run: int = 6
    functions: int = 0            # 0 = derive from scale (~80 files worth)
    #: generate only the indirect-branch population (fast CFG benches)
    indirect_only: bool = False

    def count(self, paper_value: int) -> int:
        return max(1, round(paper_value * self.scale))


_FILLER_TEMPLATES = [
    "movq {r1}, {r2}",
    "addq {r1}, {r2}",
    "subq $%d, {r2}" % 24,
    "leaq 8({r1}), {r2}",
    "movl ({r1}), {e2}",
    "movl {e1}, -24(%rsp)",
    "imulq {r1}, {r2}",
    "xorl {e1}, {e2}",
    "shrq $3, {r2}",
    "cmpq {r1}, {r2}",
    "movzbl ({r1}), {e2}",
]

_REGS = ["rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"]
_EREGS = ["eax", "ecx", "edx", "esi", "edi", "r8d", "r9d", "r10d", "r11d"]


class _FunctionBuilder:
    def __init__(self, name: str, rng: random.Random) -> None:
        self.name = name
        self.rng = rng
        self.lines: List[str] = []
        self.label_counter = 0

    def new_label(self) -> str:
        self.label_counter += 1
        return ".L%s_%d" % (self.name, self.label_counter)

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(label + ":")

    def filler(self, count: int) -> None:
        for _ in range(count):
            template = self.rng.choice(_FILLER_TEMPLATES)
            i1, i2 = self.rng.sample(range(len(_REGS)), 2)
            self.emit(template.format(
                r1="%" + _REGS[i1], r2="%" + _REGS[i2],
                e1="%" + _EREGS[i1], e2="%" + _EREGS[i2]))

    # ---- pattern injectors ------------------------------------------------

    def redundant_zext(self, removable: bool) -> None:
        index = self.rng.randrange(len(_EREGS))
        ereg = "%" + _EREGS[index]
        if removable:
            self.emit("andl $255, %s" % ereg)
            self.emit("mov %s, %s" % (ereg, ereg))
        else:
            # The zero-extension happens in another block: a conservative
            # block-local pass cannot prove the 32-bit def dominates.
            skip = self.new_label()
            self.emit("testq %rbx, %rbx")
            self.emit("je %s" % skip)
            self.emit("andl $255, %s" % ereg)
            self.emit_label(skip)
            self.emit("mov %s, %s" % (ereg, ereg))

    def test_instruction(self, redundant: bool) -> None:
        index = self.rng.randrange(len(_EREGS))
        ereg = "%" + _EREGS[index]
        target = self.new_label()
        if redundant:
            self.emit("subl $%d, %s" % (self.rng.randint(1, 64), ereg))
            self.emit("testl %s, %s" % (ereg, ereg))
            self.emit("je %s" % target)
        else:
            # A load doesn't set flags, so this test is necessary.
            self.emit("movl (%rsp), " + ereg)
            self.emit("testl %s, %s" % (ereg, ereg))
            self.emit("js %s" % target)
        self.filler(1)
        self.emit_label(target)

    def redundant_memmove(self) -> None:
        i1, i2 = self.rng.sample(range(len(_REGS)), 2)
        disp = self.rng.choice([8, 16, 24, 32, 40])
        self.emit("movq %d(%%rsp), %%%s" % (disp, _REGS[i1]))
        self.emit("movq %d(%%rsp), %%%s" % (disp, _REGS[i2]))

    def add_add(self) -> None:
        index = self.rng.randrange(len(_REGS))
        reg = "%" + _REGS[index]
        self.emit("addq $%d, %s" % (self.rng.randint(1, 50), reg))
        self.emit("addq $%d, %s" % (self.rng.randint(1, 50), reg))

    def short_loop(self) -> None:
        head = self.new_label()
        self.emit("movl $%d, %%ecx" % self.rng.randint(4, 16))
        self.emit_label(head)
        self.filler(self.rng.randint(1, 3))
        self.emit("subl $1, %ecx")
        self.emit("jne %s" % head)

    def indirect_branch(self, tier: int, table_label: str,
                        case_labels: List[str]) -> None:
        """Emit an indirect jump of the given resolution tier."""
        done = self.new_label()
        self.emit("andl $%d, %%eax" % (len(case_labels) - 1))
        if tier == 1:
            self.emit("jmp *%s(,%%rax,8)" % table_label)
        elif tier == 2:
            self.emit("leaq %s(%%rip), %%rdx" % table_label)
            self.emit("movq (%rdx,%rax,8), %rcx")
            self.emit("jmp *%rcx")
        else:
            # Hard: the table pointer is merged from two definitions in
            # different predecessors — no unique reaching definition.
            alt = self.new_label()
            join = self.new_label()
            self.emit("andl $1, %eax")    # keep the shifted index in range
            self.emit("testq %rbx, %rbx")
            self.emit("je %s" % alt)
            self.emit("leaq %s(%%rip), %%rdx" % table_label)
            self.emit("jmp %s" % join)
            self.emit_label(alt)
            self.emit("leaq 8+%s(%%rip), %%rdx" % table_label)
            self.emit_label(join)
            self.emit("movq (%rdx,%rax,8), %rcx")
            self.emit("jmp *%rcx")
        for label in case_labels:
            self.emit_label(label)
            self.filler(2)
            self.emit("jmp %s" % done)
        self.emit_label(done)

    def render(self) -> str:
        header = [
            ".globl %s" % self.name,
            ".type %s, @function" % self.name,
            "%s:" % self.name,
            "    push %rbp",
            "    push %rbx",
        ]
        footer = [
            "    pop %rbx",
            "    pop %rbp",
            "    ret",
            "    .size %s, .-%s" % (self.name, self.name),
        ]
        return "\n".join(header + self.lines + footer)


def generate_corpus(config: CorpusConfig) -> MaoUnit:
    """Generate the corpus and parse it into a MaoUnit."""
    return parse_unit(generate_corpus_text(config))


def generate_corpus_text(config: CorpusConfig) -> str:
    rng = random.Random(config.seed)

    if config.indirect_only:
        n_zext = n_zext_hard = n_tests_red = n_tests_ok = 0
        n_redmov = n_addadd = 0
    else:
        n_zext = config.count(PAPER_ZEXT)
        n_zext_hard = max(1, round(n_zext * 0.07))
        n_tests_red = config.count(PAPER_TESTS_REDUNDANT)
        n_tests_ok = config.count(PAPER_TESTS_TOTAL - PAPER_TESTS_REDUNDANT)
        n_redmov = config.count(PAPER_REDMOV)
        n_addadd = config.count(2000)
    n_ind1 = config.count(PAPER_INDIRECT_TIER1)
    n_ind2 = config.count(PAPER_INDIRECT_TIER2)
    n_ind3 = min(PAPER_INDIRECT_HARD, config.count(PAPER_INDIRECT_HARD))

    jobs: List[str] = (["zext"] * (n_zext - n_zext_hard)
                       + ["zext_hard"] * n_zext_hard
                       + ["test_red"] * n_tests_red
                       + ["test_ok"] * n_tests_ok
                       + ["redmov"] * n_redmov
                       + ["addadd"] * n_addadd
                       + ["ind1"] * n_ind1
                       + ["ind2"] * n_ind2
                       + ["ind3"] * n_ind3)
    rng.shuffle(jobs)

    n_functions = config.functions or max(4, len(jobs) // 120)
    per_function = [jobs[i::n_functions] for i in range(n_functions)]

    chunks: List[str] = [".text"]
    tables: List[str] = []
    table_id = 0
    for index, function_jobs in enumerate(per_function):
        builder = _FunctionBuilder("corpus_fn_%03d" % index, rng)
        builder.filler(rng.randint(2, config.filler_run))
        if rng.random() < 0.4:
            builder.short_loop()
        for job in function_jobs:
            if job == "zext":
                builder.redundant_zext(removable=True)
            elif job == "zext_hard":
                builder.redundant_zext(removable=False)
            elif job == "test_red":
                builder.test_instruction(redundant=True)
            elif job == "test_ok":
                builder.test_instruction(redundant=False)
            elif job == "redmov":
                builder.redundant_memmove()
            elif job == "addadd":
                builder.add_add()
            elif job in ("ind1", "ind2", "ind3"):
                table_id += 1
                table = ".Ljt%d" % table_id
                cases = [builder.new_label() for _ in range(4)]
                tier = {"ind1": 1, "ind2": 2, "ind3": 3}[job]
                builder.indirect_branch(tier, table, cases)
                tables.append("\n".join(
                    [".align 8", "%s:" % table]
                    + ["    .quad %s" % c for c in cases]))
            builder.filler(rng.randint(1, config.filler_run))
        chunks.append(builder.render())

    source = "\n".join(chunks)
    if tables:
        source += "\n.section .rodata\n" + "\n".join(tables) + "\n"
    return source + "\n"
