"""The paper's named anecdote kernels.

Each function returns complete assembly source (AT&T) for a ``main``
program exercising one documented performance cliff:

* :func:`mcf_fig1` — the 181.mcf unrolled loop of Fig. 1, where a single
  NOP before ``.L5`` de-aliases two branches in one predictor bucket.
* :func:`eon_loop` — the 252.eon short FP loop of §III.C.e that crosses a
  16-byte decode boundary unless aligned.
* :func:`fig4_loop` — the three-block loop of Figs. 4/5 spanning six
  decode lines until NOP-shifted into four.
* :func:`hash_bench` — the §III.F hashing kernel whose fan-out ordering
  hits the forwarding-bandwidth limit.
* :func:`nested_short_loops` — §III.C.g: two short-running loops whose
  back branches share one 32-byte predictor bucket.
"""

from __future__ import annotations


def mcf_fig1(insert_nop: bool = False, pad: int = 0,
             outer: int = 400, inner: int = 100) -> str:
    """Fig. 1: byte-extend/copy loop unrolled twice.

    The hot backward branch ``jg .L3`` is followed closely by the backward
    branch of a short-running scan loop (trip count 1 — never taken).
    With the right code placement (``pad``; see :func:`find_fig1_pad`)
    both branches fall into one ``PC >> 5`` predictor bucket and the
    always-taken ``jg`` history destroys the never-taken branch's
    prediction.  ``insert_nop`` places the paper's single NOP before
    ``.L5``; the one-byte shift pushes the scan branch across the bucket
    boundary (the mysterious 5% of Fig. 1).
    """
    nop = "    nop\n" if insert_nop else ""
    padding = "\n".join("    nop" for _ in range(pad))
    return f"""
.text
.globl main
.type main, @function
main:
    push %rbp
    push %rbx
    movq ${outer}, %rbx
    leaq src(%rip), %rdi
    leaq dst(%rip), %rsi
{padding}
.Louter:
    xorq %r8, %r8
    movl ${inner}, %r9d
.L3:
    movsbl 1(%rdi,%r8,4),%edx
    movsbl (%rdi,%r8,4),%eax
    addl %eax, %edx
    movl %edx, (%rsi,%r8,4)
    addq $1, %r8
{nop}.L5:
    movsbl 1(%rdi,%r8,4),%edx
    movsbl (%rdi,%r8,4),%eax
    addl %eax, %edx
    movl %edx, (%rsi,%r8,4)
    addq $1, %r8
    cmpl %r8d, %r9d
    jg .L3
    # Short-running scan loop: its backward branch is never taken.
    movl $1, %ecx
.Lscan:
    subl $1, %ecx
    jne .Lscan
    subq $1, %rbx
    jne .Louter
    pop %rbx
    pop %rbp
    ret
.section .data
src:
    .zero 1024
dst:
    .zero 1024
"""


def find_fig1_pad(model=None, search: int = 16,
                  outer: int = 30) -> int:
    """Find the code placement where Fig. 1's aliasing actually occurs.

    Mirrors how such cliffs are discovered in practice (the paper found
    this one by accident): slide the function and keep the placement
    where inserting the single NOP gives the largest win.
    """
    from repro.ir import parse_unit
    from repro.uarch.pipeline import simulate_unit
    from repro.uarch.profiles import core2

    model = model or core2()
    best_pad, best_gain = 0, 0.0
    for pad in range(search):
        results = []
        for nop in (False, True):
            unit = parse_unit(mcf_fig1(nop, pad=pad, outer=outer))
            results.append(simulate_unit(unit, model)[1].cycles)
        gain = results[0] / results[1] - 1.0
        if gain > best_gain:
            best_pad, best_gain = pad, gain
    return best_pad


def eon_loop(pre_bytes: int = 0, trip: int = 8, outer: int = 600,
             aligned: bool = False) -> str:
    """§III.C.e: the four-instruction movss loop from 252.eon.

    ``pre_bytes`` single-byte NOPs ahead of the loop move its start
    relative to the 16-byte decode grid; with the wrong offset the
    17-byte body needs an extra fetch line every iteration.  ``aligned``
    emits the ``.p2align 4`` the LOOP16 pass would insert.
    """
    pre = "\n".join("    nop" for _ in range(pre_bytes))
    align = "    .p2align 4\n" if aligned else ""
    return f"""
.text
.globl main
.type main, @function
main:
    push %rbx
    movq ${outer}, %rbx
    leaq buf(%rip), %rdi
    xorps %xmm0, %xmm0
{pre}
.Louter:
    xorq %rax, %rax
{align}.Lloop:
    movss %xmm0,(%rdi,%rax,4)
    addq $1, %rax
    cmpq ${trip}, %rax
    jne .Lloop
    subq $1, %rbx
    jne .Louter
    pop %rbx
    ret
.section .bss
.align 16
buf:
    .zero 4096
"""


def fig4_loop(shift_nops: int = 0, iterations: int = 2000,
              misalign: int = 10) -> str:
    """Figs. 4/5: a three-basic-block loop spread over too many decode
    lines.

    With the initial placement (``misalign`` bytes off the line grid) the
    ~60-byte body straddles more 16-byte decode lines than the Loop
    Stream Detector's budget, so every iteration pays the full fetch
    cost.  ``shift_nops=6`` (the paper's six NOPs) moves the body onto
    the grid; it then spans four lines only and streams from the LSD —
    the paper's factor-of-two.
    """
    pre = "\n".join("    nop" for _ in range(misalign))
    shift = "\n".join("    nop" for _ in range(shift_nops))
    return f"""
.text
.globl main
.type main, @function
main:
    push %rbx
    xorl %r10d, %r10d
    xorl %r8d, %r8d
    xorl %r9d, %r9d
    xorl %esi, %esi
    movl $1, %ecx
    movl $2, %edx
    .p2align 4
{pre}
{shift}
.Ll0:
    cmpl %ecx, %edx
    jne .Ll1
.Ll1:
    addl $0x7, %r8d
    addl $0x5, %r9d
    addl $0x2, %edi
    cmpl %r8d, %r9d
    jne .Ll2
.Ll2:
    addl $0x1, %r10d
    addl $0x9, %r8d
    addl $0x3, %r9d
    addl $0x1, %esi
    addl $0x3, %ebx
    addl $0x4, %eax
    addl $0x1, %ecx
    addl $0x2, %edx
    cmpl ${iterations}, %r10d
    jl .Ll0
    pop %rbx
    ret
"""


def hash_bench(scheduled: bool = False, trip: int = 3000) -> str:
    """§III.F: the hashing kernel with a high-fan-out xor.

    ``xorl %edi, %ebx`` feeds three consumers; with the original order the
    consumers' completions pile into the same cycles and trip the
    forwarding-bandwidth limit (``RESOURCE_STALLS:RS_FULL``).  The
    ``scheduled`` variant interleaves independent work the way the SCHED
    pass does.
    """
    if not scheduled:
        body = """
    imull $0x5bd1e995, %ecx, %r10d
    xorl %edi, %ebx
    subl %ebx, %ecx
    subl %ebx, %edx
    movl %ebx, %edi
    shrl $12, %edi
    xorl %edi, %edx
    leal (%r8,%rdi), %eax
    movl %eax, %ecx
    sarl %ecx
    xorl %r10d, %ecx
    movl %ecx, %r11d
    xorb $1, %r11b
    leal 2(%r11), %r8d
"""
    else:
        body = """
    imull $0x5bd1e995, %ecx, %r10d
    xorl %edi, %ebx
    leal (%r8,%rdi), %eax
    subl %ebx, %ecx
    subl %ebx, %edx
    movl %ebx, %edi
    movl %eax, %r11d
    shrl $12, %edi
    sarl %r11d
    xorl %edi, %edx
    xorl %r10d, %r11d
    movl %r11d, %ecx
    xorb $1, %r11b
    leal 2(%r11), %r8d
"""
    return f"""
.text
.globl main
.type main, @function
main:
    movl $0x9e3779b9, %ebx
    movl $0x85ebca6b, %ecx
    movl $0xc2b2ae35, %edx
    movl $17, %edi
    movl $99, %r8d
    movq ${trip}, %rbp
.Lloop:
{body}
    subq $1, %rbp
    jne .Lloop
    movl %edx, %eax
    ret
"""


def nested_short_loops(separated: bool = False, outer: int = 1500) -> str:
    """§III.C.g: two-deep nest of short loops with aliasing back branches.

    The two backward conditional branches sit a few bytes apart at the
    bottom of the nest — inside one 32-byte ``PC >> 5`` bucket.  With trip
    counts of 1-2 the predictor thrashes.  ``separated`` inserts the NOPs
    the BRALIGN pass would add, giving each branch its own bucket.
    """
    pad = "\n".join("    nop" for _ in range(18)) if separated else ""
    return f"""
.text
.globl main
.type main, @function
main:
    push %rbx
    movq ${outer}, %rbx
.Limage:
    movl $2, %ecx
    .p2align 5
.Lrow:
    movl $1, %edx
.Lcol:
    addl $1, %eax
    subl $1, %edx
    jne .Lcol
{pad}
    subl $1, %ecx
    jne .Lrow
    subq $1, %rbx
    jne .Limage
    pop %rbx
    ret
"""
