"""Workloads: the paper's anecdote kernels, a synthetic "core library"
corpus with calibrated pattern densities, and SPEC-named synthetic
benchmark programs for the evaluation tables.

The original evaluation used SPEC 2000/2006 and a proprietary Google core
library; neither is available, so these generators synthesize programs
containing the *documented pattern populations* (redundant zero-extensions,
redundant tests, repeated loads, short loops at specific alignments, ...)
at calibrated densities.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads import kernels
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.spec import (
    BenchmarkProgram,
    build_benchmark,
    measure_cycles,
    SPEC2000_INT,
)

__all__ = [
    "kernels",
    "CorpusConfig",
    "generate_corpus",
    "BenchmarkProgram",
    "build_benchmark",
    "measure_cycles",
    "SPEC2000_INT",
]
