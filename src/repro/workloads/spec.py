"""SPEC-named synthetic benchmark programs for the evaluation tables.

Neither SPEC 2000/2006 sources nor a GCC toolchain are available, so every
benchmark in the paper's tables is synthesized as an assembly program whose
*hot code* exhibits the micro-architectural structure the paper attributes
to it (short loops at particular alignments, window-sized loop bodies,
fan-out dependence shapes) and whose *cold code* carries the static pattern
populations the Fig. 7 transformation counts come from.

Key mechanisms, by benchmark family:

* **short_loop** (175.vpr, 176.gcc, 300.twolf — LOOP16 winners on Core-2):
  the eon-style movss loop sits at a bad 16-byte offset; LOOP16's
  ``.p2align`` removes one fetch line per iteration.
* **short_loop + good natural placement** (252.eon, 253.perlbmk): the hot
  loop is *naturally* aligned by a run of compiler filler NOPs, and a
  misaligned warm mini-loop precedes it.  Anything that moves code —
  NOPIN's random NOPs, NOPKILL stripping the filler, REDTEST deleting
  tests ahead of the loop, LOOP16 aligning the mini-loop — pushes the hot
  loop off the grid: the paper's counter-intuitive eon regressions.
* **window_loop** (181.mcf, 186.crafty on Opteron; 454.calculix,
  447.dealII): the loop body is a few bytes over one 32-byte fetch window.
  On Opteron the loop-buffer ("an unknown micro-architectural effect",
  §V.B) streams only single-window loops, so shaving bytes — REDMOV
  rewriting repeated loads, REDTEST deleting tests — tips it into
  streaming; stripping its alignment directive (NOPKILL) tips it out.
* **fanout** (the five SCHED benchmarks): a §III.F-shaped block whose
  completions collide on the forwarding network until list scheduling
  spreads them.

Alignment-sensitive programs are calibrated at build time: the builder
pads a slot until the hot label lands at the documented offset modulo the
decode grid, using the repo's own relaxation for addresses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.relax import relax_section
from repro.ir import MaoUnit, parse_unit
from repro.uarch.model import ProcessorModel
from repro.uarch.pipeline import SimStats, simulate_unit

SPEC2000_INT = [
    "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
    "197.parser", "252.eon", "253.perlbmk", "254.gap", "255.vortex",
    "256.bzip2", "300.twolf",
]

SPEC2006_SCHED = [
    "410.bwaves", "434.zeusmp", "483.xalancbmk", "429.mcf", "464.h264ref",
]

SPEC2006_FP = ["447.dealII", "454.calculix"]


@dataclass
class BenchmarkProgram:
    name: str
    source: str
    entry: str = "main"
    max_steps: int = 4_000_000
    description: str = ""

    def unit(self) -> MaoUnit:
        return parse_unit(self.source, filename=self.name)


def measure_cycles(unit: MaoUnit, model: ProcessorModel,
                   entry: str = "main",
                   max_steps: int = 4_000_000) -> SimStats:
    """Interpret + time one unit on one processor model."""
    result, stats = simulate_unit(unit, model, entry_symbol=entry,
                                  max_steps=max_steps)
    if result.reason != "ret":
        raise RuntimeError("benchmark did not terminate: %s" % result.reason)
    return stats


def _pad_to_offset(template: Callable[[int], str], label: str,
                   modulus: int, desired: int, max_pad: int = 64) -> str:
    """Find the padding count placing *label* at ``desired mod modulus``."""
    fallback = None
    for pad in range(max_pad):
        source = template(pad)
        if fallback is None:
            fallback = source
        unit = parse_unit(source)
        layout = relax_section(unit, unit.get_section(".text"))
        address = layout.symtab.get(label)
        if address is not None and address % modulus == desired:
            return source
    return fallback


# ---------------------------------------------------------------------------
# Recipes.
# ---------------------------------------------------------------------------

@dataclass
class _Recipe:
    """Parameters controlling one synthetic benchmark."""

    kind: str = "plain"          # short_loop | window_loop | fanout | plain
    trip: int = 8                # inner trip count of the sensitive loop
    outer: int = 400             # outer repetitions
    offset: Optional[int] = None  # engineered hot-label offset (mod grid)
    grid: int = 16
    #: how the hot loop is aligned: "directive" (.p2align — NOPKILL bait),
    #: "nops" (compiler filler NOPs — also NOPKILL bait), or "" (nothing).
    align_style: str = ""
    #: a misaligned warm mini-loop before the hot region (LOOP16 bait)
    pre_miniloop: bool = False
    #: desired offset (mod grid) of the mini-loop label (crossing bait)
    mini_offset: Optional[int] = None
    #: calibrate the *pre-alignment* point instead of .Lhot: the hot loop
    #: then sits wherever its .p2align puts it, and stripping the
    #: directive (NOPKILL) reveals this raw offset.
    prealign_offset: Optional[int] = None
    pre_redtests: int = 0        # redundant tests ahead of the hot region
    hot_redtests: int = 0        # redundant tests inside the hot body
    hot_redmovs: int = 0         # redundant load pairs inside the hot body
    hot_filler: int = 0          # extra 3-byte ALU filler insns in the body
    #: how calibration padding is emitted: "nops" (strippable by NOPKILL)
    #: or "skip" (a jumped-over .skip — byte-precise, not strippable)
    pad_style: str = "nops"
    dilution: int = 3000         # trip count of the insensitive loop
    fanout_trip: int = 0
    cold_zext: int = 0
    cold_tests: int = 0
    cold_movs: int = 0
    cold_filler: int = 60
    seed: int = 0


_RECIPES: Dict[str, _Recipe] = {
    # ---- SPEC 2000 int ------------------------------------------------------
    "164.gzip": _Recipe(kind="plain", dilution=6000, cold_zext=2,
                        cold_tests=5, fanout_trip=120, cold_filler=70),
    "175.vpr": _Recipe(kind="short_loop", trip=8, outer=60, offset=12,
                       dilution=5500, cold_zext=14, cold_tests=4,
                       cold_movs=7, fanout_trip=200),
    "176.gcc": _Recipe(kind="short_loop", trip=7, outer=70, offset=10,
                       dilution=5200, cold_zext=60, cold_tests=25,
                       cold_movs=18, cold_filler=140, fanout_trip=180),
    "181.mcf": _Recipe(kind="window_loop", trip=500, outer=4, offset=29,
                       grid=32, hot_filler=4, dilution=5600, cold_zext=2,
                       cold_tests=1, cold_movs=1, fanout_trip=120),
    "186.crafty": _Recipe(kind="window_loop", trip=500, outer=4,
                          offset=29, grid=32, hot_filler=4, dilution=5400,
                          cold_zext=20, cold_tests=9, cold_movs=6,
                          fanout_trip=200),
    "197.parser": _Recipe(kind="plain", dilution=6200, cold_zext=21,
                          cold_tests=6, cold_movs=4, fanout_trip=140),
    "252.eon": _Recipe(kind="short_loop", trip=8, outer=500, offset=16,
                       grid=32, align_style="nops", pre_miniloop=True,
                       mini_offset=9, pre_redtests=3, dilution=2000,
                       cold_zext=24, cold_tests=6, cold_movs=10,
                       fanout_trip=1800),
    "253.perlbmk": _Recipe(kind="short_loop", trip=6, outer=300, offset=0,
                           align_style="nops", pre_miniloop=False,
                           pre_redtests=2, dilution=3600, cold_zext=40,
                           cold_tests=21, cold_movs=9, cold_filler=120,
                           fanout_trip=280),
    "254.gap": _Recipe(kind="plain", dilution=6400, cold_zext=62,
                       cold_tests=9, cold_movs=23, cold_filler=150,
                       fanout_trip=240),
    "255.vortex": _Recipe(kind="plain", dilution=6500, cold_zext=25,
                          cold_tests=5, cold_movs=3, cold_filler=120,
                          fanout_trip=260),
    "256.bzip2": _Recipe(kind="short_loop", trip=12, outer=30, offset=9,
                         dilution=5600, cold_zext=4, cold_tests=2,
                         cold_movs=3, fanout_trip=100),
    "300.twolf": _Recipe(kind="short_loop", trip=9, outer=55, offset=11,
                         dilution=5400, cold_zext=18, cold_tests=15,
                         cold_movs=9, fanout_trip=160),
    # ---- SPEC 2006 fp (REDMOV/REDTEST/NOPKILL table, Opteron) ---------------
    "447.dealII": _Recipe(kind="window_loop", trip=64, outer=12,
                          offset=None, prealign_offset=0, grid=32,
                          align_style="directive", pad_style="skip",
                          hot_redtests=1, hot_redmovs=1, hot_filler=3,
                          dilution=5600, cold_zext=12, cold_tests=8,
                          cold_movs=10),
    "454.calculix": _Recipe(kind="window_loop", trip=200, outer=30,
                            offset=None, prealign_offset=31, grid=32,
                            align_style="directive", pad_style="skip",
                            hot_redtests=1, hot_redmovs=1, hot_filler=3,
                            dilution=2200, cold_zext=8, cold_tests=6,
                            cold_movs=12),
    # ---- SPEC 2006 sched table ----------------------------------------------
    "410.bwaves": _Recipe(kind="fanout", fanout_trip=380, dilution=5200),
    "434.zeusmp": _Recipe(kind="fanout", fanout_trip=350, dilution=5200),
    "483.xalancbmk": _Recipe(kind="fanout", fanout_trip=365,
                             dilution=5200),
    "429.mcf": _Recipe(kind="fanout", fanout_trip=420, dilution=5100),
    "464.h264ref": _Recipe(kind="fanout", fanout_trip=520, dilution=4900),
}


# ---------------------------------------------------------------------------
# Fragments.
# ---------------------------------------------------------------------------

def _dilution_loop(label: str, trip: int) -> str:
    """Well-behaved compute loop, insensitive to the passes under study."""
    return f"""
    movq ${trip}, %rbp
    .p2align 5
{label}:
    addq %rdx, %rax
    xorq $0x55, %rdx
    addq $3, %rdx
    imulq $3, %rax, %rax
    subq $1, %rbp
    jne {label}
"""


def _fanout_loop(label: str, trip: int) -> str:
    """§III.F-shaped block in source order (SCHED improves it)."""
    return f"""
    movq ${trip}, %rbp
    .p2align 5
{label}:
    imull $0x5bd1e995, %ecx, %r10d
    xorl %edi, %ebx
    subl %ebx, %ecx
    subl %ebx, %edx
    movl %ebx, %r9d
    shrl $12, %r9d
    xorl %r9d, %edx
    leal (%r8,%r9), %eax
    movl %eax, %r11d
    sarl %r11d
    xorl %r10d, %r11d
    movl %r11d, %ecx
    xorb $1, %r11b
    leal 2(%r11), %r8d
    subq $1, %rbp
    jne {label}
"""


def _hot_kernel(recipe: _Recipe, pad: int, mini_pad: int = 0,
                struct_pad: int = 0) -> str:
    if recipe.pad_style == "skip" and pad:
        pad_nops = ("    jmp .Lskippad\n    .skip %d\n.Lskippad:" % pad)
    else:
        pad_nops = "\n".join("    nop" for _ in range(pad))
    if struct_pad:
        # Non-NOP filler (3 bytes each) that survives NOPKILL; controls
        # where the hot loop lands once the strippable NOPs are gone.
        pad_nops = "\n".join("    leaq (%r14), %r14"
                              for _ in range(struct_pad)) + "\n" + pad_nops

    mini = ""
    if recipe.pre_miniloop:
        # A warm (executed once) short loop at a deliberately bad offset
        # (mini_pad is calibrated): LOOP16 will align it, shifting
        # everything downstream.
        mini_nops = "\n".join("    nop" for _ in range(mini_pad))
        mini = f"""
    movl $4, %ecx
{mini_nops}
.Lmini:
    addl $1, %eax
    subl $1, %ecx
    jne .Lmini
"""

    pre_tests = ""
    for i in range(recipe.pre_redtests):
        reg = ["%ecx", "%edx", "%esi"][i % 3]
        pre_tests += ("    subl $%d, %s\n    testl %s, %s\n"
                      "    je .Lpt%d\n.Lpt%d:\n"
                      % (i + 1, reg, reg, reg, i, i))

    if recipe.align_style == "directive":
        align = ".Lprealign:\n    .p2align %d\n" \
            % (recipe.grid.bit_length() - 1)
    else:
        align = ""

    if recipe.kind == "short_loop":
        return f"""
{mini}{pre_tests}{pad_nops}
    movq ${recipe.outer}, %rbx
.Lhout:
    movq ${recipe.trip}, %rax
{align}.Lhot:
    movss %xmm0,16(%rdi,%rax,4)
    subq $1, %rax
    jne .Lhot
    subq $1, %rbx
    jne .Lhout
"""
    if recipe.kind == "window_loop":
        redtests = "".join(
            "    subq $1, %rsi\n    testq %rsi, %rsi\n"
            for _ in range(recipe.hot_redtests))
        redmovs = ""
        pairs = [("%rcx", "%r9"), ("%r10", "%r11")]
        for i in range(recipe.hot_redmovs):
            a, b = pairs[i % 2]
            redmovs += ("    movq 24(%%rsp), %s\n    movq 24(%%rsp), %s\n"
                        % (a, b))
        filler = "".join("    addl $%d, %%e%s\n" % (3 + i, r)
                         for i, r in enumerate(
                             ["ax", "dx", "si", "cx"][:recipe.hot_filler]))
        return f"""
{mini}{pre_tests}{pad_nops}
    movq ${recipe.outer}, %rbx
.Lhout:
    movq ${recipe.trip}, %rbp
{align}.Lhot:
{redtests}{redmovs}{filler}    addl %edx, %eax
    subq $1, %rbp
    jne .Lhot
    subq $1, %rbx
    jne .Lhout
"""
    if recipe.kind == "fanout":
        return pre_tests + pad_nops \
            + _fanout_loop(".Lhot", recipe.fanout_trip)
    return pre_tests + pad_nops


def _cold_function(name: str, recipe: _Recipe, rng: random.Random) -> str:
    """Never-called code carrying the static pattern populations."""
    from repro.workloads.corpus import _FunctionBuilder

    builder = _FunctionBuilder(name, rng)
    builder.filler(recipe.cold_filler // 2)
    for _ in range(recipe.cold_zext):
        builder.redundant_zext(removable=True)
        builder.filler(rng.randint(1, 3))
    for _ in range(recipe.cold_tests):
        builder.test_instruction(redundant=True)
        builder.filler(rng.randint(1, 3))
    for _ in range(recipe.cold_movs):
        builder.redundant_memmove()
        builder.filler(rng.randint(1, 3))
    if rng.random() < 0.5:
        builder.short_loop()
    builder.filler(recipe.cold_filler // 2)
    return builder.render()


def build_benchmark(name: str, seed: int = 0) -> BenchmarkProgram:
    """Build the named synthetic benchmark program."""
    if name not in _RECIPES:
        raise KeyError("unknown benchmark %r (known: %s)"
                       % (name, ", ".join(sorted(_RECIPES))))
    recipe = _RECIPES[name]
    rng = random.Random((seed + 1) * 7919)
    cold_seed = rng.randint(0, 1 << 30)

    def template(pad: int, mini_pad: int = 0, struct_pad: int = 0) -> str:
        parts = [".text", ".globl main", ".type main, @function", "main:",
                 "    push %rbx", "    push %rbp",
                 "    leaq scratch(%rip), %rdi",
                 "    xorps %xmm0, %xmm0",
                 "    movl $7, %ecx", "    movl $11, %edx",
                 "    movl $13, %esi", "    movl $170, %r9d"]
        parts.append(_hot_kernel(recipe, pad, mini_pad, struct_pad))
        if recipe.kind != "fanout" and recipe.fanout_trip:
            parts.append(_fanout_loop(".Lfan", recipe.fanout_trip))
        parts.append(_dilution_loop(".Ldil", recipe.dilution))
        parts.extend(["    pop %rbp", "    pop %rbx", "    ret"])
        parts.append(_cold_function("cold_%s" % name.replace(".", "_"),
                                    recipe, random.Random(cold_seed)))
        parts.append(".section .bss\n.align 64\nscratch:\n    .zero 8192")
        return "\n".join(parts) + "\n"

    source = _calibrate(recipe, template)
    return BenchmarkProgram(name=name, source=source,
                            description=recipe.kind)


def _label_offsets(source: str, labels: List[str]) -> Dict[str, int]:
    unit = parse_unit(source)
    layout = relax_section(unit, unit.get_section(".text"))
    return {label: layout.symtab[label]
            for label in labels if label in layout.symtab}


def _stripped_hot_offset(source: str) -> Optional[int]:
    """.Lhot's offset once every NOP (what NOPKILL removes) is stripped."""
    from repro.passes.manager import PassPipeline

    unit = parse_unit(source)
    PassPipeline([("NOPKILL", {})]).run(unit)
    layout = relax_section(unit, unit.get_section(".text"))
    return layout.symtab.get(".Lhot")


def _calibrate(recipe: _Recipe, template) -> str:
    """Solve the padding knobs so the constrained labels hit their
    target offsets (label addresses shift linearly with the knobs)."""
    if recipe.kind == "plain":
        return template(0)
    grid = recipe.grid

    if recipe.prealign_offset is not None:
        pad = 0
        for _ in range(6):
            source = template(pad)
            got = _label_offsets(source, [".Lprealign"])
            if ".Lprealign" not in got:
                return source
            delta = (recipe.prealign_offset - got[".Lprealign"]) % grid
            if delta == 0:
                return source
            pad = (pad + delta) % (2 * grid) or grid
        return template(pad)

    if recipe.mini_offset is not None and recipe.pre_miniloop:
        # First pick the structural pad so the layout NOPKILL leaves
        # behind (all NOPs stripped) puts the hot loop at a line-crossing
        # offset: that is what makes the benchmark fragile.
        struct_pad = 0
        for candidate in range(6):
            stripped = _stripped_hot_offset(template(0, 0, candidate))
            if stripped is not None and 5 <= stripped % 16 <= 13:
                struct_pad = candidate
                break
        # Then two knobs: mini_pad places .Lmini, pad places .Lhot.
        base = _label_offsets(template(0, 0, struct_pad),
                              [".Lmini", ".Lhot"])
        mini_pad = (recipe.mini_offset - base[".Lmini"]) % 16
        base2 = _label_offsets(template(0, mini_pad, struct_pad),
                               [".Lhot"])
        pad = ((recipe.offset or 0) - base2[".Lhot"]) % grid
        source = template(pad, mini_pad, struct_pad)
        check = _label_offsets(source, [".Lmini", ".Lhot"])
        if (check[".Lmini"] % 16 == recipe.mini_offset
                and check[".Lhot"] % grid == (recipe.offset or 0)):
            return source
        # Fall back to exhaustive search (branch-length interactions).
        for mp in range(16):
            for p in range(grid):
                source = template(p, mp, struct_pad)
                check = _label_offsets(source, [".Lmini", ".Lhot"])
                if (check[".Lmini"] % 16 == recipe.mini_offset
                        and check[".Lhot"] % grid
                        == (recipe.offset or 0)):
                    return source
        return template(0, 0)

    if recipe.offset is not None:
        def single(pad: int) -> str:
            return template(pad)
        return _pad_to_offset(single, ".Lhot", grid, recipe.offset)
    return template(0)
