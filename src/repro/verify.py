"""MAO's correctness verification flow (paper §III.A).

"To verify correctness of basic MAO functionality ... For each source
file we take the compiler generated assembly file A1 and run the
assembler on it to generate an object file O1.  Then we run MAO on A1,
construct the CFG and perform loop recognition, and generate an assembly
file A2.  We run the assembler and generate an object file O2.  We then
disassemble O1 and O2 and verify that both disassembled files are
textually identical.  Since MAO didn't perform any transformations, the
disassembled files must match."

:func:`disassemble_compare` implements exactly that loop with the in-repo
assembler (relaxation/encoder) and disassembler (decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import build_lsg
from repro.analysis.relax import relax_section
from repro.ir import MaoUnit, parse_unit
from repro.x86.decoder import disassemble


@dataclass
class VerifyResult:
    identical: bool
    disasm_before: str
    disasm_after: str
    first_diff: Optional[Tuple[str, str]] = None


def assemble_text_section(unit: MaoUnit) -> bytes:
    """A1 -> O1: relax and return the flat .text image."""
    section = unit.get_section(".text")
    return relax_section(unit, section).code_image()


def run_mao_analyses(unit: MaoUnit) -> None:
    """The no-transformation MAO run: CFG + loop recognition per function."""
    for function in unit.functions:
        cfg = build_cfg(function, unit)
        build_lsg(cfg)


def disassemble_compare(source: str) -> VerifyResult:
    """The §III.A check over one assembly source.

    Assembles the original (O1), pushes the source through MAO with
    analyses only and re-emits (A2), assembles that (O2), disassembles
    both, and compares textually.
    """
    unit1 = parse_unit(source)
    image1 = assemble_text_section(unit1)

    unit2 = parse_unit(source)
    run_mao_analyses(unit2)
    round_tripped = unit2.to_asm()
    unit3 = parse_unit(round_tripped)
    image2 = assemble_text_section(unit3)

    disasm1 = disassemble(image1)
    disasm2 = disassemble(image2)
    result = VerifyResult(identical=disasm1 == disasm2,
                          disasm_before=disasm1, disasm_after=disasm2)
    if not result.identical:
        for line1, line2 in zip(disasm1.splitlines(),
                                disasm2.splitlines()):
            if line1 != line2:
                result.first_diff = (line1, line2)
                break
    return result
