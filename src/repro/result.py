"""``repro.result`` — the shared contract for API result objects.

Every result the public surface hands back — :class:`repro.api.OptimizeResult`,
:class:`repro.api.SimResult`, :class:`repro.uarch.static_model.Prediction`,
:class:`repro.batch.BatchResult`, :class:`repro.tune.TuneResult` — implements
one small interface instead of five ad-hoc shapes:

* ``SCHEMA`` — the versioned wire-format tag (``"pymao.optimize/1"`` …)
  carried as ``{"schema": ...}`` in every serialized document;
* ``to_dict(timings=False)`` — the deterministic JSON-able document.
  Wall-clock timing fields are **opt-in** so that byte-identical runs
  serialize byte-identically (the batch and tune determinism tests pin
  this) while reporting surfaces can still ask for them;
* ``from_dict(data)`` — rebuild from the document.  Some results carry
  live objects a document cannot (a parsed unit, a machine state); those
  reconstruct what the document holds and note the rest as absent.

Subclassing :class:`ApiResult` with a ``SCHEMA`` registers the type in a
process-wide registry, so generic consumers (``mao --version``, the
server envelope, :func:`load_result`) enumerate or dispatch on schemas
without special-casing each shape.  Non-result schemas (trace, artifact,
server envelope, bench documents) register via :func:`register_schema`
from the module that owns them.

This module deliberately imports nothing from the rest of ``repro`` so
any layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, Iterator, Optional, Tuple, Type

#: label -> schema string, insertion-ordered.
_SCHEMAS: Dict[str, str] = {}

#: schema string -> ApiResult subclass (only result-object schemas).
_RESULT_TYPES: Dict[str, Type["ApiResult"]] = {}


def register_schema(label: str, schema: str,
                    result_type: Optional[Type["ApiResult"]] = None) -> str:
    """Register *schema* under *label* (idempotent for identical pairs).

    A label collision with a *different* schema string is a programming
    error — two modules claiming one name would make ``mao --version``
    ambiguous — and raises ``ValueError``.
    """
    existing = _SCHEMAS.get(label)
    if existing is not None and existing != schema:
        raise ValueError("schema label %r already registered as %r"
                         % (label, existing))
    _SCHEMAS[label] = schema
    if result_type is not None:
        _RESULT_TYPES[schema] = result_type
    return schema


def schema_registry() -> Dict[str, str]:
    """Every registered ``label -> schema`` pair (a copy).

    Only schemas whose owning module has been imported appear;
    ``mao --version`` imports the full surface first so the listing is
    complete there.
    """
    return dict(_SCHEMAS)


def iter_schemas() -> Iterator[Tuple[str, str]]:
    """``(label, schema)`` pairs sorted by label — the ``--version``
    rendering order."""
    for label in sorted(_SCHEMAS):
        yield label, _SCHEMAS[label]


def result_type_for(schema: str) -> Optional[Type["ApiResult"]]:
    """The :class:`ApiResult` subclass owning *schema*, if any."""
    return _RESULT_TYPES.get(schema)


def load_result(data: Dict[str, Any]) -> "ApiResult":
    """Rebuild whichever result type *data*'s ``schema`` names."""
    if not isinstance(data, dict):
        raise ValueError("result document must be a dict")
    schema = data.get("schema")
    cls = _RESULT_TYPES.get(schema)
    if cls is None:
        raise ValueError("no result type registered for schema %r" % (schema,))
    return cls.from_dict(data)


class ApiResult:
    """Base class for public result objects.

    Subclasses set ``SCHEMA`` (and optionally ``SCHEMA_LABEL``; the
    default label is derived from the schema name) and implement
    ``to_dict`` / ``from_dict``.  Registration happens at class-creation
    time so importing a result's module is all it takes to appear in the
    schema registry.
    """

    SCHEMA: ClassVar[Optional[str]] = None
    SCHEMA_LABEL: ClassVar[Optional[str]] = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        schema = cls.__dict__.get("SCHEMA")
        if schema:
            label = cls.__dict__.get("SCHEMA_LABEL")
            if not label:
                # "pymao.optimize/1" -> "optimize"
                label = schema.split("/", 1)[0].rsplit(".", 1)[-1]
            register_schema(label, schema, result_type=cls)

    # -- the contract -------------------------------------------------------

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        """The versioned JSON-able document.  Must be deterministic for
        deterministic inputs unless ``timings=True``."""
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ApiResult":
        raise NotImplementedError

    # -- helpers for subclasses ---------------------------------------------

    @classmethod
    def check_schema(cls, data: Dict[str, Any]) -> Dict[str, Any]:
        """Validate ``data["schema"]`` against ``cls.SCHEMA`` and return
        *data* — the standard first line of every ``from_dict``."""
        if not isinstance(data, dict):
            raise ValueError("%s document must be a dict" % cls.__name__)
        schema = data.get("schema")
        if schema != cls.SCHEMA:
            raise ValueError("unsupported %s schema %r (expected %r)"
                             % (cls.__name__, schema, cls.SCHEMA))
        return data
