"""Set-associative L1 data cache with non-temporal-hint support.

Supports the inverse-prefetching experiment (§III.E.k): on Core-2, a load
preceded by ``prefetchnta`` to the same address becomes non-temporal — its
fill "always replaces a single way in the associative caches", reducing
cache pollution.  The model implements that by restricting NTA fills to
way 0 of their set.
"""

from __future__ import annotations

from typing import Dict, List

from repro.uarch.model import ProcessorModel


class DataCache:
    """LRU set-associative cache; returns hit/miss per access."""

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self.sets: List[List[int]] = [[] for _ in range(model.cache_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: line tags currently marked non-temporal (pending NTA hint).
        self._nta_pending: Dict[int, bool] = {}
        #: True when the most recent access consumed an NTA hint — such
        #: accesses also suppress the hardware next-line prefetch.
        self.last_access_nta = False

    def _locate(self, address: int):
        line = address // self.model.cache_line_bytes
        index = line % self.model.cache_sets
        return line, self.sets[index]

    def hint_nta(self, address: int) -> None:
        """Record a prefetchnta hint for the line containing *address*."""
        line = address // self.model.cache_line_bytes
        self._nta_pending[line] = True

    def contains(self, address: int) -> bool:
        """Non-mutating residency probe (for tests/diagnostics)."""
        line, ways = self._locate(address)
        return line in ways

    # ---- steady-state fast-forward support --------------------------------

    def ff_snapshot(self):
        """Immutable view of tag state + event counts for loop fast-forward.

        The tag/LRU/NTA state must be a fixed point of a steady loop
        iteration (checked by the validator); hits/misses/evictions are the
        per-iteration deltas that get replayed algebraically.
        """
        return (tuple(tuple(ways) for ways in self.sets),
                dict(self._nta_pending),
                self.last_access_nta,
                self.hits, self.misses, self.evictions)

    def ff_apply(self, d_hits: int, d_misses: int, d_evictions: int,
                 repeats: int) -> None:
        self.hits += d_hits * repeats
        self.misses += d_misses * repeats
        self.evictions += d_evictions * repeats

    def access(self, address: int, is_write: bool = False) -> bool:
        """Touch a line; returns True on hit."""
        line, ways = self._locate(address)
        self.last_access_nta = bool(self._nta_pending.get(line))
        if line in ways:
            self._nta_pending.pop(line, None)
            ways.remove(line)
            ways.append(line)       # most-recently-used at the tail
            self.hits += 1
            return True
        self.misses += 1
        non_temporal = self._nta_pending.pop(line, False)
        if non_temporal and ways:
            # NTA fill replaces a single way (the LRU slot) and inserts at
            # LRU position so it's evicted first — no pollution.
            if len(ways) >= self.model.cache_ways:
                ways.pop(0)
                self.evictions += 1
            ways.insert(0, line)
            return False
        if len(ways) >= self.model.cache_ways:
            ways.pop(0)
            self.evictions += 1
        ways.append(line)
        return False
