"""Decompose instructions into uops for the timing model.

An instruction with a memory source contributes a LOAD uop feeding its
compute uop; a memory destination adds a STORE uop.  NOPs (including the
multi-byte forms) decode but occupy no execution port — which is exactly why
NOP insertion is near-free in the back end while still moving code across
decode lines, the effect the paper's alignment passes exploit.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.uarch import model as M
from repro.x86.instruction import Instruction

#: (uop_class, reads_memory, writes_memory) per compute step.
Uop = Tuple[str, bool, bool]

_FP_BASES = {
    "addss": M.FP_ADD, "addsd": M.FP_ADD, "subss": M.FP_ADD,
    "subsd": M.FP_ADD,
    "mulss": M.FP_MUL, "mulsd": M.FP_MUL,
    "divss": M.FP_DIV, "divsd": M.FP_DIV,
    "ucomiss": M.FP_ADD, "ucomisd": M.FP_ADD,
    "comiss": M.FP_ADD, "comisd": M.FP_ADD,
    "cvtss2sd": M.FP_ADD, "cvtsd2ss": M.FP_ADD,
    "cvtsi2ss": M.FP_ADD, "cvtsi2sd": M.FP_ADD,
    "cvtsi2ssq": M.FP_ADD, "cvtsi2sdq": M.FP_ADD,
    "cvttss2si": M.FP_ADD, "cvttsd2si": M.FP_ADD,
    "cvttss2siq": M.FP_ADD, "cvttsd2siq": M.FP_ADD,
    "movss": M.FP_MOV, "movsd": M.FP_MOV, "movaps": M.FP_MOV,
    "movups": M.FP_MOV, "movd": M.FP_MOV,
    "xorps": M.FP_MOV, "xorpd": M.FP_MOV, "pxor": M.FP_MOV,
}

_SHIFT_BASES = {"shl", "shr", "sar", "rol", "ror"}
_MUL_BASES = {"imul", "mul"}
_DIV_BASES = {"idiv", "div"}
_NOP_BASES = {"nop", "pause", "prefetchnta", "prefetcht0", "prefetcht1",
              "prefetcht2", "mfence", "lfence", "sfence"}


def compute_class(insn: Instruction) -> str:
    """The execution-uop class of the instruction's compute step."""
    base = insn.base
    if base in _FP_BASES:
        return _FP_BASES[base]
    if base in _SHIFT_BASES:
        return M.SHIFT
    if base in _MUL_BASES:
        return M.MUL
    if base in _DIV_BASES:
        return M.DIV
    if base == "lea":
        return M.LEA
    if base == "cmov" or base == "set":
        return M.CMOV
    if base in ("jmp", "j", "call", "ret"):
        return M.BRANCH
    if base in _NOP_BASES:
        return M.NOP
    return M.ALU


def uops_of(insn: Instruction) -> List[Uop]:
    """The uop sequence of one instruction."""
    base = insn.base
    if insn.is_nop or base in _NOP_BASES:
        # Prefetches carry a LOAD-like cache touch but no port pressure;
        # pipeline.py special-cases prefetch cache behaviour.
        return [(M.NOP, False, False)]

    if base == "push":
        return [(M.STORE, False, True)]
    if base == "pop":
        return [(M.LOAD, True, False)]
    if base == "call":
        return [(M.STORE, False, True), (M.BRANCH, False, False)]
    if base == "ret":
        return [(M.LOAD, True, False), (M.BRANCH, False, False)]
    if base == "leave":
        return [(M.ALU, False, False), (M.LOAD, True, False)]

    uops: List[Uop] = []
    mem = insn.memory_operand()
    loads = insn.reads_memory
    stores = insn.writes_memory
    if loads:
        uops.append((M.LOAD, True, False))
    cls = compute_class(insn)
    if not (base in ("mov", "movss", "movsd", "movaps", "movups")
            and (loads or stores)):
        # Plain load/store moves are just their memory uop; everything else
        # has a compute uop too.
        uops.append((cls, False, False))
    elif not loads and not stores:
        uops.append((cls, False, False))
    if stores:
        uops.append((M.STORE, False, True))
    if not uops:
        uops.append((cls, False, False))
    return uops


def is_backward_taken_branch(insn: Instruction, address: int,
                             target: Optional[int]) -> bool:
    return target is not None and target <= address
