"""Branch predictor: a table of 2-bit counters indexed by ``PC >> shift``.

The paper (§III.C.g): "In many Intel platforms, branch predictor structures
are indexed by PC >> 5.  As a result, the backward branches of both the
loops above use the same branch prediction information" — i.e. two branches
whose addresses fall in one 32-byte bucket *alias* and destructively share
state.  That aliasing emerges directly from this table organization, which
is what the branch-alignment pass (and the Fig. 1 NOP anecdote) exploit.
"""

from __future__ import annotations

from typing import Dict

from repro.uarch.model import ProcessorModel


class BranchPredictor:
    """2-bit saturating counters, no tags (so aliasing is real)."""

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self._counters: Dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, address: int) -> bool:
        counter = self._counters.get(self.model.bp_index(address), 2)
        return counter >= 2

    def update(self, address: int, taken: bool) -> bool:
        """Record the outcome; returns True when it was mispredicted."""
        index = self.model.bp_index(address)
        counter = self._counters.get(index, 2)
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[index] = counter
        return mispredicted

    def alias_count(self) -> int:
        """Number of table buckets in use (diagnostic)."""
        return len(self._counters)

    # ---- steady-state fast-forward support --------------------------------

    def ff_snapshot(self):
        """(table copy, predictions, mispredictions) for loop fast-forward."""
        return (dict(self._counters), self.predictions, self.mispredictions)

    def ff_apply(self, d_predictions: int, d_mispredictions: int,
                 repeats: int) -> None:
        """Advance event counts by *repeats* validated loop iterations.

        The counter table itself must be a fixed point of the iteration
        (checked by the validator), so only the counts move.
        """
        self.predictions += d_predictions * repeats
        self.mispredictions += d_mispredictions * repeats
