"""The trace-driven pipeline timing model.

One pass over the dynamic trace assigns each uop an issue and completion
cycle under these constraints:

* **Front end** — instructions arrive from 16-byte decode lines (one new
  line per cycle, ``decode_width`` instructions per cycle), unless the Loop
  Stream Detector has engaged, in which case uops stream without the line
  constraint.  Taken branches redirect fetch to a fresh line.
* **Branch prediction** — 2-bit counters indexed by ``PC >> shift``;
  mispredictions stall fetch for the penalty after the branch resolves.
* **Back end** — each uop issues on the earliest-free port its class allows,
  after its register/flag/memory inputs are ready; loads hit the data cache
  or pay the memory latency; at most ``forwarding_bw`` results complete per
  cycle — excess completions slip a cycle and are counted as
  ``RESOURCE_STALLS_RS_FULL`` (the §III.F effect).

The absolute cycle counts are not meant to match real silicon; the *causal
structure* matches the performance cliffs the paper documents, which is what
the reproduction benches rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.sim.interp import ExecRecord
from repro.uarch import counters as C
from repro.uarch import model as M
from repro.uarch.branch_predictor import BranchPredictor
from repro.uarch.cache import DataCache
from repro.uarch.classify import uops_of
from repro.uarch.model import ProcessorModel
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction


@dataclass
class SimStats:
    model_name: str
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.counters.get(C.CPU_CYCLES, 0)

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def ipc(self) -> float:
        cycles = self.cycles or 1
        return self.counters.get(C.INSTRUCTIONS, 0) / cycles


class _LsdTracker:
    """Detects streamable loops from the dynamic branch behaviour."""

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self.branch_addr: Optional[int] = None
        self.target: Optional[int] = None
        self.iterations = 0
        self.lines: Set[int] = set()
        self.branches = 0
        self.poisoned = False       # body contained a disallowed insn
        self.active = False
        self.activations = 0

    def reset(self) -> None:
        self.branch_addr = None
        self.target = None
        self.iterations = 0
        self.lines = set()
        self.branches = 0
        self.poisoned = False
        self.active = False

    def observe(self, record: ExecRecord, is_branch: bool,
                taken: Optional[bool]) -> None:
        model = self.model
        insn = record.insn
        if not model.lsd_enabled:
            return
        if insn.is_call or insn.is_ret or insn.is_indirect_branch:
            self.reset()
            return

        self.lines.add(model.line_of(record.address))
        end_line = model.line_of(record.address + record.size - 1)
        self.lines.add(end_line)
        if is_branch:
            self.branches += 1

        if is_branch and taken:
            target = _taken_target(record)
            backward = target is not None and target <= record.address
            if backward and record.address == self.branch_addr \
                    and target == self.target:
                # Completed another iteration of the tracked loop.
                fits = (len(self.lines) <= model.lsd_max_lines
                        and self.branches <= model.lsd_max_branches
                        and not self.poisoned)
                if fits:
                    self.iterations += 1
                    if self.iterations >= model.lsd_min_iterations \
                            and not self.active:
                        self.active = True
                        self.activations += 1
                else:
                    self.iterations = 0
                    self.active = False
                self.lines = set()
                self.branches = 0
                self.poisoned = False
            elif backward:
                # New loop candidate.
                self.branch_addr = record.address
                self.target = target
                self.iterations = 0
                self.lines = set()
                self.branches = 0
                self.poisoned = False
                self.active = False
            else:
                # Forward taken branch inside the body is allowed; a taken
                # branch leaving the region kills streaming.
                if self.target is not None and target is not None \
                        and not (self.target <= target
                                 <= (self.branch_addr or 0)):
                    self.reset()
        elif is_branch and taken is False \
                and record.address == self.branch_addr:
            # Loop exit.
            self.reset()


def _taken_target(record: ExecRecord) -> Optional[int]:
    """Resolved target of a direct branch (from its final encoding)."""
    if record.insn.branch_target_label() is None:
        return None
    return _decode_target(record)


def _decode_target(record: ExecRecord) -> Optional[int]:
    insn = record.insn
    encoding = insn.encoding or b""
    address = record.address
    if not encoding:
        return None
    if insn.base == "jmp":
        if encoding[0] == 0xEB:
            rel = int.from_bytes(encoding[1:2], "little", signed=True)
            return address + 2 + rel
        if encoding[0] == 0xE9:
            rel = int.from_bytes(encoding[1:5], "little", signed=True)
            return address + 5 + rel
    if insn.base == "j":
        if 0x70 <= encoding[0] <= 0x7F:
            rel = int.from_bytes(encoding[1:2], "little", signed=True)
            return address + 2 + rel
        if encoding[0] == 0x0F and 0x80 <= encoding[1] <= 0x8F:
            rel = int.from_bytes(encoding[2:6], "little", signed=True)
            return address + 6 + rel
    return None


class PipelineSimulator:
    """Streaming consumer of ExecRecords; call feed() then finish()."""

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self.predictor = BranchPredictor(model)
        self.cache = DataCache(model) if model.cache_enabled else None
        self.lsd = _LsdTracker(model)

        self.frontend_cycle = 0
        self._decoded_this_cycle = 0
        self._current_line: Optional[int] = None

        self.reg_ready: Dict[str, int] = {}
        self.flags_ready = 0
        self.port_free: List[int] = [0] * model.num_ports
        self.mem_ready: Dict[int, int] = {}
        self._forwards: Dict[int, int] = {}
        self._fw_watermark = 0
        self.last_completion = 0

        self.counts: Dict[str, int] = {name: 0 for name in C.ALL}

    # ---- helpers ---------------------------------------------------------

    def _frontend_advance(self, record: ExecRecord,
                          streaming: bool) -> int:
        """Account decode of one instruction; returns its fetch-ready cycle."""
        model = self.model
        if streaming:
            width = model.lsd_stream_width
            if self._decoded_this_cycle >= width:
                self.frontend_cycle += 1
                self._decoded_this_cycle = 0
            self._decoded_this_cycle += 1
            self.counts[C.LSD_UOPS] += 1
            return self.frontend_cycle

        line = model.line_of(record.address)
        end_line = model.line_of(record.address + max(record.size, 1) - 1)
        if self._current_line is None or line != self._current_line:
            # Every fetched decode line costs one fetch slot (16 bytes per
            # cycle on Core-2) — including the line a taken branch lands
            # on.  This is the §III.C.e mechanism: a one-line loop fetches
            # one line per iteration, a boundary-straddling one fetches
            # two.
            self.frontend_cycle += 1
            self._decoded_this_cycle = 0
            self.counts[C.DECODE_LINES] += 1
            self._current_line = line
        # An instruction spilling into the next line consumes it too.
        while end_line > self._current_line:
            self.frontend_cycle += 1
            self._current_line += 1
            self.counts[C.DECODE_LINES] += 1
            self._decoded_this_cycle = 0
        if self._decoded_this_cycle >= model.decode_width:
            self.frontend_cycle += 1
            self._decoded_this_cycle = 0
        self._decoded_this_cycle += 1
        return self.frontend_cycle

    def _issue_port(self, uop_class: str, ready: int) -> int:
        ports = self.model.port_map.get(uop_class, ())
        if not ports:
            return ready                      # NOPs use no port
        best_port = min(ports, key=lambda p: max(self.port_free[p], ready))
        issue = max(self.port_free[best_port], ready)
        self.port_free[best_port] = issue + 1
        return issue

    def _complete(self, issue: int, latency: int,
                  produces_result: bool = True) -> int:
        """Completion cycle honouring the forwarding-bandwidth limit.

        Only register results occupy forwarding slots (branches and
        flag-only compares don't).  When sustained demand exceeds the
        bandwidth, results back up; the watermark keeps the search for a
        free slot O(1).
        """
        cycle = issue + latency
        if not produces_result:
            if cycle > self.last_completion:
                self.last_completion = cycle
            return cycle
        if self._fw_watermark > cycle \
                and self._forwards.get(cycle, 0) >= self.model.forwarding_bw:
            cycle = self._fw_watermark
        while self._forwards.get(cycle, 0) >= self.model.forwarding_bw:
            cycle += 1
            self.counts[C.RESOURCE_STALLS_RS_FULL] += 1
        self._forwards[cycle] = self._forwards.get(cycle, 0) + 1
        if cycle > self._fw_watermark:
            self._fw_watermark = cycle
        if cycle > self.last_completion:
            self.last_completion = cycle
        return cycle

    def _operand_ready(self, insn: Instruction) -> int:
        ready = 0
        try:
            uses = sideeffects.reg_uses(insn)
            reads_flags = bool(sideeffects.flags_read(insn))
        except sideeffects.UnknownSideEffects:
            uses = {r.group for r in insn.register_operands()}
            reads_flags = True
        for group in uses:
            t = self.reg_ready.get(group, 0)
            if t > ready:
                ready = t
        if reads_flags and self.flags_ready > ready:
            ready = self.flags_ready
        return ready

    # ---- main ------------------------------------------------------------

    def feed(self, record: ExecRecord) -> None:
        model = self.model
        insn = record.insn
        self.counts[C.INSTRUCTIONS] += 1

        streaming = self.lsd.active
        fetch_cycle = self._frontend_advance(record, streaming)

        operand_ready = max(fetch_cycle, self._operand_ready(insn))
        uop_list = uops_of(insn)
        self.counts[C.UOPS] += len(uop_list)

        try:
            defs = sideeffects.reg_defs(insn)
            wflags = bool(sideeffects.flags_written(insn)
                          | sideeffects.flags_undefined(insn))
        except sideeffects.UnknownSideEffects:
            defs = {r.group for r in insn.register_operands()}
            wflags = True
        has_reg_result = bool(defs)

        # Prefetch hints touch the cache without port pressure.
        if insn.base.startswith("prefetch") and self.cache is not None \
                and record.ea is not None:
            if insn.base == "prefetchnta":
                self.cache.hint_nta(record.ea)
            else:
                self.cache.access(record.ea)

        load_done = None
        completion = operand_ready
        for uop_class, is_load, is_store in uop_list:
            ready = operand_ready
            if is_load:
                self.counts[C.MEM_LOADS] += 1
                latency = model.latency[M.LOAD]
                if record.ea is not None:
                    ready = max(ready,
                                self.mem_ready.get(record.ea >> 3, 0))
                    if self.cache is not None:
                        if not self.cache.access(record.ea):
                            latency += model.memory_latency
                            self.counts[C.L1D_MISSES] += 1
                        # Next-line prefetcher, indexed by load PC: a load
                        # sitting at a stride multiple aliases a dead
                        # table slot and gets no prefetch (§III.C.h);
                        # non-temporal accesses suppress it too.
                        if model.prefetcher_enabled \
                                and not self.cache.last_access_nta \
                                and not (
                                model.prefetch_pc_alias_stride
                                and record.address
                                % model.prefetch_pc_alias_stride == 0):
                            self.cache.access(
                                record.ea + model.cache_line_bytes)
                issue = self._issue_port(M.LOAD, ready)
                load_done = self._complete(issue, latency)
                completion = max(completion, load_done)
                continue
            if is_store:
                self.counts[C.MEM_STORES] += 1
                ready = max(ready, completion)
                issue = self._issue_port(M.STORE, ready)
                done = issue + model.latency[M.STORE]
                if record.ea is not None:
                    self.mem_ready[record.ea >> 3] = done
                    if self.cache is not None:
                        if not self.cache.access(record.ea, is_write=True):
                            self.counts[C.L1D_MISSES] += 1
                completion = max(completion, done)
                continue
            # compute uop
            ready = max(ready, load_done or 0)
            if uop_class == M.NOP:
                continue
            issue = self._issue_port(uop_class, ready)
            done = self._complete(
                issue, model.latency.get(uop_class, 1),
                produces_result=(has_reg_result
                                 and uop_class != M.BRANCH))
            completion = max(completion, done)

        # Write-backs.
        for group in defs:
            self.reg_ready[group] = completion
        if wflags:
            self.flags_ready = completion

        # Branch handling.
        taken = record.taken
        is_branch = insn.base in ("j", "jmp", "call", "ret")
        if insn.base == "j":
            self.counts[C.BR_EXEC] += 1
            mispredicted = self.predictor.update(record.address,
                                                 bool(taken))
            if mispredicted:
                self.counts[C.BR_MISP] += 1
                resume = completion + model.bp_mispredict_penalty
                if resume > self.frontend_cycle:
                    self.frontend_cycle = resume
                self._current_line = None
                self._decoded_this_cycle = 0
        if is_branch and taken and not streaming:
            # Redirect: next fetch starts a new line.  While the LSD
            # streams, the loop-back branch costs nothing — replay
            # continues seamlessly.
            self._current_line = None
            self._decoded_this_cycle = 0

        self.lsd.observe(record, is_branch, taken)
        was_active = self.lsd.active
        if streaming and not was_active:
            # Fell out of the LSD: fetch restarts.
            self._current_line = None

        # Garbage-collect the forwarding histogram occasionally.
        if len(self._forwards) > 65536:
            horizon = self.frontend_cycle
            self._forwards = {c: n for c, n in self._forwards.items()
                              if c >= horizon}

    def finish(self) -> SimStats:
        total = max(self.frontend_cycle, self.last_completion) + 1
        self.counts[C.CPU_CYCLES] = total
        self.counts[C.LSD_ACTIVE_LOOPS] = self.lsd.activations
        if self.cache is not None:
            self.counts[C.L1D_EVICTIONS] = self.cache.evictions
        stats = SimStats(self.model.name, dict(self.counts))
        return stats


def simulate_trace(trace: Iterable[ExecRecord],
                   model: ProcessorModel) -> SimStats:
    """Run the timing model over a complete trace."""
    pipeline = PipelineSimulator(model)
    for record in trace:
        pipeline.feed(record)
    return pipeline.finish()
