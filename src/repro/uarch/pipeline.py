"""The trace-driven pipeline timing model.

One pass over the dynamic trace assigns each uop an issue and completion
cycle under these constraints:

* **Front end** — instructions arrive from 16-byte decode lines (one new
  line per cycle, ``decode_width`` instructions per cycle), unless the Loop
  Stream Detector has engaged, in which case uops stream without the line
  constraint.  Taken branches redirect fetch to a fresh line.
* **Branch prediction** — 2-bit counters indexed by ``PC >> shift``;
  mispredictions stall fetch for the penalty after the branch resolves.
* **Back end** — each uop issues on the earliest-free port its class allows,
  after its register/flag/memory inputs are ready; loads hit the data cache
  or pay the memory latency; at most ``forwarding_bw`` results complete per
  cycle — excess completions slip a cycle and are counted as
  ``RESOURCE_STALLS_RS_FULL`` (the §III.F effect).

The absolute cycle counts are not meant to match real silicon; the *causal
structure* matches the performance cliffs the paper documents, which is what
the reproduction benches rely on.

Two engine layers sit on top of the per-record walk:

* **Streaming** — ``simulate_unit``/``simulate_program`` couple the
  interpreter's ``trace_callback`` straight into the pipeline so timing
  overlaps execution and no trace list is ever materialized.
* **Steady-state fast-forward** — :class:`FastForwardEngine` watches for a
  loop (taken backward branch) whose iterations repeat the exact same
  record signature (address, outcome, effective address).  After K
  identical iterations it snapshots the pipeline, replays one period, and
  checks the *soundness condition*: every piece of clock-typed state
  advanced by exactly the same constant ``c`` (or is dead — at or below the
  fetch horizon, where it can never again win a ``max`` against a ready
  time), and every piece of pattern-typed state (predictor counters, cache
  tags/LRU, LSD tracking) is a fixed point of the iteration.  Because the
  pipeline transition combines clocks only through ``+const``/``max``
  against values at or above the horizon, a validated iteration implies N
  iterations advance every live clock by ``N*c`` and every counter by N
  times its measured delta — so skipped iterations are *bit-identical* to
  walking them, which differential tests against ``simulate_reference``
  assert.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, \
    Set, Tuple

from repro import obs
from repro.ir.unit import MaoUnit
from repro.sim.interp import ExecRecord, Interpreter, RunResult
from repro.sim.loader import LoadedProgram, load_unit
from repro.uarch import counters as C
from repro.uarch import model as M
from repro.uarch.branch_predictor import BranchPredictor
from repro.uarch.cache import DataCache
from repro.uarch.classify import uops_of
from repro.uarch.model import ProcessorModel
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction


@dataclass
class SimStats:
    model_name: str
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.counters.get(C.CPU_CYCLES, 0)

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def ipc(self) -> float:
        cycles = self.cycles or 1
        return self.counters.get(C.INSTRUCTIONS, 0) / cycles


class _LsdTracker:
    """Detects streamable loops from the dynamic branch behaviour."""

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self.branch_addr: Optional[int] = None
        self.target: Optional[int] = None
        self.iterations = 0
        self.lines: Set[int] = set()
        self.branches = 0
        self.poisoned = False       # body contained a disallowed insn
        self.active = False
        self.activations = 0

    def reset(self) -> None:
        self.branch_addr = None
        self.target = None
        self.iterations = 0
        self.lines = set()
        self.branches = 0
        self.poisoned = False
        self.active = False

    def observe(self, record: ExecRecord, is_branch: bool,
                taken: Optional[bool]) -> None:
        model = self.model
        insn = record.insn
        if not model.lsd_enabled:
            return
        if insn.is_call or insn.is_ret or insn.is_indirect_branch:
            self.reset()
            return

        self.lines.add(model.line_of(record.address))
        end_line = model.line_of(record.address + record.size - 1)
        self.lines.add(end_line)
        if is_branch:
            self.branches += 1

        if is_branch and taken:
            target = _taken_target(record)
            backward = target is not None and target <= record.address
            if backward and record.address == self.branch_addr \
                    and target == self.target:
                # Completed another iteration of the tracked loop.
                fits = (len(self.lines) <= model.lsd_max_lines
                        and self.branches <= model.lsd_max_branches
                        and not self.poisoned)
                if fits:
                    self.iterations += 1
                    if self.iterations >= model.lsd_min_iterations \
                            and not self.active:
                        self.active = True
                        self.activations += 1
                else:
                    self.iterations = 0
                    self.active = False
                self.lines = set()
                self.branches = 0
                self.poisoned = False
            elif backward:
                # New loop candidate.
                self.branch_addr = record.address
                self.target = target
                self.iterations = 0
                self.lines = set()
                self.branches = 0
                self.poisoned = False
                self.active = False
            else:
                # Forward taken branch inside the body is allowed; a taken
                # branch leaving the region kills streaming.
                if self.target is not None and target is not None \
                        and not (self.target <= target
                                 <= (self.branch_addr or 0)):
                    self.reset()
        elif is_branch and taken is False \
                and record.address == self.branch_addr:
            # Loop exit.
            self.reset()


def _taken_target(record: ExecRecord) -> Optional[int]:
    """Resolved target of a direct branch (from its final encoding)."""
    if record.insn.branch_target_label() is None:
        return None
    return _decode_target(record)


def _decode_target(record: ExecRecord) -> Optional[int]:
    insn = record.insn
    encoding = insn.encoding or b""
    address = record.address
    if not encoding:
        return None
    if insn.base == "jmp":
        if encoding[0] == 0xEB:
            rel = int.from_bytes(encoding[1:2], "little", signed=True)
            return address + 2 + rel
        if encoding[0] == 0xE9:
            rel = int.from_bytes(encoding[1:5], "little", signed=True)
            return address + 5 + rel
    if insn.base == "j":
        if 0x70 <= encoding[0] <= 0x7F:
            rel = int.from_bytes(encoding[1:2], "little", signed=True)
            return address + 2 + rel
        if encoding[0] == 0x0F and 0x80 <= encoding[1] <= 0x8F:
            rel = int.from_bytes(encoding[2:6], "little", signed=True)
            return address + 6 + rel
    return None


class PipelineSimulator:
    """Streaming consumer of ExecRecords; call feed() then finish()."""

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self.predictor = BranchPredictor(model)
        self.cache = DataCache(model) if model.cache_enabled else None
        self.lsd = _LsdTracker(model)

        self.frontend_cycle = 0
        self._decoded_this_cycle = 0
        self._current_line: Optional[int] = None

        self.reg_ready: Dict[str, int] = {}
        self.flags_ready = 0
        self.port_free: List[int] = [0] * model.num_ports
        self.mem_ready: Dict[int, int] = {}
        self._forwards: Dict[int, int] = {}
        self._fw_watermark = 0
        self._fw_gc_limit = 65536
        self.last_completion = 0

        self.counts: Dict[str, int] = {name: 0 for name in C.ALL}

        # Static per-instruction facts (uops, side effects, branch-ness)
        # memoized by identity; each value keeps a reference to its
        # instruction so an id can never be recycled while cached.
        self._facts: Dict[int, tuple] = {}

    # ---- helpers ---------------------------------------------------------

    def _frontend_advance(self, record: ExecRecord,
                          streaming: bool) -> int:
        """Account decode of one instruction; returns its fetch-ready cycle."""
        model = self.model
        if streaming:
            width = model.lsd_stream_width
            if self._decoded_this_cycle >= width:
                self.frontend_cycle += 1
                self._decoded_this_cycle = 0
            self._decoded_this_cycle += 1
            self.counts[C.LSD_UOPS] += 1
            return self.frontend_cycle

        line = model.line_of(record.address)
        end_line = model.line_of(record.address + max(record.size, 1) - 1)
        if self._current_line is None or line != self._current_line:
            # Every fetched decode line costs one fetch slot (16 bytes per
            # cycle on Core-2) — including the line a taken branch lands
            # on.  This is the §III.C.e mechanism: a one-line loop fetches
            # one line per iteration, a boundary-straddling one fetches
            # two.
            self.frontend_cycle += 1
            self._decoded_this_cycle = 0
            self.counts[C.DECODE_LINES] += 1
            self._current_line = line
        # An instruction spilling into the next line consumes it too.
        while end_line > self._current_line:
            self.frontend_cycle += 1
            self._current_line += 1
            self.counts[C.DECODE_LINES] += 1
            self._decoded_this_cycle = 0
        if self._decoded_this_cycle >= model.decode_width:
            self.frontend_cycle += 1
            self._decoded_this_cycle = 0
        self._decoded_this_cycle += 1
        return self.frontend_cycle

    def _issue_port(self, uop_class: str, ready: int) -> int:
        ports = self.model.port_map.get(uop_class, ())
        if not ports:
            return ready                      # NOPs use no port
        best_port = min(ports, key=lambda p: max(self.port_free[p], ready))
        issue = max(self.port_free[best_port], ready)
        self.port_free[best_port] = issue + 1
        return issue

    def _complete(self, issue: int, latency: int,
                  produces_result: bool = True) -> int:
        """Completion cycle honouring the forwarding-bandwidth limit.

        Only register results occupy forwarding slots (branches and
        flag-only compares don't).  When sustained demand exceeds the
        bandwidth, results back up; the watermark keeps the search for a
        free slot O(1).
        """
        cycle = issue + latency
        if not produces_result:
            if cycle > self.last_completion:
                self.last_completion = cycle
            return cycle
        if self._fw_watermark > cycle \
                and self._forwards.get(cycle, 0) >= self.model.forwarding_bw:
            cycle = self._fw_watermark
        while self._forwards.get(cycle, 0) >= self.model.forwarding_bw:
            cycle += 1
            self.counts[C.RESOURCE_STALLS_RS_FULL] += 1
        self._forwards[cycle] = self._forwards.get(cycle, 0) + 1
        if cycle > self._fw_watermark:
            self._fw_watermark = cycle
        if cycle > self.last_completion:
            self.last_completion = cycle
        return cycle

    def _operand_ready(self, insn: Instruction) -> int:
        ready = 0
        try:
            uses = sideeffects.reg_uses(insn)
            reads_flags = bool(sideeffects.flags_read(insn))
        except sideeffects.UnknownSideEffects:
            uses = {r.group for r in insn.register_operands()}
            reads_flags = True
        for group in uses:
            t = self.reg_ready.get(group, 0)
            if t > ready:
                ready = t
        if reads_flags and self.flags_ready > ready:
            ready = self.flags_ready
        return ready

    def _insn_facts(self, insn: Instruction) -> tuple:
        """Resolve per-instruction static facts once, not once per record."""
        facts = self._facts.get(id(insn))
        if facts is not None:
            return facts
        uop_list = uops_of(insn)
        try:
            uses = frozenset(sideeffects.reg_uses(insn))
            reads_flags = bool(sideeffects.flags_read(insn))
        except sideeffects.UnknownSideEffects:
            uses = frozenset(r.group for r in insn.register_operands())
            reads_flags = True
        try:
            defs = frozenset(sideeffects.reg_defs(insn))
            wflags = bool(sideeffects.flags_written(insn)
                          | sideeffects.flags_undefined(insn))
        except sideeffects.UnknownSideEffects:
            defs = frozenset(r.group for r in insn.register_operands())
            wflags = True
        base = insn.base
        if base.startswith("prefetch"):
            prefetch = 1 if base == "prefetchnta" else 2
        else:
            prefetch = 0
        facts = (insn, uop_list, uses, reads_flags, defs, wflags,
                 base in ("j", "jmp", "call", "ret"), base == "j", prefetch)
        self._facts[id(insn)] = facts
        return facts

    # ---- main ------------------------------------------------------------

    def feed(self, record: ExecRecord) -> None:
        model = self.model
        insn = record.insn
        self.counts[C.INSTRUCTIONS] += 1

        streaming = self.lsd.active
        fetch_cycle = self._frontend_advance(record, streaming)

        (_, uop_list, uses, reads_flags, defs, wflags, is_branch, is_cond,
         prefetch) = self._insn_facts(insn)

        operand_ready = fetch_cycle
        for group in uses:
            t = self.reg_ready.get(group, 0)
            if t > operand_ready:
                operand_ready = t
        if reads_flags and self.flags_ready > operand_ready:
            operand_ready = self.flags_ready
        self.counts[C.UOPS] += len(uop_list)

        has_reg_result = bool(defs)

        # Prefetch hints touch the cache without port pressure.
        if prefetch and self.cache is not None and record.ea is not None:
            if prefetch == 1:
                self.cache.hint_nta(record.ea)
            else:
                self.cache.access(record.ea)

        load_done = None
        completion = operand_ready
        for uop_class, is_load, is_store in uop_list:
            ready = operand_ready
            if is_load:
                self.counts[C.MEM_LOADS] += 1
                latency = model.latency[M.LOAD]
                if record.ea is not None:
                    ready = max(ready,
                                self.mem_ready.get(record.ea >> 3, 0))
                    if self.cache is not None:
                        if not self.cache.access(record.ea):
                            latency += model.memory_latency
                            self.counts[C.L1D_MISSES] += 1
                        # Next-line prefetcher, indexed by load PC: a load
                        # sitting at a stride multiple aliases a dead
                        # table slot and gets no prefetch (§III.C.h);
                        # non-temporal accesses suppress it too.
                        if model.prefetcher_enabled \
                                and not self.cache.last_access_nta \
                                and not (
                                model.prefetch_pc_alias_stride
                                and record.address
                                % model.prefetch_pc_alias_stride == 0):
                            self.cache.access(
                                record.ea + model.cache_line_bytes)
                issue = self._issue_port(M.LOAD, ready)
                load_done = self._complete(issue, latency)
                completion = max(completion, load_done)
                continue
            if is_store:
                self.counts[C.MEM_STORES] += 1
                ready = max(ready, completion)
                issue = self._issue_port(M.STORE, ready)
                done = issue + model.latency[M.STORE]
                if record.ea is not None:
                    self.mem_ready[record.ea >> 3] = done
                    if self.cache is not None:
                        if not self.cache.access(record.ea, is_write=True):
                            self.counts[C.L1D_MISSES] += 1
                completion = max(completion, done)
                continue
            # compute uop
            ready = max(ready, load_done or 0)
            if uop_class == M.NOP:
                continue
            issue = self._issue_port(uop_class, ready)
            done = self._complete(
                issue, model.latency.get(uop_class, 1),
                produces_result=(has_reg_result
                                 and uop_class != M.BRANCH))
            completion = max(completion, done)

        # Write-backs.
        for group in defs:
            self.reg_ready[group] = completion
        if wflags:
            self.flags_ready = completion

        # Branch handling.
        taken = record.taken
        if is_cond:
            self.counts[C.BR_EXEC] += 1
            mispredicted = self.predictor.update(record.address,
                                                 bool(taken))
            if mispredicted:
                self.counts[C.BR_MISP] += 1
                resume = completion + model.bp_mispredict_penalty
                if resume > self.frontend_cycle:
                    self.frontend_cycle = resume
                self._current_line = None
                self._decoded_this_cycle = 0
        if is_branch and taken and not streaming:
            # Redirect: next fetch starts a new line.  While the LSD
            # streams, the loop-back branch costs nothing — replay
            # continues seamlessly.
            self._current_line = None
            self._decoded_this_cycle = 0

        self.lsd.observe(record, is_branch, taken)
        was_active = self.lsd.active
        if streaming and not was_active:
            # Fell out of the LSD: fetch restarts.
            self._current_line = None

        # Garbage-collect the forwarding histogram occasionally.  On
        # backend-bound traces every entry can sit above the horizon; the
        # adaptive limit keeps a fruitless sweep from re-running per
        # record (which made the walk quadratic in trace length).
        if len(self._forwards) > self._fw_gc_limit:
            horizon = self.frontend_cycle
            self._forwards = {c: n for c, n in self._forwards.items()
                              if c >= horizon}
            self._fw_gc_limit = max(65536, 2 * len(self._forwards))

    def finish(self) -> SimStats:
        total = max(self.frontend_cycle, self.last_completion) + 1
        self.counts[C.CPU_CYCLES] = total
        self.counts[C.LSD_ACTIVE_LOOPS] = self.lsd.activations
        if self.cache is not None:
            self.counts[C.L1D_EVICTIONS] = self.cache.evictions
        stats = SimStats(self.model.name, dict(self.counts))
        return stats

    # ---- steady-state fast-forward support --------------------------------

    def _ff_snapshot(self) -> dict:
        """Copy every piece of state the loop validator must certify."""
        lsd = self.lsd
        return {
            "frontend": self.frontend_cycle,
            "decoded": self._decoded_this_cycle,
            "line": self._current_line,
            "reg_ready": dict(self.reg_ready),
            "flags_ready": self.flags_ready,
            "port_free": list(self.port_free),
            "mem_ready": dict(self.mem_ready),
            "forwards": dict(self._forwards),
            "fw_watermark": self._fw_watermark,
            "last_completion": self.last_completion,
            "counts": dict(self.counts),
            "pred": self.predictor.ff_snapshot(),
            "cache": self.cache.ff_snapshot() if self.cache is not None
            else None,
            "lsd": (lsd.branch_addr, lsd.target, lsd.iterations,
                    frozenset(lsd.lines), lsd.branches, lsd.poisoned,
                    lsd.active, lsd.activations),
        }


# ---------------------------------------------------------------------------
# Steady-state loop fast-forward.
# ---------------------------------------------------------------------------

_FF_ENABLED = True
_FF_STATS = {
    "loops_entered": 0,
    "iterations_fast_forwarded": 0,
    "records_fast_forwarded": 0,
    "validation_failures": 0,
}


def fast_forward_stats() -> Dict[str, object]:
    stats: Dict[str, object] = dict(_FF_STATS)
    stats["enabled"] = _FF_ENABLED
    return stats


def reset_fast_forward_stats() -> None:
    for key in _FF_STATS:
        _FF_STATS[key] = 0


def set_fast_forward_enabled(enabled: bool) -> bool:
    global _FF_ENABLED
    previous = _FF_ENABLED
    _FF_ENABLED = bool(enabled)
    return previous


@contextmanager
def fast_forward_disabled() -> Iterator[None]:
    previous = set_fast_forward_enabled(False)
    try:
        yield
    finally:
        set_fast_forward_enabled(previous)


def _clock_ok(v0: int, v1: int, c: int, h0: int, h1: int) -> bool:
    """One clock value advanced by exactly *c*, or is dead in both snapshots.

    A clock value is *dead* once it is at or below the fetch horizon: every
    future use is ``max(value, ready)`` with ``ready >= frontend_cycle``, so
    it can never influence an issue time, a completion, or a counter again.
    Dead values are allowed to drift between the fast-forwarded run and the
    full replay — that drift is counter-invisible by construction.
    """
    return v1 == v0 + c or (v0 <= h0 and v1 <= h1)


def _ff_delta(s0: dict, s1: dict, expected_records: int) -> Optional[dict]:
    """Validate one measured period; return its delta or None if unsound."""
    c = s1["frontend"] - s0["frontend"]
    if c < 1:
        return None
    h0, h1 = s0["frontend"], s1["frontend"]
    if s1["decoded"] != s0["decoded"] or s1["line"] != s0["line"]:
        return None
    if not _clock_ok(s0["flags_ready"], s1["flags_ready"], c, h0, h1):
        return None
    if not _clock_ok(s0["fw_watermark"], s1["fw_watermark"], c, h0, h1):
        return None
    if not _clock_ok(s0["last_completion"], s1["last_completion"], c, h0,
                     h1):
        return None
    for v0, v1 in zip(s0["port_free"], s1["port_free"]):
        if not _clock_ok(v0, v1, c, h0, h1):
            return None
    for table in ("reg_ready", "mem_ready"):
        t0, t1 = s0[table], s1[table]
        for key in t0.keys() | t1.keys():
            if not _clock_ok(t0.get(key, 0), t1.get(key, 0), c, h0, h1):
                return None
    # The forwarding histogram must match exactly on its live window
    # (entries below the horizon can never be indexed again).
    live0 = {k: v for k, v in s0["forwards"].items() if k >= h0}
    live1 = {k - c: v for k, v in s1["forwards"].items() if k >= h1}
    if live0 != live1:
        return None
    table0, npred0, nmisp0 = s0["pred"]
    table1, npred1, nmisp1 = s1["pred"]
    if table0 != table1:
        return None
    if s0["cache"] is not None:
        c0, c1 = s0["cache"], s1["cache"]
        if c0[:3] != c1[:3]:
            return None
        cache_delta = (c1[3] - c0[3], c1[4] - c0[4], c1[5] - c0[5])
    else:
        cache_delta = (0, 0, 0)
    l0, l1 = s0["lsd"], s1["lsd"]
    if (l0[0], l0[1], l0[3], l0[4], l0[5], l0[6], l0[7]) \
            != (l1[0], l1[1], l1[3], l1[4], l1[5], l1[6], l1[7]):
        return None
    lsd_iters = l1[2] - l0[2]
    # An LSD candidate still below its activation threshold would flip the
    # front end into streaming mode partway through the skipped region;
    # only fast-forward once it has activated (or will never track).
    if lsd_iters != 0 and not l1[6]:
        return None
    counts_delta: Dict[str, int] = {}
    for name, after in s1["counts"].items():
        diff = after - s0["counts"][name]
        if diff < 0:
            return None
        counts_delta[name] = diff
    if counts_delta.get(C.INSTRUCTIONS, 0) != expected_records:
        return None
    return {"c": c, "counts": counts_delta,
            "pred": (npred1 - npred0, nmisp1 - nmisp0),
            "cache": cache_delta, "lsd_iters": lsd_iters}


def _ff_apply(pl: PipelineSimulator, delta: dict, repeats: int) -> None:
    """Advance the pipeline by *repeats* validated iterations at once."""
    shift = delta["c"] * repeats
    pl.frontend_cycle += shift
    pl.flags_ready += shift
    pl._fw_watermark += shift
    pl.last_completion += shift
    pl.port_free = [v + shift for v in pl.port_free]
    pl.reg_ready = {k: v + shift for k, v in pl.reg_ready.items()}
    pl.mem_ready = {k: v + shift for k, v in pl.mem_ready.items()}
    pl._forwards = {k + shift: v for k, v in pl._forwards.items()}
    counts = pl.counts
    for name, diff in delta["counts"].items():
        if diff:
            counts[name] += diff * repeats
    d_pred, d_misp = delta["pred"]
    pl.predictor.ff_apply(d_pred, d_misp, repeats)
    if pl.cache is not None:
        pl.cache.ff_apply(*delta["cache"], repeats)
    pl.lsd.iterations += delta["lsd_iters"] * repeats


class FastForwardEngine:
    """Streaming wrapper around a PipelineSimulator that skips steady loops.

    Feed it ExecRecords like a pipeline.  It keys loops by their taken
    backward branch, fingerprints each iteration as the tuple of
    ``(address, taken, ea)`` records in its body, and once
    ``min_repeats`` consecutive iterations fingerprint identically it
    measures one period and validates the soundness condition (see
    ``_ff_delta``).  While a validated loop keeps matching, whole
    iterations are replaced by one ``_ff_apply`` per drained batch; the
    first diverging record replays any buffered partial iteration through
    the normal walk, so exits are exact.
    """

    def __init__(self, pipeline: PipelineSimulator, min_repeats: int = 8,
                 max_body: int = 2048) -> None:
        self.pl = pipeline
        self.min_repeats = min_repeats
        self.max_body = max_body
        self._targets: Dict[int, tuple] = {}

        self.cur: List[tuple] = []          # records since last boundary
        self.key: Optional[tuple] = None    # (branch addr, target)
        self.prev_sig: Optional[tuple] = None
        self.repeats = 0
        self._retry_at: Dict[tuple, int] = {}

        self.measuring = False
        self.measure_left = 0
        self.s0: Optional[dict] = None
        self.period = 1
        self.fails = 0

        self.skipping = False
        self.unit_sig: Tuple[tuple, ...] = ()
        self.pos = 0
        self.buf: List[ExecRecord] = []
        self.pending = 0
        self.delta: Optional[dict] = None
        self._draining = False

    # -- skip state ---------------------------------------------------------

    def feed(self, record: ExecRecord) -> None:
        if self.skipping:
            if (record.address, record.taken, record.ea) \
                    == self.unit_sig[self.pos]:
                self.buf.append(record)
                self.pos += 1
                if self.pos == len(self.unit_sig):
                    self.pending += 1
                    self.pos = 0
                    self.buf.clear()
                return
            self._drain()
        self._scan_feed(record)

    def _drain(self) -> None:
        """Apply accumulated skips, then replay the buffered partial tail."""
        pending, buffered = self.pending, self.buf
        self.skipping = False
        self.pending = 0
        self.buf = []
        self.pos = 0
        if pending:
            _ff_apply(self.pl, self.delta, pending)
            _FF_STATS["iterations_fast_forwarded"] += pending * self.period
            _FF_STATS["records_fast_forwarded"] += \
                pending * len(self.unit_sig)
        self._draining = True
        try:
            for buffered_record in buffered:
                self._scan_feed(buffered_record)
        finally:
            self._draining = False

    # -- scan/measure state --------------------------------------------------

    def _scan_feed(self, record: ExecRecord) -> None:
        self.pl.feed(record)
        self.cur.append((record.address, record.taken, record.ea))
        if record.taken:
            key = self._backward_key(record)
            if key is not None:
                self._boundary(key)
                return
        if len(self.cur) > self.max_body:
            self.cur = []
            self.prev_sig = None
            self.repeats = 0
            self.measuring = False

    def _backward_key(self, record: ExecRecord) -> Optional[tuple]:
        cached = self._targets.get(id(record.insn))
        if cached is None:
            # Pin the instruction in the cache value so its id stays unique
            # for this engine's lifetime.
            cached = (record.insn, _taken_target(record))
            self._targets[id(record.insn)] = cached
        target = cached[1]
        if target is not None and target <= record.address:
            return (record.address, target)
        return None

    def _boundary(self, key: tuple) -> None:
        sig = tuple(self.cur)
        self.cur = []
        if self.measuring:
            if key == self.key and sig == self.prev_sig:
                self.measure_left -= 1
                if self.measure_left > 0:
                    return
                s1 = self.pl._ff_snapshot()
                delta = _ff_delta(self.s0, s1, len(sig) * self.period)
                if delta is not None:
                    self.measuring = False
                    self.delta = delta
                    self.unit_sig = sig * self.period
                    self.skipping = True
                    self.pos = 0
                    self.pending = 0
                    self.buf = []
                    _FF_STATS["loops_entered"] += 1
                    return
                _FF_STATS["validation_failures"] += 1
                self.fails += 1
                if self.fails >= 6:
                    # Not steady yet (warm-up, drifting clocks): back off
                    # exponentially before re-arming this loop.
                    self._retry_at[key] = self.repeats * 2 + 16
                    self.measuring = False
                    return
                if self.fails in (2, 4):
                    # A period-p pattern (e.g. decode slots realigning
                    # every other iteration) validates at a multiple.
                    self.period *= 2
                self.s0 = s1
                self.measure_left = self.period
                return
            self.measuring = False   # pattern broke mid-measurement
        if key == self.key and sig == self.prev_sig:
            self.repeats += 1
            if not self._draining and not self.skipping \
                    and self.repeats >= self._retry_at.get(
                        key, self.min_repeats):
                self.s0 = self.pl._ff_snapshot()
                self.measure_left = self.period
                self.measuring = True
        else:
            self.key = key
            self.prev_sig = sig
            self.repeats = 0
            self.period = 1
            self.fails = 0

    def finish(self) -> SimStats:
        if self.skipping:
            self._drain()
        return self.pl.finish()


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------

def simulate_trace(trace: Iterable[ExecRecord], model: ProcessorModel,
                   fast_forward: bool = True) -> SimStats:
    """Run the timing model over a complete trace."""
    with obs.span("simulate", model=model.name, streaming=False,
                  fast_forward=bool(fast_forward and _FF_ENABLED)) as span:
        pipeline = PipelineSimulator(model)
        if fast_forward and _FF_ENABLED:
            engine = FastForwardEngine(pipeline)
            for record in trace:
                engine.feed(record)
            stats = engine.finish()
        else:
            for record in trace:
                pipeline.feed(record)
            stats = pipeline.finish()
        if span:
            span.attach(cycles=stats.cycles,
                        instructions=stats[C.INSTRUCTIONS])
    return stats


def simulate_reference(trace: Iterable[ExecRecord],
                       model: ProcessorModel) -> SimStats:
    """The retained full walk: every record through the pipeline, no skips."""
    return simulate_trace(trace, model, fast_forward=False)


def simulate_program(program: LoadedProgram, model: ProcessorModel,
                     entry: Optional[int] = None,
                     max_steps: int = 5_000_000,
                     args: Optional[List[int]] = None,
                     fast_forward: bool = True,
                     private_memory: bool = False
                     ) -> Tuple[RunResult, SimStats]:
    """Execute a loaded program and time it in one streaming pass.

    Records flow from the interpreter's ``trace_callback`` straight into
    the pipeline (optionally through the fast-forward engine) — no trace
    list is materialized.  ``private_memory`` runs against a clone of the
    program's memory image so the same LoadedProgram can be reused across
    sweeps.
    """
    with obs.span("simulate", model=model.name,
                  fast_forward=bool(fast_forward and _FF_ENABLED)) as span:
        if span:
            from repro.sim.interp import block_cache_stats
            ff_before = dict(_FF_STATS)
            blk_before = block_cache_stats()
        pipeline = PipelineSimulator(model)
        consumer: Callable[[ExecRecord], None]
        if fast_forward and _FF_ENABLED:
            engine = FastForwardEngine(pipeline)
            finisher = engine
        else:
            finisher = pipeline
        interp = Interpreter(program, max_steps=max_steps,
                             private_memory=private_memory)
        result = interp.run(entry=entry, trace_callback=finisher.feed,
                            args=args)
        stats = finisher.finish()
        if span:
            blk_after = block_cache_stats()
            span.attach(
                cycles=stats.cycles,
                instructions=result.steps,
                reason=result.reason,
                ff_loops=_FF_STATS["loops_entered"]
                - ff_before["loops_entered"],
                ff_iterations=_FF_STATS["iterations_fast_forwarded"]
                - ff_before["iterations_fast_forwarded"],
                ff_records=_FF_STATS["records_fast_forwarded"]
                - ff_before["records_fast_forwarded"],
                block_hits=int(blk_after["block_hits"])
                - int(blk_before["block_hits"]),
                blocks_compiled=int(blk_after["blocks_compiled"])
                - int(blk_before["blocks_compiled"]))
    return result, stats


def simulate_unit(unit: MaoUnit, model: ProcessorModel,
                  entry_symbol: str = "main",
                  max_steps: int = 5_000_000,
                  args: Optional[List[int]] = None,
                  fast_forward: bool = True) -> Tuple[RunResult, SimStats]:
    """Load a unit and stream-simulate it (see ``simulate_program``)."""
    with obs.span("load", entry=entry_symbol):
        program = load_unit(unit, entry_symbol)
    return simulate_program(program, model, max_steps=max_steps, args=args,
                            fast_forward=fast_forward)
