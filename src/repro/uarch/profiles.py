"""Processor parameter profiles.

``core2`` and ``opteron`` correspond to the paper's two evaluation
platforms.  The parameters are chosen so the documented cliffs appear:

* **core2** — 16-byte decode lines, a 4-line Loop Stream Detector with a
  64-iteration threshold, branch-predictor tables indexed by ``PC >> 5``,
  the asymmetric ports from §III.F ("lea can only be executed on port 0,
  sarl on ports 0 and 5"), and a forwarding-bandwidth limit.

* **opteron** — wider 32-byte fetch windows (16-byte alignment matters
  less), 3-wide decode, symmetric integer ALUs, *no documented LSD* but a
  single-window loop buffer: the paper observed an LSD-like effect on AMD
  ("we are not aware of a published LSD-like structure on AMD platforms,
  therefore this result points to yet another unknown micro-architectural
  effect") — modelled here as streaming for loops that fit one 32-byte
  window.

* **pentium4** — narrow decode and a long pipeline (the Nopinizer found an
  unexplained 4% on "an older Pentium 4 platform").

``blinded_profile`` returns a processor with *hidden, randomized*
parameters for the Section-IV detection experiments: the detection code
must recover them through microbenchmarks alone.

Seed contract: ``blinded_profile(seed)`` is a pure function of its
``seed`` argument.  The same seed always yields a model whose *every*
field compares equal (``ProcessorModel`` is a dataclass, so ``==`` is
field-wise), across processes and Python versions — the draws go through
a private ``random.Random(seed)`` instance, never the global RNG, so
calling it neither perturbs nor is perturbed by other randomness.
Experiments should therefore record only the seed; the hidden
parameters are reproducible from it.  ``name=`` is cosmetic and the
only way two same-seed models may differ.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.uarch import model as M
from repro.uarch.model import ProcessorModel


def core2() -> ProcessorModel:
    return ProcessorModel(
        name="core2",
        decode_line_bytes=16,
        decode_width=4,
        lsd_enabled=True,
        lsd_max_lines=4,
        lsd_min_iterations=64,
        lsd_max_branches=4,
        bp_table_size=512,
        bp_index_shift=5,
        bp_mispredict_penalty=15,
        issue_width=4,
        num_ports=6,
        port_map={
            M.ALU: (0, 1, 5),
            M.LEA: (0,),            # §III.F: lea only on port 0
            M.SHIFT: (0, 5),        # §III.F: sarl on ports 0 and 5
            M.MUL: (1,),
            M.DIV: (0,),
            M.LOAD: (2,),
            M.STORE: (3,),
            M.BRANCH: (5,),
            M.FP_ADD: (1,),
            M.FP_MUL: (0,),
            M.FP_DIV: (0,),
            M.FP_MOV: (0, 1, 5),
            M.CMOV: (0, 1),
            M.NOP: (),
        },
        latency={
            M.ALU: 1, M.LEA: 1, M.SHIFT: 1, M.MUL: 3, M.DIV: 22,
            M.LOAD: 3, M.STORE: 1, M.BRANCH: 1,
            M.FP_ADD: 3, M.FP_MUL: 5, M.FP_DIV: 18, M.FP_MOV: 1,
            M.CMOV: 2, M.NOP: 0,
        },
        forwarding_bw=3,
        memory_latency=35,
    )


def opteron() -> ProcessorModel:
    return ProcessorModel(
        name="opteron",
        decode_line_bytes=32,
        decode_width=3,
        lsd_enabled=True,           # the "unknown LSD-like structure"
        lsd_max_lines=1,
        lsd_min_iterations=32,
        lsd_max_branches=1,
        lsd_stream_width=6,         # the loop buffer bypasses decode limits
        bp_table_size=1024,
        bp_index_shift=4,
        bp_mispredict_penalty=12,
        issue_width=3,
        num_ports=6,
        port_map={
            M.ALU: (0, 1, 2),       # symmetric integer ALUs
            M.LEA: (0, 1, 2),
            M.SHIFT: (0, 1, 2),
            M.MUL: (0,),
            M.DIV: (0,),
            M.LOAD: (3,),
            M.STORE: (4,),
            M.BRANCH: (2,),
            M.FP_ADD: (5,),
            M.FP_MUL: (5,),
            M.FP_DIV: (5,),
            M.FP_MOV: (5, 0),
            M.CMOV: (0, 1),
            M.NOP: (),
        },
        latency={
            M.ALU: 1, M.LEA: 2, M.SHIFT: 1, M.MUL: 3, M.DIV: 23,
            M.LOAD: 3, M.STORE: 1, M.BRANCH: 1,
            M.FP_ADD: 4, M.FP_MUL: 4, M.FP_DIV: 20, M.FP_MOV: 1,
            M.CMOV: 2, M.NOP: 0,
        },
        forwarding_bw=3,
        memory_latency=40,
    )


def pentium4() -> ProcessorModel:
    return ProcessorModel(
        name="pentium4",
        decode_line_bytes=16,
        decode_width=1,
        lsd_enabled=False,
        bp_table_size=256,
        bp_index_shift=5,
        bp_mispredict_penalty=24,
        issue_width=3,
        forwarding_bw=2,
        memory_latency=50,
    )


def blinded_profile(seed: int = 0,
                    name: Optional[str] = None) -> ProcessorModel:
    """A processor with hidden parameters for detection experiments.

    The returned model's parameters are drawn from realistic ranges; the
    Section-IV microbenchmark framework must *infer* them (decode-line
    size, branch-predictor index shift, LSD capacity, latencies) from
    measurements only.
    """
    rng = random.Random(seed)
    return ProcessorModel(
        name=name or ("blinded-%d" % seed),
        decode_line_bytes=rng.choice([16, 32]),
        decode_width=rng.choice([3, 4]),
        lsd_enabled=True,
        lsd_max_lines=rng.choice([2, 3, 4, 6]),
        lsd_min_iterations=rng.choice([32, 64]),
        bp_table_size=512,
        bp_index_shift=rng.choice([4, 5, 6]),
        bp_mispredict_penalty=rng.choice([12, 15, 20]),
        latency={
            M.ALU: 1,
            M.MUL: rng.choice([3, 4, 5]),
            M.DIV: rng.choice([20, 22, 26]),
            M.LOAD: rng.choice([3, 4]),
            M.FP_ADD: rng.choice([3, 4]),
            M.FP_MUL: rng.choice([4, 5, 6]),
        },
        forwarding_bw=rng.choice([2, 3]),
    )
