"""Processor parameter profiles — loaded from ``pymao.uarch/1`` data.

``core2`` and ``opteron`` correspond to the paper's two evaluation
platforms.  The parameters live in ``src/repro/uarch/data/<name>.json``
(the :mod:`repro.uarch.tables` schema); the factories here load those
documents, so each call returns a fresh, independently mutable
:class:`~repro.uarch.model.ProcessorModel`.  Golden tests pin the data
files field-wise against the historical constructor values — the
documented cliffs stay put:

* **core2** — 16-byte decode lines, a 4-line Loop Stream Detector with a
  64-iteration threshold, branch-predictor tables indexed by ``PC >> 5``,
  the asymmetric ports from §III.F ("lea can only be executed on port 0,
  sarl on ports 0 and 5"), and a forwarding-bandwidth limit.

* **opteron** — wider 32-byte fetch windows, 3-wide decode, symmetric
  integer ALUs, and the paper's "unknown LSD-like structure" modelled as
  streaming for loops that fit one 32-byte window.

* **pentium4** — narrow decode and a long pipeline (the Nopinizer found
  an unexplained 4% on "an older Pentium 4 platform").

New flavors (``skylake``, ``zen``) are data-only: drop a document in the
data directory and every surface accepting a core name picks it up —
there is deliberately no Python factory for them here.

``blinded_profile`` returns a processor with *hidden, randomized*
parameters for the Section-IV detection experiments: the detection code
(and the :mod:`repro.discover` engine) must recover them through
microbenchmarks alone.  The draw ranges live in
``data/blinded.ranges.json`` — the same document the discovery tests use
as their hypothesis space, so the seed contract and the search space
cannot drift apart.

Seed contract: ``blinded_profile(seed)`` is a pure function of its
``seed`` argument.  The same seed always yields a model whose *every*
field compares equal (``ProcessorModel`` is a dataclass, so ``==`` is
field-wise), across processes and Python versions — the draws go through
a private ``random.Random(seed)`` instance, never the global RNG, and
consume one ``rng.choice`` per ``draws`` entry *in file order*.  New
parameters may only be appended to the end of ``draws``: appending
leaves every existing seed's values for the older parameters untouched.
``name=`` is cosmetic and the only way two same-seed models may differ.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.uarch import tables
from repro.uarch.model import ProcessorModel


def core2() -> ProcessorModel:
    return tables.get_profile("core2")


def opteron() -> ProcessorModel:
    return tables.get_profile("opteron")


def pentium4() -> ProcessorModel:
    return tables.get_profile("pentium4")


def blinded_profile(seed: int = 0,
                    name: Optional[str] = None) -> ProcessorModel:
    """A processor with hidden parameters for detection experiments.

    The returned model's parameters are drawn from the realistic ranges
    in ``data/blinded.ranges.json``; the Section-IV microbenchmark
    framework and ``mao discover`` must *infer* them (decode-line size,
    decode width, LSD capacity and threshold, branch-predictor shift and
    penalty, latencies, port sets, forwarding bandwidth) from
    measurements only.
    """
    ranges = tables.load_ranges()
    rng = random.Random(seed)
    params = {entry["path"]: rng.choice(entry["choices"])
              for entry in ranges["draws"]}
    params.update(ranges["fixed"])
    return tables.model_from_params(name or ("blinded-%d" % seed), params)
