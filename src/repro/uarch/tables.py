"""``repro.uarch.tables`` — the versioned on-disk profile format.

A processor profile is one JSON document in the ``pymao.uarch/1`` schema:
per-instruction-class latency/throughput/port usage in the uops.info
style (Abel & Reineke), plus the front-end, LSD, branch-predictor,
back-end and memory parameters the trace simulator and the static model
consume.  ``core2``/``opteron``/``pentium4`` are *data files* under
``src/repro/uarch/data/`` (pinned field-wise against the legacy
constructors by golden tests), and new flavors — ``skylake``, ``zen`` —
are data-only additions requiring zero code changes.

Document shape::

    {"schema": "pymao.uarch/1",
     "name": "core2",
     "frontend": {"decode_line_bytes": 16, "decode_width": 4,
                  "lines_per_cycle": 1},
     "lsd": {"enabled": true, "max_lines": 4, "min_iterations": 64,
             "max_branches": 4, "stream_width": 4},
     "branch_predictor": {"table_size": 512, "index_shift": 5,
                          "mispredict_penalty": 15},
     "backend": {"issue_width": 4, "num_ports": 6, "forwarding_bw": 3,
                 "rs_size": 32},
     "instructions": {"alu": {"latency": 1, "ports": [0, 1, 5],
                              "throughput": 0.33}, ...},
     "memory": {...},
     "meta": {...}}                      # optional, provenance only

``throughput`` is the uops.info-style reciprocal throughput implied by
the port set (``1/len(ports)``); it is informational — the loader
derives the :class:`~repro.uarch.model.ProcessorModel` from ``latency``
and ``ports`` alone, and ``meta`` never participates in equality.

The module also owns :func:`resolve_core` — the one ``core=`` spelling
used by ``repro.api``, the CLI and the server: a
:class:`ProcessorModel`, a registered profile name, a path to a
``.json`` profile, or an inline profile document all resolve to a fresh
model.

``blinded.ranges.json`` (schema ``pymao.uarch-ranges/1``) lives in the
same data directory: the ordered parameter draws behind
``profiles.blinded_profile`` *and* the hypothesis space the
``repro.discover`` engine searches — one source of truth for the seed
contract and the discovery tests.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.result import register_schema
from repro.uarch.model import UOP_CLASSES, ProcessorModel

#: Schema tag of one on-disk processor profile.
UARCH_SCHEMA = register_schema("uarch", "pymao.uarch/1")

#: Schema tag of the blinded-profile parameter-range document.
RANGES_SCHEMA = register_schema("uarch-ranges", "pymao.uarch-ranges/1")

#: Directory holding the built-in profile data files.
DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")

#: Filename of the blinded-profile draw ranges (not a profile itself).
RANGES_FILENAME = "blinded.ranges.json"


class ProfileError(ValueError):
    """A profile document or file failed validation.

    Subclasses ``ValueError`` so surfaces that already map ``ValueError``
    to a clean CLI/API error (``mao`` exit 1, HTTP 400) cover profile
    problems without new plumbing.
    """


# ---------------------------------------------------------------------------
# Parameter paths: the dotted names shared by the ranges file, the
# discovery engine's inference report and the profile documents.
# ---------------------------------------------------------------------------

#: dotted path -> ProcessorModel field, for every scalar parameter.
_SCALAR_PATHS: Dict[str, str] = {
    "frontend.decode_line_bytes": "decode_line_bytes",
    "frontend.decode_width": "decode_width",
    "frontend.lines_per_cycle": "lines_per_cycle",
    "lsd.enabled": "lsd_enabled",
    "lsd.max_lines": "lsd_max_lines",
    "lsd.min_iterations": "lsd_min_iterations",
    "lsd.max_branches": "lsd_max_branches",
    "lsd.stream_width": "lsd_stream_width",
    "branch_predictor.table_size": "bp_table_size",
    "branch_predictor.index_shift": "bp_index_shift",
    "branch_predictor.mispredict_penalty": "bp_mispredict_penalty",
    "backend.issue_width": "issue_width",
    "backend.num_ports": "num_ports",
    "backend.forwarding_bw": "forwarding_bw",
    "backend.rs_size": "rs_size",
    "memory.cache_enabled": "cache_enabled",
    "memory.prefetcher_enabled": "prefetcher_enabled",
    "memory.prefetch_pc_alias_stride": "prefetch_pc_alias_stride",
    "memory.cache_size_bytes": "cache_size_bytes",
    "memory.cache_ways": "cache_ways",
    "memory.cache_line_bytes": "cache_line_bytes",
    "memory.memory_latency": "memory_latency",
}

#: The document sections and their scalar keys, derived from the paths.
_SECTIONS: Dict[str, List[str]] = {}
for _path in _SCALAR_PATHS:
    _section, _key = _path.split(".", 1)
    _SECTIONS.setdefault(_section, []).append(_key)


def param_value(model: ProcessorModel, path: str) -> Any:
    """Read the dotted *path* parameter off *model*.

    Scalar paths map to model fields; ``instructions.<class>.latency``
    and ``instructions.<class>.ports`` read the latency/port tables
    (ports as a list in *model order* — order is the issue-stage
    tie-break preference, so it is part of the parameter's value).
    """
    field = _SCALAR_PATHS.get(path)
    if field is not None:
        return getattr(model, field)
    parts = path.split(".")
    if len(parts) == 3 and parts[0] == "instructions":
        _, klass, leaf = parts
        if klass in UOP_CLASSES:
            if leaf == "latency":
                return model.latency[klass]
            if leaf == "ports":
                return list(model.port_map[klass])
    raise ProfileError("unknown profile parameter path %r" % (path,))


def model_from_params(name: str, params: Dict[str, Any]) -> ProcessorModel:
    """Build a model from ``{dotted path: value}`` (defaults elsewhere)."""
    kwargs: Dict[str, Any] = {"name": name}
    latency: Dict[str, int] = {}
    ports: Dict[str, Tuple[int, ...]] = {}
    for path, value in params.items():
        field = _SCALAR_PATHS.get(path)
        if field is not None:
            kwargs[field] = value
            continue
        parts = path.split(".")
        if len(parts) == 3 and parts[0] == "instructions" \
                and parts[1] in UOP_CLASSES:
            if parts[2] == "latency":
                latency[parts[1]] = int(value)
                continue
            if parts[2] == "ports":
                ports[parts[1]] = tuple(int(p) for p in value)
                continue
        raise ProfileError("unknown profile parameter path %r" % (path,))
    if latency:
        kwargs["latency"] = latency
    if ports:
        kwargs["port_map"] = ports
    return ProcessorModel(**kwargs)


# ---------------------------------------------------------------------------
# Document <-> model
# ---------------------------------------------------------------------------

def model_to_doc(model: ProcessorModel,
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Serialize *model* as a ``pymao.uarch/1`` document."""
    doc: Dict[str, Any] = {"schema": UARCH_SCHEMA, "name": model.name}
    for section in ("frontend", "lsd", "branch_predictor", "backend",
                    "instructions", "memory"):
        if section == "instructions":
            # Port order is significant: the issue stage breaks
            # earliest-free ties toward the first listed port, so the
            # document preserves the model's order verbatim.
            table: Dict[str, Any] = {}
            for klass in UOP_CLASSES:
                ports = list(model.port_map[klass])
                table[klass] = {
                    "latency": model.latency[klass],
                    "ports": ports,
                    "throughput": (round(1.0 / len(ports), 4)
                                   if ports else None),
                }
            doc[section] = table
        else:
            doc[section] = {
                key: getattr(model,
                             _SCALAR_PATHS["%s.%s" % (section, key)])
                for key in sorted(_SECTIONS[section])}
    if meta is not None:
        doc["meta"] = meta
    return doc


def _expect(condition: bool, message: str, where: str) -> None:
    if not condition:
        raise ProfileError("%s: %s" % (where, message))


def validate_doc(doc: Any, where: str = "profile") -> Dict[str, Any]:
    """Validate a ``pymao.uarch/1`` document; returns it on success.

    Raises :class:`ProfileError` with a one-line reason on any problem —
    wrong schema tag, missing/unknown sections or keys, bad types, port
    numbers outside ``backend.num_ports``.
    """
    _expect(isinstance(doc, dict), "document must be a JSON object", where)
    schema = doc.get("schema")
    _expect(schema == UARCH_SCHEMA,
            "schema is %r, expected %r" % (schema, UARCH_SCHEMA), where)
    _expect(isinstance(doc.get("name"), str) and doc["name"],
            "name must be a non-empty string", where)
    allowed_top = {"schema", "name", "meta"} | set(_SECTIONS) \
        | {"instructions"}
    for key in doc:
        _expect(key in allowed_top, "unknown top-level key %r" % (key,),
                where)
    for section, keys in sorted(_SECTIONS.items()):
        body = doc.get(section)
        _expect(isinstance(body, dict),
                "missing or non-object section %r" % (section,), where)
        for key in body:
            _expect(key in keys, "unknown key %r in section %r"
                    % (key, section), where)
        for key in keys:
            _expect(key in body, "section %r is missing key %r"
                    % (section, key), where)
            value = body[key]
            if key in ("enabled", "cache_enabled", "prefetcher_enabled"):
                _expect(isinstance(value, bool), "%s.%s must be a boolean"
                        % (section, key), where)
            else:
                _expect(isinstance(value, int)
                        and not isinstance(value, bool),
                        "%s.%s must be an integer" % (section, key), where)
    table = doc.get("instructions")
    _expect(isinstance(table, dict),
            "missing or non-object section 'instructions'", where)
    for klass in table:
        _expect(klass in UOP_CLASSES,
                "unknown instruction class %r" % (klass,), where)
    num_ports = doc["backend"]["num_ports"]
    for klass in UOP_CLASSES:
        entry = table.get(klass)
        _expect(isinstance(entry, dict),
                "instructions is missing class %r" % (klass,), where)
        for key in entry:
            _expect(key in ("latency", "ports", "throughput"),
                    "unknown key %r in instructions.%s" % (key, klass),
                    where)
        _expect(isinstance(entry.get("latency"), int)
                and not isinstance(entry.get("latency"), bool)
                and entry["latency"] >= 0,
                "instructions.%s.latency must be a non-negative integer"
                % klass, where)
        ports = entry.get("ports")
        _expect(isinstance(ports, list)
                and all(isinstance(p, int) and not isinstance(p, bool)
                        for p in ports),
                "instructions.%s.ports must be a list of integers" % klass,
                where)
        _expect(all(0 <= p < num_ports for p in ports),
                "instructions.%s.ports outside 0..%d"
                % (klass, num_ports - 1), where)
        _expect(len(set(ports)) == len(ports),
                "instructions.%s.ports has duplicates" % klass, where)
    return doc


def doc_to_model(doc: Dict[str, Any],
                 where: str = "profile") -> ProcessorModel:
    """Validate *doc* and build the :class:`ProcessorModel` it describes."""
    validate_doc(doc, where)
    params: Dict[str, Any] = {}
    for path, _field in _SCALAR_PATHS.items():
        section, key = path.split(".", 1)
        params[path] = doc[section][key]
    for klass in UOP_CLASSES:
        params["instructions.%s.latency" % klass] = \
            doc["instructions"][klass]["latency"]
        params["instructions.%s.ports" % klass] = \
            doc["instructions"][klass]["ports"]
    return model_from_params(str(doc["name"]), params)


# ---------------------------------------------------------------------------
# Files and the registry
# ---------------------------------------------------------------------------

def _read_json(path: str) -> Any:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise ProfileError("cannot read profile %s: %s"
                           % (path, exc.strerror or exc)) from exc
    except json.JSONDecodeError as exc:
        raise ProfileError("profile %s is not valid JSON: %s"
                           % (path, exc)) from exc


def load_profile(path: str) -> ProcessorModel:
    """Load + validate one profile file; returns a fresh model."""
    return doc_to_model(_read_json(path), where=path)


def save_profile(model_or_doc: Union[ProcessorModel, Dict[str, Any]],
                 path: str) -> Dict[str, Any]:
    """Write a profile document (validated first) to *path*."""
    if isinstance(model_or_doc, ProcessorModel):
        doc = model_to_doc(model_or_doc)
    else:
        doc = model_or_doc
    validate_doc(doc, where=path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def profile_names() -> List[str]:
    """Sorted names of the built-in data-file profiles."""
    names = []
    for entry in sorted(os.listdir(DATA_DIR)):
        if entry.endswith(".json") and entry != RANGES_FILENAME:
            names.append(entry[:-len(".json")])
    return names


def profile_path(name: str) -> str:
    """Path of the built-in profile *name* (no existence check)."""
    return os.path.join(DATA_DIR, name + ".json")


def get_profile(name: str) -> ProcessorModel:
    """A fresh model for the built-in profile *name*."""
    path = profile_path(name)
    if not os.path.exists(path) or name not in profile_names():
        raise ProfileError(
            "unknown processor model %r (known: %s; or pass a .json "
            "profile path)" % (name, ", ".join(profile_names())))
    return load_profile(path)


def resolve_core(core: Union[str, Dict[str, Any], ProcessorModel]
                 ) -> ProcessorModel:
    """The one ``core=`` convention: model, name, path, or document.

    * a :class:`ProcessorModel` passes through untouched;
    * a dict is validated as an inline ``pymao.uarch/1`` document;
    * a string naming a built-in profile loads that data file;
    * any other string is treated as a path to a ``.json`` profile.
    """
    if isinstance(core, ProcessorModel):
        return core
    if isinstance(core, dict):
        return doc_to_model(core, where="inline profile")
    name = str(core)
    if name in profile_names():
        return load_profile(profile_path(name))
    if name.endswith(".json") or os.path.sep in name \
            or os.path.exists(name):
        return load_profile(name)
    raise ProfileError(
        "unknown processor model %r (known: %s; or pass a .json "
        "profile path)" % (name, ", ".join(profile_names())))


# ---------------------------------------------------------------------------
# The blinded-profile ranges (draws + hypothesis space)
# ---------------------------------------------------------------------------

def ranges_path() -> str:
    return os.path.join(DATA_DIR, RANGES_FILENAME)


def load_ranges(path: Optional[str] = None) -> Dict[str, Any]:
    """Load + validate the ``pymao.uarch-ranges/1`` draw document.

    ``draws`` is an *ordered* list of ``{"path", "choices"}`` — the
    order is the seed contract: ``blinded_profile`` consumes one
    ``rng.choice`` per entry, in file order, so appending new draws
    preserves every existing seed's values for the old parameters.
    ``fixed`` pins parameters every blinded model shares.
    """
    where = path or ranges_path()
    doc = _read_json(where)
    _expect(isinstance(doc, dict), "document must be a JSON object", where)
    _expect(doc.get("schema") == RANGES_SCHEMA,
            "schema is %r, expected %r" % (doc.get("schema"),
                                           RANGES_SCHEMA), where)
    draws = doc.get("draws")
    _expect(isinstance(draws, list) and draws,
            "draws must be a non-empty list", where)
    for entry in draws:
        _expect(isinstance(entry, dict) and isinstance(entry.get("path"),
                                                       str)
                and isinstance(entry.get("choices"), list)
                and len(entry["choices"]) >= 2,
                "each draw needs a path and >=2 choices", where)
    _expect(isinstance(doc.get("fixed"), dict),
            "fixed must be an object", where)
    return doc


def draw_choices(ranges: Dict[str, Any], path: str) -> List[Any]:
    """The candidate values the ranges document allows for *path*."""
    for entry in ranges["draws"]:
        if entry["path"] == path:
            return list(entry["choices"])
    raise ProfileError("ranges document has no draw for %r" % (path,))


def drawn_paths(ranges: Dict[str, Any]) -> List[str]:
    return [entry["path"] for entry in ranges["draws"]]


__all__ = [
    "UARCH_SCHEMA", "RANGES_SCHEMA", "DATA_DIR", "ProfileError",
    "param_value", "model_from_params", "model_to_doc", "validate_doc",
    "doc_to_model", "load_profile", "save_profile", "profile_names",
    "profile_path", "get_profile", "resolve_core", "ranges_path",
    "load_ranges", "draw_choices", "drawn_paths",
]
