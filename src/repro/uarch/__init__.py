"""Trace-driven micro-architectural timing model.

This subpackage substitutes for the real Intel Core-2 / AMD Opteron hardware
of the paper's evaluation.  Each performance cliff the paper describes maps
to an explicit mechanism:

* 16-byte instruction decode lines (§III.C.e — short-loop alignment),
* the Loop Stream Detector (§III.C.f — loops must fit a line budget),
* a ``PC >> 5``-indexed branch predictor (§III.C.g and Fig. 1 — aliasing),
* asymmetric execution ports and a forwarding-bandwidth limit
  (§III.F — ``RESOURCE_STALLS:RS_FULL`` scheduling effects),
* a small set-associative data cache with non-temporal-hint support
  (§III.E.k — inverse prefetching).

The model consumes the dynamic trace produced by ``repro.sim`` and reports
PMU-style counters, including ``CPU_CYCLES``.
"""

from repro.uarch.model import ProcessorModel
from repro.uarch.profiles import core2, opteron, pentium4, blinded_profile
from repro.uarch.pipeline import (
    FastForwardEngine,
    PipelineSimulator,
    SimStats,
    fast_forward_stats,
    simulate_program,
    simulate_reference,
    simulate_trace,
    simulate_unit,
)
from repro.uarch import counters, tables

__all__ = [
    "ProcessorModel",
    "core2",
    "opteron",
    "pentium4",
    "blinded_profile",
    "PipelineSimulator",
    "FastForwardEngine",
    "simulate_trace",
    "simulate_reference",
    "simulate_program",
    "simulate_unit",
    "fast_forward_stats",
    "SimStats",
    "counters",
    "tables",
]
