"""ProcessorModel: the parameter bundle describing one micro-architecture.

A model is pure data; the mechanisms live in ``pipeline.py``.  Profiles for
the paper's two evaluation platforms (and a deliberately *blinded* profile
used by the Section-IV parameter-detection experiments) are defined in
``profiles.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: uop classes used by the latency/port tables.
ALU = "alu"
LEA = "lea"
SHIFT = "shift"
MUL = "mul"
DIV = "div"
LOAD = "load"
STORE = "store"
BRANCH = "branch"
FP_ADD = "fp_add"
FP_MUL = "fp_mul"
FP_DIV = "fp_div"
FP_MOV = "fp_mov"
CMOV = "cmov"
NOP = "nop"

UOP_CLASSES = (ALU, LEA, SHIFT, MUL, DIV, LOAD, STORE, BRANCH,
               FP_ADD, FP_MUL, FP_DIV, FP_MOV, CMOV, NOP)


@dataclass
class ProcessorModel:
    """All micro-architectural parameters of one simulated processor."""

    name: str

    # ---- front end -------------------------------------------------------
    #: Bytes per instruction decode line (Core-2: 16).
    decode_line_bytes: int = 16
    #: Instructions decoded per cycle.
    decode_width: int = 4
    #: Decode lines fetched per cycle.
    lines_per_cycle: int = 1

    # ---- loop stream detector ---------------------------------------------
    lsd_enabled: bool = True
    #: Max decode lines a loop may span to stream from the LSD.
    lsd_max_lines: int = 4
    #: Minimum iterations before the LSD engages.
    lsd_min_iterations: int = 64
    #: Max taken branches allowed inside an LSD loop body.
    lsd_max_branches: int = 4
    #: uops streamed per cycle when the LSD is active.
    lsd_stream_width: int = 4

    # ---- branch prediction ----------------------------------------------------
    bp_table_size: int = 512
    #: Predictor tables indexed by PC >> this shift (paper: "indexed by
    #: PC >> 5" on many Intel platforms).
    bp_index_shift: int = 5
    bp_mispredict_penalty: int = 15

    # ---- back end ---------------------------------------------------------------
    issue_width: int = 4
    #: port -> description (informational); uop class -> usable ports below.
    num_ports: int = 6
    port_map: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    latency: Dict[str, int] = field(default_factory=dict)
    #: Results forwardable to dependents per cycle (§III.F bandwidth limit).
    forwarding_bw: int = 3
    #: Reservation-station size; full RS stalls issue.
    rs_size: int = 32

    # ---- data cache -------------------------------------------------------------
    cache_enabled: bool = True
    #: Next-line hardware prefetcher (§III.C.h): prefetch tables are
    #: indexed by load-PC bits, so loads *located* at multiples of
    #: ``prefetch_pc_alias_stride`` alias a dead table entry and get no
    #: prefetching.  0 disables the aliasing quirk.
    prefetcher_enabled: bool = True
    prefetch_pc_alias_stride: int = 256
    cache_size_bytes: int = 32 * 1024
    cache_ways: int = 8
    cache_line_bytes: int = 64
    memory_latency: int = 35

    def __post_init__(self) -> None:
        defaults_ports = {
            ALU: (0, 1, 5), LEA: (0,), SHIFT: (0, 5), MUL: (1,),
            DIV: (0,), LOAD: (2,), STORE: (3,), BRANCH: (5,),
            FP_ADD: (1,), FP_MUL: (0,), FP_DIV: (0,), FP_MOV: (0, 1, 5),
            CMOV: (0, 1), NOP: (),
        }
        defaults_latency = {
            ALU: 1, LEA: 1, SHIFT: 1, MUL: 3, DIV: 22, LOAD: 3,
            STORE: 1, BRANCH: 1, FP_ADD: 3, FP_MUL: 5, FP_DIV: 18,
            FP_MOV: 1, CMOV: 2, NOP: 0,
        }
        for key, value in defaults_ports.items():
            self.port_map.setdefault(key, value)
        for key, value in defaults_latency.items():
            self.latency.setdefault(key, value)

    @property
    def cache_sets(self) -> int:
        return self.cache_size_bytes // (self.cache_ways
                                         * self.cache_line_bytes)

    def line_of(self, address: int) -> int:
        """Decode-line number of an instruction address."""
        return address // self.decode_line_bytes

    def bp_index(self, address: int) -> int:
        return (address >> self.bp_index_shift) % self.bp_table_size
