"""Analytical throughput predictor: static cycles-per-iteration oracle.

Trace simulation (:mod:`repro.uarch.pipeline`) walks every dynamic
instruction; for a steady loop that is O(trip count) work to learn a
number that is a property of the *static* loop body.  This module
computes that number directly, OSACA-style ("Automated Instruction
Stream Throughput Prediction for Intel and AMD Microarchitectures"):
predicted cycles-per-iteration is the **max of three lower bounds**,
each a different resource that can cap steady-state throughput:

* **Port binding** — each uop class can issue only on its profile's
  ``port_map`` ports, one uop per port per cycle.  The bound is the
  exact fractional min-max assignment: for every subset ``S`` of ports,
  the uops that can *only* run on ``S`` need at least ``|uops|/|S|``
  cycles (LP duality makes the max over subsets tight).  Results per
  cycle are additionally capped by ``forwarding_bw`` and uops per cycle
  by ``issue_width``.
* **Latency critical path** — the longest register/flag/memory
  dependency chain, including loop-carried recurrences, found by
  iterating the body's dataflow to its steady per-iteration increment.
  Memory dependencies link stores to loads with the *identical* memory
  operand (static disambiguation by syntactic address equality).
* **Front end** — a static replay of the pipeline's decode-line walk
  over the body's **real encoded bytes** (the encoder's canonical-form
  cache makes re-encoding cheap): one cycle per ``decode_line_bytes``
  line fetched, ``decode_width`` instructions per cycle within a line,
  and a taken loop-back branch redirecting fetch to a fresh line.  When
  the body fits the LSD budget the streaming rate
  (``lsd_stream_width``) is also reported.

Deliberate divergences from full simulation (see DESIGN): no branch
predictor (the §III.C.g aliasing cliffs are invisible), no data cache
(loads are L1 hits), no trip counts (the LSD's 64-iteration engagement
threshold cannot be checked, so the headline front-end bound is the
decode-line walk and the streaming rate is a separate field), and no
issue-order effects (the §III.F forwarding pile-ups the SCHED pass
fixes appear only as the aggregate bandwidth cap).  The model ranks
*alignment/front-end and dependency-chain* candidates; use the
simulator when branch history or cache behaviour is the question.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.relax import relax_unit
from repro.ir.entries import InstructionEntry, LabelEntry
from repro.ir.unit import Function, MaoUnit
from repro.result import ApiResult, register_schema
from repro.uarch import model as M
from repro.uarch.classify import uops_of
from repro.uarch.model import ProcessorModel
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import Memory

#: Version tag of the serialized prediction document.
PREDICT_SCHEMA = "pymao.predict/1"

#: Schema of the cross-validation benchmark (BENCH_predict.json).
PREDICT_BENCH_SCHEMA = register_schema("bench-predict",
                                       "mao-bench-predict/1")


class PredictError(ValueError):
    """The requested function/loop cannot be analyzed."""


@dataclass
class Loop:
    """One natural loop candidate: a backward branch and its body."""

    label: str                     # back-branch target label
    body: List[InstructionEntry]   # target label .. back branch, inclusive
    start_address: int
    end_address: int               # first byte past the last instruction
    contains_loop: bool = False    # another backward branch inside the body

    @property
    def byte_span(self) -> int:
        return self.end_address - self.start_address


@dataclass
class Prediction(ApiResult):
    """Outcome of one :func:`predict` call — the per-bound breakdown.

    ``cycles`` is ``max(port_bound, latency_bound, frontend_bound)``;
    ``bottleneck`` names the binding bound.  All bounds are
    cycles-per-iteration of the analyzed loop body (for a function with
    no loop, cycles for one straight-line pass over the body).
    """

    SCHEMA = PREDICT_SCHEMA

    model_name: str
    function: str
    loop_label: Optional[str]      # None = straight-line (no loop found)
    instructions: int
    uops: int
    body_bytes: int
    decode_lines: int              # distinct decode lines the body spans
    port_bound: float
    latency_bound: float
    frontend_bound: float
    cycles: float
    bottleneck: str                # "ports" | "latency" | "frontend"
    lsd_streamable: bool
    frontend_lsd: Optional[float]  # streaming rate, if the body fits
    port_pressure: Dict[int, float] = field(default_factory=dict)
    #: The binding latency chain, innermost iteration: rows of
    #: (instruction text, uop class, latency, loop_carried).
    critical_path: List[Dict[str, Any]] = field(default_factory=list)

    def lsd_cycles(self) -> float:
        """Predicted cycles-per-iteration once the LSD engages (falls
        back to the decode-line front-end bound when the body cannot
        stream)."""
        frontend = self.frontend_lsd if (
            self.lsd_streamable and self.frontend_lsd is not None
        ) else self.frontend_bound
        return max(self.port_bound, self.latency_bound, frontend)

    def ranking_score(self) -> Tuple[float, float]:
        """Sort key for comparing optimization candidates: primary is
        the headline prediction (LSD not engaged — always valid), the
        tiebreak is the LSD-engaged prediction, which separates bodies
        whose decode cost ties but whose streamability differs (the
        LSDFIT case).  Lower is better."""
        return (self.cycles, self.lsd_cycles())

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        """The versioned ``pymao.predict/1`` document (JSON-able).

        A prediction has no wall-clock fields, so *timings* (part of the
        shared :class:`~repro.result.ApiResult` signature) is accepted
        and ignored — the document is always deterministic.
        """
        return {
            "schema": PREDICT_SCHEMA,
            "model": self.model_name,
            "function": self.function,
            "loop": self.loop_label,
            "instructions": self.instructions,
            "uops": self.uops,
            "body_bytes": self.body_bytes,
            "decode_lines": self.decode_lines,
            "bounds": {
                "ports": round(self.port_bound, 4),
                "latency": round(self.latency_bound, 4),
                "frontend": round(self.frontend_bound, 4),
            },
            "cycles": round(self.cycles, 4),
            "ranking": [round(v, 4) for v in self.ranking_score()],
            "bottleneck": self.bottleneck,
            "lsd_streamable": self.lsd_streamable,
            "frontend_lsd": round(self.frontend_lsd, 4)
            if self.frontend_lsd is not None else None,
            "port_pressure": {str(port): round(value, 4)
                              for port, value in
                              sorted(self.port_pressure.items())},
            "critical_path": list(self.critical_path),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Prediction":
        """Rebuild a prediction from its ``pymao.predict/1`` document.

        Bound values round-trip at the document's 4-decimal rounding;
        ``bottleneck``/``cycles`` are taken as recorded rather than
        recomputed so a stored document replays exactly.
        """
        cls.check_schema(data)
        bounds = data.get("bounds") or {}
        return cls(
            model_name=data["model"],
            function=data["function"],
            loop_label=data.get("loop"),
            instructions=int(data.get("instructions", 0)),
            uops=int(data.get("uops", 0)),
            body_bytes=int(data.get("body_bytes", 0)),
            decode_lines=int(data.get("decode_lines", 0)),
            port_bound=float(bounds.get("ports", 0.0)),
            latency_bound=float(bounds.get("latency", 0.0)),
            frontend_bound=float(bounds.get("frontend", 0.0)),
            cycles=float(data.get("cycles", 0.0)),
            bottleneck=data.get("bottleneck", ""),
            lsd_streamable=bool(data.get("lsd_streamable", False)),
            frontend_lsd=float(data["frontend_lsd"])
            if data.get("frontend_lsd") is not None else None,
            port_pressure={int(port): float(value)
                           for port, value in
                           (data.get("port_pressure") or {}).items()},
            critical_path=[dict(row)
                           for row in data.get("critical_path", ())],
        )

    def explain(self) -> str:
        """Human-readable per-port pressure table + critical path."""
        lines = []
        lines.append("prediction for %s (loop %s) on %s"
                     % (self.function,
                        self.loop_label or "<straight-line>",
                        self.model_name))
        lines.append("  instructions %-4d uops %-4d bytes %-4d lines %d"
                     % (self.instructions, self.uops, self.body_bytes,
                        self.decode_lines))
        lines.append("bounds (cycles/iteration):")
        for name, value in (("ports", self.port_bound),
                            ("latency", self.latency_bound),
                            ("frontend", self.frontend_bound)):
            marker = "  <-- bottleneck" if name == self.bottleneck else ""
            lines.append("  %-10s %8.2f%s" % (name, value, marker))
        lines.append("  %-10s %8.2f" % ("predicted", self.cycles))
        if self.lsd_streamable and self.frontend_lsd is not None:
            lines.append("  (LSD-streamable: %.2f cycles/iteration once "
                         "the LSD engages)" % self.frontend_lsd)
        lines.append("port pressure (uops/iteration):")
        for port in sorted(self.port_pressure):
            value = self.port_pressure[port]
            lines.append("  port %d  %6.2f  %s"
                         % (port, value, "#" * int(round(4 * value))))
        if self.critical_path:
            lines.append("latency critical path:")
            for row in self.critical_path:
                lines.append("  %-8s %2d%s  %s"
                             % (row["class"], row["latency"],
                                "*" if row.get("loop_carried") else " ",
                                row["insn"]))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Loop extraction.
# ---------------------------------------------------------------------------

def _function_layout(unit: MaoUnit, function: Function
                     ) -> Tuple[Dict[InstructionEntry, Tuple[int, int]],
                                Dict[str, int]]:
    """(entry -> (address, size), label -> address) from a relaxation.

    Reuses the repeated-relaxation machinery, so addresses, alignment
    padding, and instruction lengths are the same exact bytes the loader
    and the alignment passes see (section bases are congruent mod the
    decode-line size, so line math is identical to the loaded image).
    """
    layouts = relax_unit(unit)
    layout = layouts.get(function.section.name)
    if layout is None:
        raise PredictError("function %r has no relaxed code section"
                           % function.name)
    placement: Dict[InstructionEntry, Tuple[int, int]] = {}
    for entry in function.entries():
        if isinstance(entry, InstructionEntry):
            place = layout.placement.get(entry)
            if place is not None:
                placement[entry] = (place.address, place.size)
    return placement, dict(layout.symtab)


def find_loops(unit: MaoUnit, function: Function) -> List[Loop]:
    """All natural loops of *function*: backward label branches and the
    entries from the target label through the branch, in address order."""
    placement, symtab = _function_layout(unit, function)
    entries = [e for e in function.entries()
               if isinstance(e, (InstructionEntry, LabelEntry))]
    label_index = {e.name: i for i, e in enumerate(entries)
                   if isinstance(e, LabelEntry)}
    loops: List[Loop] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, InstructionEntry):
            continue
        insn = entry.insn
        if not (insn.is_jump and not insn.is_indirect_branch):
            continue
        target = insn.branch_target_label()
        if target is None or target not in label_index:
            continue
        t = label_index[target]
        if t > i:
            continue                      # forward branch
        body = [e for e in entries[t:i + 1]
                if isinstance(e, InstructionEntry) and e in placement]
        if not body:
            continue
        start = min(placement[e][0] for e in body)
        end = max(placement[e][0] + placement[e][1] for e in body)
        # Another backward branch strictly inside the body means this
        # loop contains an inner loop (it is not innermost).
        entry_index = {e: j for j, e in enumerate(entries)}
        contains = False
        for b in body:
            if b is entry or not b.insn.is_jump \
                    or b.insn.is_indirect_branch:
                continue
            btarget = b.insn.branch_target_label()
            bindex = label_index.get(btarget)
            if bindex is not None and t <= bindex <= entry_index[b]:
                contains = True
                break
        loops.append(Loop(label=target, body=body, start_address=start,
                          end_address=end, contains_loop=contains))
    return loops


def select_loop(loops: List[Loop],
                loop: Optional[str] = None) -> Optional[Loop]:
    """Pick the loop to analyze.

    With ``loop=`` a label name, that loop.  Otherwise the *innermost*
    loop (no backward branch inside its body) with the largest byte
    span — a static proxy for "the hot kernel" that picks the unrolled
    work loop over trip-1 scan loops.  None when the function is
    loop-free.
    """
    if loop is not None:
        for candidate in loops:
            if candidate.label == loop:
                return candidate
        raise PredictError("no loop with back-branch target %r "
                           "(have: %s)" % (loop, ", ".join(
                               sorted({c.label for c in loops})) or "none"))
    innermost = [c for c in loops if not c.contains_loop]
    pool = innermost or loops
    if not pool:
        return None
    return max(pool, key=lambda c: (c.byte_span, c.label))


# ---------------------------------------------------------------------------
# Bound 1: port binding.
# ---------------------------------------------------------------------------

def port_binding_bound(body: List[Instruction], model: ProcessorModel
                       ) -> Tuple[float, Dict[int, float]]:
    """Exact fractional min-max port load, plus per-port pressure.

    For every subset ``S`` of the ports the body uses, the uops whose
    allowed ports are contained in ``S`` must all issue on ``S``; each
    port retires one uop per cycle, so ``count/|S|`` cycles is a lower
    bound, and the max over subsets is achieved by an optimal fractional
    assignment (Hall's condition).  Also applies the ``issue_width`` and
    ``forwarding_bw`` aggregate caps.
    """
    groups: Dict[Tuple[int, ...], int] = {}
    total_uops = 0
    results = 0
    for insn in body:
        try:
            has_result = bool(sideeffects.reg_defs(insn))
        except sideeffects.UnknownSideEffects:
            has_result = True
        for uop_class, _is_load, _is_store in uops_of(insn):
            total_uops += 1
            ports = tuple(sorted(model.port_map.get(uop_class, ())))
            if not ports:
                continue               # NOPs occupy no port
            groups[ports] = groups.get(ports, 0) + 1
            if has_result and uop_class != M.BRANCH:
                results += 1

    used_ports = sorted({p for ports in groups for p in ports})
    bound = 0.0
    for size in range(1, len(used_ports) + 1):
        for subset in itertools.combinations(used_ports, size):
            members = set(subset)
            constrained = sum(count for ports, count in groups.items()
                              if members.issuperset(ports))
            if constrained:
                bound = max(bound, constrained / len(members))
    if model.issue_width:
        bound = max(bound, total_uops / model.issue_width)
    if model.forwarding_bw:
        bound = max(bound, results / model.forwarding_bw)

    # Pressure table: distribute each group's uops over its allowed
    # ports by water-filling (least-loaded port first), mirroring the
    # simulator's earliest-free-port issue policy.
    pressure: Dict[int, float] = {p: 0.0 for p in used_ports}
    for ports, count in sorted(groups.items(),
                               key=lambda item: len(item[0])):
        share = float(count)
        while share > 1e-9:
            low = min(pressure[p] for p in ports)
            level = [p for p in ports if pressure[p] <= low + 1e-9]
            above = [pressure[p] for p in ports if pressure[p] > low + 1e-9]
            headroom = (min(above) - low) if above else float("inf")
            per = min(share / len(level), headroom)
            for p in level:
                pressure[p] += per
            share -= per * len(level)
    return bound, pressure


# ---------------------------------------------------------------------------
# Bound 2: latency critical path.
# ---------------------------------------------------------------------------

def _memory_key(insn: Instruction) -> Optional[Memory]:
    return insn.memory_operand()


def _insn_latency_profile(insn: Instruction, model: ProcessorModel
                          ) -> List[Tuple[str, int, bool, bool]]:
    """(uop class, latency, is_load, is_store) per uop."""
    rows = []
    for uop_class, is_load, is_store in uops_of(insn):
        latency = model.latency.get(uop_class, 1)
        rows.append((uop_class, latency, is_load, is_store))
    return rows


#: Iterations to run the dataflow recurrence before measuring, and the
#: window the steady per-iteration delta is averaged over.  The
#: recurrence reaches its periodic steady state within a couple of body
#: lengths; these values are far past that for every supported kernel.
_WARMUP_ITERATIONS = 8
_MEASURE_ITERATIONS = 4


def latency_critical_path(body: List[Instruction], model: ProcessorModel,
                          loop_carried: bool = True
                          ) -> Tuple[float, List[Dict[str, Any]]]:
    """Longest dependency chain, per iteration.

    Iterates the body's dataflow (register alias groups, RFLAGS, and
    syntactically-identical memory operands) to its steady state and
    returns the per-iteration increment of the longest chain — the max
    cycle mean of the dependency graph — plus the chain itself for
    ``--explain``.  With ``loop_carried=False`` (straight-line body),
    one pass's critical path length.
    """
    reg_ready: Dict[str, float] = {}
    flags_ready = 0.0
    mem_ready: Dict[Memory, float] = {}
    #: producer bookkeeping for chain reconstruction: state key -> row.
    producer: Dict[Any, Optional[int]] = {}
    chain_parent: List[Optional[int]] = []
    chain_rows: List[Dict[str, Any]] = []

    def run_iteration() -> float:
        nonlocal flags_ready
        top = 0.0
        for index, insn in enumerate(body):
            try:
                uses = sideeffects.reg_uses(insn)
                reads_flags = bool(sideeffects.flags_read(insn))
                defs = sideeffects.reg_defs(insn)
                wflags = bool(sideeffects.flags_written(insn)
                              | sideeffects.flags_undefined(insn))
            except sideeffects.UnknownSideEffects:
                regs = {r.group for r in insn.register_operands()}
                uses, defs = regs, regs
                reads_flags = wflags = True
            ready = 0.0
            source: Optional[Any] = None
            for group in uses:
                t = reg_ready.get(group, 0.0)
                if t > ready:
                    ready, source = t, ("reg", group)
            if reads_flags and flags_ready > ready:
                ready, source = flags_ready, ("flags",)
            mem = _memory_key(insn)
            completion = ready
            load_done = None
            parent_row = producer.get(source) if source is not None else None
            row_id: Optional[int] = None
            for uop_class, latency, is_load, is_store in \
                    _insn_latency_profile(insn, model):
                if is_load:
                    start = ready
                    if mem is not None:
                        t = mem_ready.get(mem, 0.0)
                        if t > start:
                            start = t
                            parent_row = producer.get(("mem", mem))
                    load_done = start + latency
                    completion = max(completion, load_done)
                    row_id = len(chain_rows)
                    chain_rows.append({"insn": str(insn),
                                       "class": uop_class,
                                       "latency": latency,
                                       "done": load_done})
                    chain_parent.append(parent_row)
                    parent_row = row_id
                    continue
                if is_store:
                    done = max(completion, ready) \
                        + model.latency.get(M.STORE, 1)
                    if mem is not None:
                        mem_ready[mem] = done
                        producer[("mem", mem)] = parent_row
                    completion = max(completion, done)
                    continue
                if uop_class == M.NOP:
                    continue
                start = max(ready, load_done or 0.0)
                done = start + latency
                completion = max(completion, done)
                row_id = len(chain_rows)
                chain_rows.append({"insn": str(insn), "class": uop_class,
                                   "latency": latency, "done": done})
                chain_parent.append(parent_row)
                parent_row = row_id
            for group in defs:
                reg_ready[group] = completion
                producer[("reg", group)] = parent_row
            if wflags:
                flags_ready = completion
                producer[("flags",)] = parent_row
            if completion > top:
                top = completion
        return top

    if not loop_carried:
        top = run_iteration()
        path = _reconstruct_chain(chain_rows, chain_parent,
                                  mark_carried=False)
        return top, path

    def reset_rows() -> None:
        chain_rows.clear()
        chain_parent.clear()
        # Row ids from the cleared list are meaningless; a value carried
        # across the iteration boundary has no in-iteration producer.
        for key in producer:
            producer[key] = None

    last_top = 0.0
    for _ in range(_WARMUP_ITERATIONS):
        reset_rows()
        last_top = run_iteration()
    start_top = last_top
    for _ in range(_MEASURE_ITERATIONS):
        reset_rows()
        last_top = run_iteration()
    delta = (last_top - start_top) / _MEASURE_ITERATIONS
    path = _reconstruct_chain(chain_rows, chain_parent,
                              mark_carried=delta > 1e-9)
    return max(delta, 0.0), path


def _reconstruct_chain(rows: List[Dict[str, Any]],
                       parents: List[Optional[int]],
                       mark_carried: bool) -> List[Dict[str, Any]]:
    """Back-track the chain ending at the latest completion of the last
    analyzed iteration."""
    if not rows:
        return []
    tail = max(range(len(rows)), key=lambda i: rows[i]["done"])
    chain: List[Dict[str, Any]] = []
    seen = set()
    cursor: Optional[int] = tail
    while cursor is not None and cursor not in seen:
        seen.add(cursor)
        row = rows[cursor]
        chain.append({"insn": row["insn"], "class": row["class"],
                      "latency": row["latency"], "loop_carried": False})
        cursor = parents[cursor]
    chain.reverse()
    # The head of a recurrence-bound chain is fed by the previous
    # iteration's value of the same register/flag/memory cell.
    if mark_carried:
        chain[0]["loop_carried"] = True
    return chain


# ---------------------------------------------------------------------------
# Bound 3: front end.
# ---------------------------------------------------------------------------

def frontend_bound(placed: List[Tuple[Instruction, int, int]],
                   model: ProcessorModel, *,
                   taken_back_branch: bool = True
                   ) -> Tuple[float, int, bool, Optional[float]]:
    """Static replay of the pipeline's decode-line walk over the body.

    *placed* is (instruction, address, size) in address order — the real
    encoded bytes.  Returns (decode cycles per iteration, distinct lines
    spanned, LSD-streamable?, streaming cycles per iteration or None).
    Mirrors ``PipelineSimulator._frontend_advance``: one cycle per line
    fetched (instructions spilling into the next line consume it too),
    ``decode_width`` instructions per cycle within a line, and — with a
    taken loop-back branch — fetch restarting on a fresh line each
    iteration.
    """
    cycles = 0
    decoded = 0
    current_line: Optional[int] = None
    lines = set()
    branches = 0
    streamable = model.lsd_enabled
    for insn, address, size in placed:
        line = model.line_of(address)
        end_line = model.line_of(address + max(size, 1) - 1)
        lines.update(range(line, end_line + 1))
        if insn.is_jump:
            branches += 1
        if insn.is_call or insn.is_ret or insn.is_indirect_branch:
            streamable = False
        if current_line is None or line != current_line:
            cycles += 1
            decoded = 0
            current_line = line
        while end_line > current_line:
            cycles += 1
            current_line += 1
            decoded = 0
        if decoded >= model.decode_width:
            cycles += 1
            decoded = 0
        decoded += 1
    if not taken_back_branch:
        # Straight-line: no redirect, but the walk above is still the cost.
        pass
    streamable = streamable and len(lines) <= model.lsd_max_lines \
        and branches <= model.lsd_max_branches
    lsd_rate = None
    if streamable:
        lsd_rate = max(len(placed) / model.lsd_stream_width, 1.0)
    return float(max(cycles, 1)), len(lines), streamable, lsd_rate


# ---------------------------------------------------------------------------
# The predictor.
# ---------------------------------------------------------------------------

def predict_unit(unit: MaoUnit, model: ProcessorModel, *,
                 function: Optional[str] = None,
                 loop: Optional[str] = None,
                 assume_lsd: bool = False) -> Prediction:
    """Predict steady-state cycles-per-iteration for one function's hot
    loop (or its straight-line body when it has no loop).

    ``assume_lsd=True`` uses the LSD streaming rate as the front-end
    bound when the body fits the LSD budget; the default keeps the
    decode-line bound because the model cannot see trip counts (the
    LSD's engagement threshold is dynamic).
    """
    if not unit.functions:
        raise PredictError("unit has no functions")
    if function is not None:
        try:
            func = unit.function_named(function)
        except KeyError:
            raise PredictError("no function named %r" % function)
    else:
        func = unit.functions[0]

    placement, _symtab = _function_layout(unit, func)
    loops = find_loops(unit, func)
    selected = select_loop(loops, loop)
    if selected is not None:
        body_entries = selected.body
        loop_label: Optional[str] = selected.label
    else:
        body_entries = [e for e in func.instructions() if e in placement]
        loop_label = None
        if not body_entries:
            raise PredictError("function %r has no encodable instructions"
                               % func.name)
    body = [entry.insn for entry in body_entries]
    placed = sorted(((entry.insn,) + placement[entry]
                     for entry in body_entries), key=lambda row: row[1])

    ports, pressure = port_binding_bound(body, model)
    latency, path = latency_critical_path(body, model,
                                          loop_carried=loop_label
                                          is not None)
    fe_decode, n_lines, streamable, lsd_rate = frontend_bound(
        placed, model, taken_back_branch=loop_label is not None)
    frontend = fe_decode
    if assume_lsd and streamable and lsd_rate is not None:
        frontend = lsd_rate

    total_uops = sum(len(uops_of(insn)) for insn in body)
    bounds = {"ports": ports, "latency": latency, "frontend": frontend}
    bottleneck = max(bounds, key=lambda k: bounds[k])
    cycles = bounds[bottleneck]
    return Prediction(
        model_name=model.name,
        function=func.name,
        loop_label=loop_label,
        instructions=len(body),
        uops=total_uops,
        body_bytes=sum(size for _insn, _addr, size in placed),
        decode_lines=n_lines,
        port_bound=ports,
        latency_bound=latency,
        frontend_bound=frontend,
        cycles=cycles,
        bottleneck=bottleneck,
        lsd_streamable=streamable,
        frontend_lsd=lsd_rate,
        port_pressure=pressure,
        critical_path=path,
    )


def predict(src_or_unit: Union[str, MaoUnit], model: ProcessorModel, *,
            function: Optional[str] = None,
            loop: Optional[str] = None,
            assume_lsd: bool = False) -> Prediction:
    """Parse (if needed) and predict.  See :func:`predict_unit`."""
    if isinstance(src_or_unit, MaoUnit):
        unit = src_or_unit
    else:
        from repro.ir import parse_unit
        unit = parse_unit(src_or_unit)
    return predict_unit(unit, model, function=function, loop=loop,
                        assume_lsd=assume_lsd)


def static_lower_bound(unit: MaoUnit, model: ProcessorModel, *,
                       function: Optional[str] = None,
                       loop: Optional[str] = None) -> float:
    """Cycles/iteration no pass pipeline over this loop can beat.

    The max of the three bounds with every removable stall gone: nops
    (what ``NOPKILL`` deletes — they cost decode slots but no ports)
    are dropped from the body, and the front end is priced at the ideal
    packed decode rate ``ceil(instructions / decode_width)`` — the best
    any alignment pass can achieve.  Port and latency bounds over the
    remaining instructions are structural properties of the computation
    itself.

    This is the autotuner's **early-stop target**: a candidate predicted
    at (or under) this value cannot be improved by more search, so the
    tuner stops.  It is a search-policy floor, not an optimality proof —
    a pass that deletes *work* (a redundant test on the critical path)
    can in principle land below it, which only makes the stop fire
    sooner.
    """
    if not unit.functions:
        raise PredictError("unit has no functions")
    if function is not None:
        try:
            func = unit.function_named(function)
        except KeyError:
            raise PredictError("no function named %r" % function)
    else:
        func = unit.functions[0]

    placement, _symtab = _function_layout(unit, func)
    loops = find_loops(unit, func)
    selected = select_loop(loops, loop)
    if selected is not None:
        body_entries = selected.body
        loop_carried = True
    else:
        body_entries = [e for e in func.instructions() if e in placement]
        loop_carried = False
        if not body_entries:
            raise PredictError("function %r has no encodable instructions"
                               % func.name)
    body = [entry.insn for entry in body_entries if not entry.insn.is_nop]
    if not body:
        return 1.0

    ports, _pressure = port_binding_bound(body, model)
    latency, _path = latency_critical_path(body, model,
                                           loop_carried=loop_carried)
    ideal_frontend = float(-(-len(body) // model.decode_width))
    return max(ports, latency, ideal_frontend, 1.0)
