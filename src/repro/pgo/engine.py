"""Re-optimization decisions: profile tiers → pass specs.

This is the glue between the :class:`~repro.pgo.store.ProfileStore`,
the :mod:`~repro.pgo.classify` tiers, and the optimization surfaces.
For each input it produces a :class:`PgoDecision` naming the spec to
run and the cache salt epoch under which the resulting artifact should
be published.

Hot inputs are tuned hottest-first against a shared pass-execution
budget (``policy.tune_budget``): each :func:`repro.tune.tune` call is
given ``policy.tune_budget_per_input`` candidates, its *actual*
executed pass runs are charged against the budget (warm caches stretch
it), and once the budget is exhausted remaining hot inputs degrade to
the warm default spec.  ``tune``'s leaderboard always contains the
default spec, so a hot winner is never predicted worse than warm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import metrics
from repro.pgo.classify import (
    TIER_COLD,
    TIER_HOT,
    TIER_WARM,
    Decision,
    PgoPolicy,
    classify,
)
from repro.pgo.store import ProfileStore, pgo_cache_salt

SpecItems = List[Tuple[str, Dict[str, Any]]]


@dataclass
class PgoDecision:
    """The spec chosen for one input under profile guidance."""

    digest: str
    tier: str
    weight: float
    epoch: int
    origin: str                     # tune-winner | warm-default |
                                    # cold-baseline | budget-exhausted |
                                    # tune-failed-default
    spec: str                       # canonical spec string ("" = passthrough)
    spec_items: SpecItems = field(default_factory=list)
    tune_cycles: Optional[float] = None
    pass_runs: int = 0

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "digest": self.digest,
            "tier": self.tier,
            "weight": self.weight,
            "epoch": self.epoch,
            "origin": self.origin,
            "spec": self.spec,
        }
        if self.tune_cycles is not None:
            doc["tune_cycles"] = self.tune_cycles
        if self.pass_runs:
            doc["pass_runs"] = self.pass_runs
        return doc


def _spec_items(spec: str) -> SpecItems:
    from repro.passes.manager import parse_pass_spec
    return parse_pass_spec(spec)


def _canonical(items: SpecItems) -> str:
    from repro.passes.manager import canonical_pass_spec
    return canonical_pass_spec(items)


def decide_many(sources: Sequence[Tuple[str, str]], *,
                core: Any = "core2",
                store: Optional[ProfileStore] = None,
                policy: Optional[PgoPolicy] = None,
                cache: Any = None,
                jobs: int = 1,
                parallel_backend: str = "thread",
                ) -> Dict[str, PgoDecision]:
    """Decide a spec for every ``(name, source)`` pair; keyed by digest.

    Duplicate sources share one decision.  ``cache`` (an
    :class:`~repro.batch.cache.ArtifactCache` or ``None``) is handed to
    ``tune`` so hot-input searches reuse and publish prefix artifacts.
    """
    from repro.batch.cache import source_sha256
    from repro.tune import TuneError, tune

    store = store if store is not None else ProfileStore()
    policy = policy or PgoPolicy()
    tiers = classify(store, policy)

    by_digest: Dict[str, str] = {}
    for _, source in sources:
        digest = source_sha256(source)
        if digest not in by_digest:
            by_digest[digest] = source

    warm_items = _spec_items(policy.warm_spec)
    warm_spec = _canonical(warm_items)
    decisions: Dict[str, PgoDecision] = {}
    hot: List[Decision] = []
    with obs.span("pgo.decide", inputs=len(by_digest)):
        for digest in sorted(by_digest):
            tier = tiers.get(digest)
            if tier is None or tier.tier == TIER_COLD:
                weight = tier.weight if tier is not None else 0.0
                epoch = tier.epoch if tier is not None else 0
                decisions[digest] = PgoDecision(
                    digest=digest, tier=TIER_COLD, weight=weight,
                    epoch=epoch, origin="cold-baseline", spec="")
            elif tier.tier == TIER_WARM:
                decisions[digest] = PgoDecision(
                    digest=digest, tier=TIER_WARM, weight=tier.weight,
                    epoch=tier.epoch, origin="warm-default",
                    spec=warm_spec, spec_items=list(warm_items))
            else:
                hot.append(tier)

        # Hottest first; the budget is spent where the cycles are.
        hot.sort(key=lambda d: (-d.weight, d.digest))
        remaining = int(policy.tune_budget)
        for tier in hot:
            base = dict(digest=tier.digest, tier=TIER_HOT,
                        weight=tier.weight, epoch=tier.epoch)
            if remaining <= 0:
                decisions[tier.digest] = PgoDecision(
                    origin="budget-exhausted", spec=warm_spec,
                    spec_items=list(warm_items), **base)
                continue
            with obs.span("pgo.retune", digest=tier.digest,
                          weight=tier.weight):
                try:
                    result = tune(
                        by_digest[tier.digest], core,
                        budget=int(policy.tune_budget_per_input),
                        jobs=jobs, parallel_backend=parallel_backend,
                        cache=cache, default_spec=policy.warm_spec)
                except TuneError:
                    decisions[tier.digest] = PgoDecision(
                        origin="tune-failed-default", spec=warm_spec,
                        spec_items=list(warm_items), **base)
                    continue
            executed = int(result.pass_runs.get("executed", 0))
            remaining -= executed
            metrics.REGISTRY.inc("pgo.retune")
            metrics.REGISTRY.inc("pgo.tune_pass_runs", executed)
            items = result.winner_items
            decisions[tier.digest] = PgoDecision(
                origin="tune-winner", spec=_canonical(items),
                spec_items=items,
                tune_cycles=result.winner.get("cycles"),
                pass_runs=executed, **base)
    return decisions


def run_guided_batch(inputs: Any, *,
                     core: Any = "core2",
                     store: Optional[ProfileStore] = None,
                     policy: Optional[PgoPolicy] = None,
                     cache: Any = None,
                     jobs: int = 1,
                     parallel_backend: str = "thread",
                     predict: Optional[str] = None):
    """Profile-guided :func:`repro.batch.engine.run_batch`.

    Inputs (paths or ``(name, source)`` pairs, as in ``run_batch``) are
    decided per digest, grouped by ``(epoch, spec)``, and each group is
    run through ``run_batch`` with an epoch-salted view of *cache* —
    :func:`~repro.pgo.store.pgo_cache_salt` makes a bumped epoch miss
    exactly its own input's cached artifacts.  Items come back in input
    order with their :class:`PgoDecision` summary attached as
    ``item.pgo``.
    """
    import time

    from repro.batch.cache import ArtifactCache, source_sha256
    from repro.batch.engine import BatchItem, BatchResult, _load_inputs
    from repro.batch.engine import run_batch

    start = time.perf_counter()
    loaded = _load_inputs(inputs)
    readable = [(name, source) for name, source, err in loaded
                if err is None]
    decisions = decide_many(readable, core=core, store=store, policy=policy,
                            cache=cache, jobs=jobs,
                            parallel_backend=parallel_backend)

    # Group readable inputs by (epoch, spec): one run_batch per group,
    # each against a cache whose salt folds in that group's epoch.
    groups: Dict[Tuple[int, str], List[int]] = {}
    for index, (_, source, err) in enumerate(loaded):
        if err is not None:
            continue
        decision = decisions[source_sha256(source)]
        groups.setdefault((decision.epoch, decision.spec), []).append(index)

    items: List[Optional[BatchItem]] = [None] * len(loaded)
    for index, (name, _, err) in enumerate(loaded):
        if err is not None:
            items[index] = BatchItem(name=name, status="error", sha256=None,
                                     cache="off", error=err)
    for (epoch, _), indices in sorted(groups.items()):
        group_inputs = [(loaded[i][0], loaded[i][1]) for i in indices]
        decision = decisions[source_sha256(loaded[indices[0]][1])]
        group_cache = None
        if cache is not None:
            group_cache = ArtifactCache(
                cache.root, max_bytes=cache.max_bytes,
                salt=pgo_cache_salt(cache.salt, epoch))
        result = run_batch(group_inputs, decision.spec_items, jobs=jobs,
                           parallel_backend=parallel_backend,
                           cache=group_cache, predict=predict)
        for index, item in zip(indices, result.items):
            item.pgo = decisions[source_sha256(loaded[index][1])].to_dict()
            items[index] = item
    return BatchResult(spec="<profile-guided>",
                       items=[item for item in items if item is not None],
                       elapsed_s=time.perf_counter() - start)


def decide_one(source: str, *,
               core: Any = "core2",
               store: Optional[ProfileStore] = None,
               policy: Optional[PgoPolicy] = None,
               cache: Any = None,
               jobs: int = 1,
               parallel_backend: str = "thread") -> PgoDecision:
    """Single-input convenience wrapper over :func:`decide_many`."""
    from repro.batch.cache import source_sha256
    decisions = decide_many([("<input>", source)], core=core, store=store,
                            policy=policy, cache=cache, jobs=jobs,
                            parallel_backend=parallel_backend)
    return decisions[source_sha256(source)]
