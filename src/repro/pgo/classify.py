"""Hotness classifier: sample weight → spec tier.

Entries are ranked by weight (ties broken by digest so classification
is fully deterministic) and split into three tiers:

* **hot** — the smallest weight-descending prefix covering at least
  ``hot_fraction`` of total profiled weight, optionally capped by
  ``max_hot``.  Hot inputs earn the full autotune search.
* **warm** — profiled above ``cold_weight`` but not hot.  Warm inputs
  get the hand-written default spec.
* **cold** — unprofiled, or weight ≤ ``cold_weight``.  Cold inputs pass
  through untouched (empty spec).

The budget knobs (``tune_budget`` total pass executions per decision
run, ``tune_budget_per_input`` per tune call) are consumed by
:mod:`repro.pgo.engine`, which walks hot inputs hottest-first and
degrades the remainder to warm once the budget runs out — that is what
concentrates tuning spend on the hottest deciles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro import obs
from repro.obs import metrics
from repro.pgo.store import ProfileEntry, ProfileStore
from repro.tune import DEFAULT_SPEC

TIER_HOT = "hot"
TIER_WARM = "warm"
TIER_COLD = "cold"


@dataclass(frozen=True)
class PgoPolicy:
    """Knobs for tiering and for how much tuning the tiers may spend."""

    hot_fraction: float = 0.9
    cold_weight: float = 0.0
    tune_budget: int = 96
    tune_budget_per_input: int = 24
    max_hot: Optional[int] = None
    warm_spec: str = DEFAULT_SPEC

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if self.cold_weight < 0:
            raise ValueError("cold_weight must be >= 0")
        if self.tune_budget < 0 or self.tune_budget_per_input <= 0:
            raise ValueError("tune budgets must be positive")


@dataclass(frozen=True)
class Decision:
    """One input's tier assignment."""

    digest: str
    tier: str
    weight: float
    epoch: int


def classify(entries: Union[ProfileStore, Iterable[ProfileEntry]],
             policy: Optional[PgoPolicy] = None) -> Dict[str, Decision]:
    """Tier every stored entry; returns ``digest -> Decision``.

    Inputs absent from the result are implicitly cold (see
    :func:`tier_for`).
    """
    policy = policy or PgoPolicy()
    if isinstance(entries, ProfileStore):
        entries = entries.entries()
    with obs.span("pgo.classify"):
        ranked: List[ProfileEntry] = sorted(
            entries, key=lambda entry: (-entry.weight, entry.digest))
        live = [e for e in ranked if e.weight > policy.cold_weight]
        total = sum(entry.weight for entry in live)
        decisions: Dict[str, Decision] = {}
        cumulative = 0.0
        hot_count = 0
        for entry in ranked:
            if entry.weight <= policy.cold_weight:
                tier = TIER_COLD
            elif (cumulative < policy.hot_fraction * total
                  and (policy.max_hot is None or hot_count < policy.max_hot)):
                tier = TIER_HOT
                cumulative += entry.weight
                hot_count += 1
            else:
                tier = TIER_WARM
            decisions[entry.digest] = Decision(
                digest=entry.digest, tier=tier,
                weight=entry.weight, epoch=entry.epoch)
            metrics.REGISTRY.inc("pgo.classify.%s" % tier)
    return decisions


def tier_for(digest: str,
             entries: Union[ProfileStore, Iterable[ProfileEntry]],
             policy: Optional[PgoPolicy] = None) -> Decision:
    """The decision for one digest; unknown digests are cold, epoch 0."""
    decisions = classify(entries, policy)
    found = decisions.get(digest)
    if found is not None:
        return found
    return Decision(digest=digest, tier=TIER_COLD, weight=0.0, epoch=0)
