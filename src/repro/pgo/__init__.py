"""``repro.pgo`` — continuous profile-guided re-optimization.

Closes the loop the paper leaves open between its sampling machinery
(§III.E) and its optimizer: execution profiles collected by
:mod:`repro.profiling` are persisted in an epoch-versioned
:class:`~repro.pgo.store.ProfileStore`, a hotness classifier maps each
input's sample weight to a spec tier, and the optimization surfaces
(``api.optimize(profile_guided=True)``, ``api.optimize_many``,
``POST /v1/profile`` on ``mao serve`` / ``mao fleet``) consult that
state so tuning spend concentrates where the cycles are:

* **hot** — the top :attr:`~repro.pgo.classify.PgoPolicy.hot_fraction`
  of total sample weight gets the full :func:`repro.api.tune` search
  (bounded by the policy's pass-execution budget);
* **warm** — profiled but not hot code gets the hand-written default
  spec (``REDTEST:LOOP16``);
* **cold** — unprofiled or negligible-weight code passes through with
  no passes at all.

Artifacts produced under profile guidance are cached under a salt that
folds in the input's **profile epoch**
(:func:`~repro.pgo.store.pgo_cache_salt`), so re-profiling one input
invalidates exactly that input's cached decisions and nothing else.
"""

from repro.pgo.classify import Decision, PgoPolicy, classify, tier_for
from repro.pgo.engine import (
    PgoDecision,
    decide_many,
    decide_one,
    run_guided_batch,
)
from repro.pgo.store import (
    PGO_BENCH_SCHEMA,
    PROFILE_DIR_ENV,
    PROFILE_SCHEMA,
    ProfileEntry,
    ProfileStore,
    build_profile,
    default_profile_dir,
    pgo_cache_salt,
    profile_many,
    validate_profile,
)

__all__ = [
    "Decision",
    "PgoDecision",
    "PgoPolicy",
    "PGO_BENCH_SCHEMA",
    "PROFILE_DIR_ENV",
    "PROFILE_SCHEMA",
    "ProfileEntry",
    "ProfileStore",
    "build_profile",
    "classify",
    "decide_many",
    "decide_one",
    "default_profile_dir",
    "pgo_cache_salt",
    "profile_many",
    "run_guided_batch",
    "tier_for",
    "validate_profile",
]
