"""Epoch-versioned profile store with ArtifactCache-style atomic publish.

The store maps an input digest (``sha256`` of the source text, the same
digest the batch engine and artifact cache key on) to a
``pymao.profile/1`` document carrying the input's sample weight.  Every
time an ingest *changes* an input's weight the entry's **epoch** is
bumped; the epoch is folded into the artifact-cache salt via
:func:`pgo_cache_salt`, so cached profile-guided decisions for that one
input are invalidated while every other input's cache entries survive.

The store deliberately lives in its own directory tree (default
``~/.cache/pymao-profiles``, override with ``$PYMAO_PROFILE_DIR``) —
**never** under the artifact-cache root, whose eviction and corruption
sweeps unlink any ``*.json`` they find.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics
from repro.result import register_schema

PROFILE_SCHEMA = register_schema("profile", "pymao.profile/1")

#: Schema of ``benchmarks/bench_pgo.py`` documents (BENCH_pgo.json).
PGO_BENCH_SCHEMA = register_schema("bench-pgo", "mao-bench-pgo/1")

PROFILE_DIR_ENV = "PYMAO_PROFILE_DIR"

_HEX = set("0123456789abcdef")


def default_profile_dir() -> str:
    """Default profile-store root: env override, else a cache sibling."""
    env = os.environ.get(PROFILE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "pymao-profiles")


def pgo_cache_salt(base_salt: str, epoch: int) -> str:
    """Fold a profile epoch into an artifact-cache salt.

    Injective for a fixed ``base_salt``: the epoch is rendered in
    decimal after a fixed separator, so distinct epochs can never
    produce the same salt, and therefore distinct ``(digest, epoch,
    spec)`` triples can never produce the same cache key (the key
    already includes the digest and spec encoding).
    """
    return "%s|pgo-epoch=%d" % (base_salt, int(epoch))


@dataclass
class ProfileEntry:
    """One stored profile: an input digest and its sampled weight."""

    digest: str
    epoch: int
    weight: float
    samples: int = 0
    steps: int = 0
    period: int = 0
    seed: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "digest": self.digest,
            "epoch": self.epoch,
            "weight": self.weight,
            "samples": self.samples,
            "steps": self.steps,
            "period": self.period,
            "seed": self.seed,
        }


def validate_profile(data: Any) -> ProfileEntry:
    """Validate a ``pymao.profile/1`` document; raise ValueError if bad.

    The ``epoch`` field is ignored on ingest (the store owns epochs) but
    accepted so stored entries round-trip through this validator.
    """
    if not isinstance(data, dict):
        raise ValueError("profile payload must be an object")
    schema = data.get("schema", PROFILE_SCHEMA)
    if schema != PROFILE_SCHEMA:
        raise ValueError("unsupported profile schema: %r" % (schema,))
    digest = data.get("digest")
    if (not isinstance(digest, str) or len(digest) != 64
            or not set(digest) <= _HEX):
        raise ValueError("profile digest must be a 64-char lowercase "
                         "sha256 hex string")
    weight = data.get("weight")
    if isinstance(weight, bool) or not isinstance(weight, (int, float)):
        raise ValueError("profile weight must be a number")
    weight = float(weight)
    if weight < 0 or weight != weight:  # reject negatives and NaN
        raise ValueError("profile weight must be finite and >= 0")
    fields: Dict[str, int] = {}
    for name in ("samples", "steps", "period"):
        value = data.get(name, 0)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ValueError("profile %s must be a non-negative int" % name)
        fields[name] = value
    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool)
                             or not isinstance(seed, int)):
        raise ValueError("profile seed must be an int or null")
    epoch = data.get("epoch", 0)
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise ValueError("profile epoch must be a non-negative int")
    return ProfileEntry(digest=digest, epoch=epoch, weight=weight,
                        seed=seed, **fields)


class ProfileStore:
    """Persistent digest → profile map with atomic publish.

    Layout mirrors :class:`repro.batch.cache.ArtifactCache`
    (``<root>/<digest[:2]>/<digest>.json``), publishes are
    write-to-temp + ``os.replace`` so readers never observe a torn
    entry, and corrupt entries read as a miss and are unlinked
    best-effort.
    """

    def __init__(self, root: Optional[str] = None,
                 registry: Optional[metrics.Registry] = None):
        self.root = root or default_profile_dir()
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else metrics.REGISTRY

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    def get(self, digest: str) -> Optional[ProfileEntry]:
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entry = validate_profile(data)
            if entry.digest != digest:
                raise ValueError("digest mismatch")
        except FileNotFoundError:
            self._registry.inc("pgo.store.miss")
            return None
        except (OSError, ValueError):
            self._registry.inc("pgo.store.miss")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._registry.inc("pgo.store.hit")
        return entry

    def epoch(self, digest: str) -> int:
        """Current epoch for *digest* (0 when unprofiled)."""
        entry = self.get(digest)
        return entry.epoch if entry is not None else 0

    def ingest(self, document: Any) -> ProfileEntry:
        """Validate and store a profile document; returns the stored entry.

        The stored weight is *replaced*, not accumulated — the incoming
        document is authoritative for its input.  The epoch bumps only
        when the weight actually changes (new entries start at epoch 1),
        so re-ingesting an identical profile is idempotent and does not
        invalidate any cached decisions.
        """
        incoming = validate_profile(document)
        with self._lock:
            existing = self.get(incoming.digest)
            if existing is not None and existing.weight == incoming.weight:
                epoch = existing.epoch
            else:
                epoch = (existing.epoch if existing is not None else 0) + 1
                self._registry.inc("pgo.epoch_bumps")
            entry = ProfileEntry(
                digest=incoming.digest, epoch=epoch, weight=incoming.weight,
                samples=incoming.samples, steps=incoming.steps,
                period=incoming.period, seed=incoming.seed)
            self._publish(entry)
        self._registry.inc("pgo.ingest")
        return entry

    def _publish(self, entry: ProfileEntry) -> None:
        path = self._path(entry.digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = json.dumps(entry.to_dict(), sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entries(self) -> List[ProfileEntry]:
        """All stored entries, sorted by digest for determinism."""
        found: List[ProfileEntry] = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".json") or name.startswith(".tmp-"):
                    continue
                entry = self.get(name[:-len(".json")])
                if entry is not None:
                    found.append(entry)
        found.sort(key=lambda entry: entry.digest)
        return found

    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.entries())


def build_profile(source: str, *, period: int, seed: Optional[int] = None,
                  weight: Optional[float] = None, entry_symbol: str = "main",
                  max_steps: int = 5_000_000,
                  args: Optional[List[int]] = None,
                  filename: str = "<string>") -> Dict[str, Any]:
    """Sample *source* and build a ``pymao.profile/1`` document.

    *weight* defaults to the executed step count — the natural "how much
    does this input run" signal; callers modelling a request mix can
    override it with e.g. ``steps * request_count``.
    """
    from repro.batch.cache import source_sha256
    from repro.ir import parse_unit
    from repro.profiling.sampler import collect_samples

    unit = parse_unit(source, filename=filename)
    sample_set = collect_samples(unit, period, entry_symbol=entry_symbol,
                                 args=args, max_steps=max_steps, seed=seed)
    entry = ProfileEntry(
        digest=source_sha256(source),
        epoch=0,
        weight=float(weight) if weight is not None else float(sample_set.steps),
        samples=len(sample_set),
        steps=sample_set.steps,
        period=int(period),
        seed=seed,
    )
    return entry.to_dict()


def _profile_worker(payload: Tuple[str, str, int, Optional[int], str, int]
                    ) -> Tuple[str, Optional[Dict[str, Any]], str]:
    """Top-level (picklable) worker: build one profile document."""
    name, source, period, seed, entry_symbol, max_steps = payload
    try:
        doc = build_profile(source, period=period, seed=seed,
                            entry_symbol=entry_symbol, max_steps=max_steps,
                            filename=name)
        return name, doc, ""
    except Exception as exc:  # worker contract: never raise
        return name, None, "%s: %s" % (type(exc).__name__, exc)


def profile_many(inputs: Sequence[Tuple[str, str]], *, period: int,
                 seed: Optional[int] = None, jobs: int = 1,
                 parallel_backend: str = "thread",
                 entry_symbol: str = "main", max_steps: int = 5_000_000,
                 ) -> List[Tuple[str, Optional[Dict[str, Any]], str]]:
    """Build profiles for ``(name, source)`` pairs, optionally in parallel.

    Output order always follows input order and every document depends
    only on ``(source, period, seed)``, so results are identical for any
    ``jobs`` / backend combination.
    """
    payloads = [(name, source, int(period), seed, entry_symbol,
                 int(max_steps)) for name, source in inputs]
    if jobs <= 1 or len(payloads) <= 1:
        return [_profile_worker(payload) for payload in payloads]
    from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
    pool_cls = (ThreadPoolExecutor if parallel_backend == "thread"
                else ProcessPoolExecutor)
    with pool_cls(max_workers=jobs) as pool:
        return list(pool.map(_profile_worker, payloads))
