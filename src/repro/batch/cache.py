"""The persistent content-addressed artifact cache.

MAO is meant to sit inside build pipelines and re-optimize every
translation unit on every build; across rebuilds almost all inputs are
byte-identical, so re-running the parser and the pass pipeline on them is
pure waste.  The cache keys each optimization *result* (the emitted
assembly plus the versioned ``pymao.pipeline/1`` report) by what actually
determines it::

    key = sha256( salt || sha256(source) || pass-spec encoding )

* **salt** — a version fingerprint (``pymao`` version + pipeline schema
  by default).  Bumping it invalidates every entry at once, which is the
  upgrade story: a new pass implementation must never replay stale
  artifacts.
* **sha256(source)** — content addressing: the file *name* is
  irrelevant, only the bytes matter, so a file moved or copied across a
  tree still hits.
* **pass-spec encoding** — the same pass list spelled two ways
  (``REDTEST:LOOP16`` via string or via ``(name, options)`` items) maps
  to one string; a *different* spec is a different key.  The batch
  engine uses :func:`repro.passes.manager.encode_pass_spec` (injective
  JSON) rather than the human-readable ``--mao=`` rendering, which can
  collide when option values contain ``]`` or ``+``.

Robustness properties, all covered by tests:

* writes are atomic (tmp file + ``os.replace``), so a crashed or
  concurrent writer can never publish a torn entry;
* reads are corruption-tolerant: an unreadable / truncated / wrong-schema
  entry counts as a miss (and is deleted best-effort), never an error;
* the store is LRU size-bounded: reads refresh an entry's mtime and
  ``put`` evicts oldest-mtime entries over ``max_bytes``.  ``put``
  keeps a running size estimate (seeded by one full scan per cache
  handle) and only walks the store when the estimate crosses the bound,
  so a cold batch of N stores does O(N) work, not N full-store scans.

Every hit / miss / store / eviction is counted in the process-wide
metrics registry (``batch.cache.{hit,miss,store,evict}``), which is what
``mao --cache-stats`` prints.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics
from repro.result import register_schema

#: Version tag of the on-disk entry format.
ARTIFACT_SCHEMA = register_schema("artifact", "pymao.artifact/1")

#: Default size bound for a cache directory (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment variable naming the cache directory for CLI / api callers.
CACHE_DIR_ENV = "PYMAO_CACHE_DIR"


def default_salt() -> str:
    """The version fingerprint mixed into every key.

    Covers the package version (pass implementations, ISA tables,
    processor models all ship with it) and the report schema, so either
    kind of upgrade invalidates the whole store.
    """
    from repro import __version__
    from repro.passes.manager import PIPELINE_SCHEMA

    return "pymao-%s|%s" % (__version__, PIPELINE_SCHEMA)


def default_cache_dir() -> str:
    """``$PYMAO_CACHE_DIR``, else ``$XDG_CACHE_HOME/pymao`` (falling back
    to ``~/.cache/pymao``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "pymao")


def source_sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class CachedArtifact:
    """One replayable optimization result."""

    asm: str                      # emitted post-pass assembly
    pipeline: Dict[str, Any]      # pymao.pipeline/1 document
    source_sha256: str = ""
    spec: str = ""


class ArtifactCache:
    """Content-addressed ``key -> CachedArtifact`` store on disk.

    Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON file per entry,
    two-character fan-out so a 100k-file corpus does not pile every entry
    into one directory.
    """

    def __init__(self, root: str, *,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 salt: Optional[str] = None,
                 registry: Optional[metrics.Registry] = None) -> None:
        self.root = str(root)
        self.max_bytes = int(max_bytes)
        self.salt = salt if salt is not None else default_salt()
        self._registry = registry if registry is not None else metrics.REGISTRY
        #: Running store-size estimate; None until the first put() seeds
        #: it with a full scan.  It can only over-count (overwrites add
        #: their size twice), which at worst triggers an early sweep —
        #: the sweep itself recomputes the exact total.
        self._approx_bytes: Optional[int] = None

    # -- keying -------------------------------------------------------------

    def key_for(self, source: str, spec_encoding: str) -> str:
        """The content-addressed key: filename-independent by design.

        *spec_encoding* is treated as an opaque string; callers must use
        an injective rendering of their pass spec (the batch engine uses
        :func:`repro.passes.manager.encode_pass_spec`) — two different
        specs mapping to one string would replay the wrong artifact.
        """
        digest = hashlib.sha256()
        digest.update(self.salt.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source_sha256(source).encode("ascii"))
        digest.update(b"\x00")
        digest.update(spec_encoding.encode("utf-8"))
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- read ---------------------------------------------------------------

    def get(self, key: str) -> Optional[CachedArtifact]:
        """Look *key* up; any malformed entry is a miss, never an error."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                # Torn or corrupt entry: drop it so it cannot keep
                # costing a read on every lookup.
                self._unlink(path)
            self._registry.inc("batch.cache.miss")
            return None
        if (not isinstance(data, dict)
                or data.get("schema") != ARTIFACT_SCHEMA
                or not isinstance(data.get("asm"), str)
                or not isinstance(data.get("pipeline"), dict)):
            self._unlink(path)
            self._registry.inc("batch.cache.miss")
            return None
        try:
            # LRU refresh: recently-hit entries are evicted last.
            os.utime(path, None)
        except OSError:
            pass
        self._registry.inc("batch.cache.hit")
        return CachedArtifact(asm=data["asm"], pipeline=data["pipeline"],
                              source_sha256=data.get("source_sha256", ""),
                              spec=data.get("spec", ""))

    # -- write --------------------------------------------------------------

    def put(self, key: str, asm: str, pipeline: Dict[str, Any], *,
            source_sha: str = "", spec: str = "") -> None:
        """Publish an entry atomically, then enforce the size bound."""
        path = self._path(key)
        entry = {
            "schema": ARTIFACT_SCHEMA,
            "key": key,
            "source_sha256": source_sha,
            "spec": spec,
            "asm": asm,
            "pipeline": pipeline,
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        text = json.dumps(entry, sort_keys=True)
        fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except BaseException:
            self._unlink(tmp_path)
            raise
        self._registry.inc("batch.cache.store")
        # Enforce the bound from a running estimate: the full-store
        # walk in _evict_over_bound is O(entries), so doing it on every
        # store would make a cold batch of N misses quadratic.
        if self._approx_bytes is None:
            self._approx_bytes = self.total_bytes()
        else:
            self._approx_bytes += len(text)
        if self._approx_bytes > self.max_bytes:
            self._evict_over_bound(keep=path)

    # -- maintenance --------------------------------------------------------

    def entries(self) -> List[str]:
        """Every entry path currently in the store."""
        found: List[str] = []
        if not os.path.isdir(self.root):
            return found
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    found.append(os.path.join(dirpath, name))
        return found

    def total_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def _evict_over_bound(self, keep: Optional[str] = None) -> int:
        """Remove oldest-mtime entries until the store fits ``max_bytes``.

        The just-written entry (*keep*) survives even if it alone busts
        the bound — evicting what the caller is about to rely on would
        make a tiny bound behave like no cache plus write amplification.
        """
        stated: List[Tuple[float, int, str]] = []
        total = 0
        for path in self.entries():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            stated.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            self._approx_bytes = total
            return 0
        keep_abs = os.path.abspath(keep) if keep is not None else None
        evicted = 0
        for _mtime, size, path in sorted(stated):
            if total <= self.max_bytes:
                break
            if keep_abs is not None and os.path.abspath(path) == keep_abs:
                continue
            if self._unlink(path):
                total -= size
                evicted += 1
                self._registry.inc("batch.cache.evict")
        # The walk just measured the store exactly; resync the estimate.
        self._approx_bytes = total
        return evicted

    @staticmethod
    def _unlink(path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False
