"""``repro.batch`` — corpus-scale optimization with a persistent cache.

Two coupled pieces turn the per-file fast paths into fleet throughput:

* :mod:`repro.batch.cache` — the persistent content-addressed
  :class:`ArtifactCache` (``sha256(source) + canonical pass spec +
  version salt`` → emitted assembly + ``pymao.pipeline/1`` report), with
  atomic writes, LRU size-bounding, and corruption-tolerant reads;
* :mod:`repro.batch.engine` — :func:`run_batch`, the scheduler that
  shards cache misses across a thread/process worker pool and merges
  per-file results into one deterministic ``pymao.batch/1`` summary.

The supported entry point is :func:`repro.api.optimize_many`; the ``mao``
CLI's multi-file mode and ``benchmarks/bench_batch.py`` sit on top of it.
"""

from repro.batch.cache import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    CACHE_DIR_ENV,
    CachedArtifact,
    default_cache_dir,
    default_salt,
    source_sha256,
)
from repro.batch.engine import (
    BATCH_SCHEMA,
    BatchItem,
    BatchResult,
    run_batch,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CachedArtifact",
    "default_cache_dir",
    "default_salt",
    "source_sha256",
    "BATCH_SCHEMA",
    "BatchItem",
    "BatchResult",
    "run_batch",
]
