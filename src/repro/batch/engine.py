"""The corpus-scale batch scheduler.

:func:`run_batch` optimizes many assembly files in one invocation — the
unit of performance the build-pipeline deployment story needs — with
three guarantees:

* **Warm state.**  Before any work is scheduled, every input is looked up
  in the :class:`~repro.batch.cache.ArtifactCache` (when one is given);
  hits replay the stored emitted assembly + ``pymao.pipeline/1`` report
  without parsing a single line.  Misses are optimized and published
  back, so the *next* invocation is warm.  Replay covers asm + report
  and nothing else, so specs containing a side-effecting pass (``ASM``)
  bypass the cache entirely — cold and warm runs of the same command
  must produce the same filesystem effects.
* **Parallel misses, deterministic output.**  Cache misses are sharded
  across a worker pool — the same ``thread`` / ``process`` backend
  vocabulary as ``passes.manager`` — and merged back **in input order**,
  whatever the completion order.  ``jobs=1`` and ``jobs=4`` produce
  byte-identical outputs and an identical ``pymao.batch/1`` summary.
* **Failure isolation.**  A file that cannot be read or parsed becomes an
  ``"error"`` item; every other file is still processed.  The batch never
  aborts on the first bad translation unit.

Observability: the whole batch runs under one ``batch`` span with a
``file:<name>`` detached subtree per optimized input (adopted in input
order, mirroring the pass manager's span merge; process workers ship
their subtree back serialized), and the metrics registry counts
``batch.files``, ``batch.errors``, and ``batch.cache.{hit,miss,store,
evict}``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.batch.cache import ArtifactCache, source_sha256
from repro.passes.manager import (
    PipelineResult,
    _resolve_backend,
    canonical_pass_spec,
    encode_pass_spec,
    parse_pass_spec,
    spec_has_side_effects,
)
from repro.result import ApiResult

#: Version tag of the serialized batch summary format.
BATCH_SCHEMA = "pymao.batch/1"   # registered by the BatchResult class below

#: One input: a path on disk, or an in-memory ``(name, source)`` pair.
BatchInput = Union[str, Tuple[str, str]]

SpecItems = List[Tuple[str, Dict[str, Any]]]


@dataclass
class BatchItem:
    """Outcome of one file in a batch run."""

    name: str
    status: str                    # "ok" | "error"
    sha256: Optional[str]          # of the source text; None if unreadable
    cache: str                     # "hit" | "miss" | "off"
    asm: Optional[str] = None      # emitted post-pass assembly (ok only)
    pipeline: Optional[PipelineResult] = None
    error: Optional[str] = None
    parse_s: float = 0.0
    passes_s: float = 0.0
    #: ``pymao.predict/1`` document for the emitted asm (``predict=``
    #: runs only), or None.  ``predict_error`` holds the reason a
    #: prediction was skipped (e.g. a loop-free unit) without failing
    #: the item itself.
    prediction: Optional[Dict[str, Any]] = None
    predict_error: Optional[str] = None
    #: Profile-guided decision summary (tier, epoch, origin, spec) when
    #: the item ran under ``optimize_many(profile_guided=True)``.
    pgo: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def predicted_cycles(self) -> Optional[float]:
        return self.prediction["cycles"] if self.prediction else None

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        """One ``files[]`` row of ``pymao.batch/1``.  Deterministic by
        default; wall-clock timings only with ``timings=True``."""
        data: Dict[str, Any] = {"file": self.name, "status": self.status,
                                "cache": self.cache}
        if self.sha256 is not None:
            data["sha256"] = self.sha256
        if self.pipeline is not None:
            data["pipeline"] = self.pipeline.to_dict()
        if self.error is not None:
            data["error"] = self.error
        if self.prediction is not None:
            data["prediction"] = self.prediction
        if self.predict_error is not None:
            data["predict_error"] = self.predict_error
        if self.pgo is not None:
            data["pgo"] = self.pgo
        if timings:
            data["parse_s"] = round(self.parse_s, 6)
            data["passes_s"] = round(self.passes_s, 6)
        return data


@dataclass
class BatchResult(ApiResult):
    """All per-file outcomes of one :func:`run_batch` call, input order."""

    SCHEMA: ClassVar[str] = BATCH_SCHEMA

    spec: str                      # canonical pass spec
    items: List[BatchItem] = field(default_factory=list)
    elapsed_s: float = 0.0

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def ok_count(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def error_count(self) -> int:
        return sum(1 for item in self.items if not item.ok)

    @property
    def errors(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for item in self.items if item.cache == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for item in self.items if item.cache == "miss")

    def ranked_by_prediction(self) -> List[BatchItem]:
        """Ok items with predictions, fastest predicted first.

        The corpus-triage view a ``predict=`` run buys: which inputs the
        static model expects to run hottest, without simulating any of
        them.  Ties break by the LSD-engaged rate, then by name for
        determinism.
        """
        ranked = [item for item in self.items
                  if item.ok and item.prediction is not None]
        return sorted(ranked,
                      key=lambda item: (tuple(item.prediction["ranking"]),
                                        item.name))

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        """The versioned ``pymao.batch/1`` summary.

        Deterministic by construction (input order, no wall-clock, no
        worker counts) so ``jobs=1`` and ``jobs=4`` runs serialize to the
        same document; opt into timings for reporting surfaces.
        """
        data: Dict[str, Any] = {
            "schema": BATCH_SCHEMA,
            "spec": self.spec,
            "files": [item.to_dict(timings=timings) for item in self.items],
            "totals": {
                "files": len(self.items),
                "ok": self.ok_count,
                "errors": self.error_count,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
            },
        }
        if timings:
            data["elapsed_s"] = round(self.elapsed_s, 6)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatchResult":
        """Summary-level reconstruction: every ``files[]`` row comes back
        as a :class:`BatchItem` (without the emitted asm, which the
        document never carried)."""
        cls.check_schema(data)
        items = [_batch_item_from_dict(row)
                 for row in data.get("files", [])]
        return cls(spec=str(data.get("spec", "")), items=items,
                   elapsed_s=float(data.get("elapsed_s", 0.0)))


def _batch_item_from_dict(row: Dict[str, Any]) -> BatchItem:
    pipeline = row.get("pipeline")
    return BatchItem(
        name=str(row.get("file", "")),
        status=str(row.get("status", "error")),
        sha256=row.get("sha256"),
        cache=str(row.get("cache", "off")),
        pipeline=(PipelineResult.from_dict(pipeline)
                  if pipeline is not None else None),
        error=row.get("error"),
        parse_s=float(row.get("parse_s", 0.0)),
        passes_s=float(row.get("passes_s", 0.0)),
        prediction=row.get("prediction"),
        predict_error=row.get("predict_error"),
        pgo=row.get("pgo"),
    )


def _resolve_spec(spec: Union[None, str, SpecItems]) -> SpecItems:
    if spec is None:
        return []
    if isinstance(spec, str):
        return parse_pass_spec(spec)
    return list(spec)


def _load_inputs(inputs: Iterable[BatchInput]
                 ) -> List[Tuple[str, Optional[str], Optional[str]]]:
    """Normalize to ``(name, source, read_error)`` triples."""
    loaded: List[Tuple[str, Optional[str], Optional[str]]] = []
    for item in inputs:
        if isinstance(item, tuple):
            name, source = item
            loaded.append((str(name), source, None))
            continue
        name = str(item)
        try:
            with open(name, "r", encoding="utf-8") as handle:
                loaded.append((name, handle.read(), None))
        except (OSError, UnicodeDecodeError) as exc:
            loaded.append((name, None, str(exc)))
    return loaded


def _batch_worker(payload: Tuple[str, str, SpecItems, bool]
                  ) -> Tuple[Optional[str], Optional[Dict[str, Any]],
                             float, float, Optional[str],
                             Optional[Dict[str, Any]]]:
    """Optimize one file; never raises (a raised exception would poison
    the whole pool map).  Top-level so the process backend can pickle it.
    """
    name, source, spec_items, want_spans = payload
    import repro.passes  # noqa: F401 — register built-ins in spawned children
    from repro import api

    # Same contract as the pass manager's process worker: the parent's
    # tracing flag rides in the payload, the span subtree rides back
    # serialized for the deterministic input-order adopt.
    obs.set_enabled(want_spans)
    span_data: Optional[Dict[str, Any]] = None
    try:
        with obs.detached_span("file:%s" % name, bytes=len(source)) as span:
            result = api.optimize(source, spec_items, filename=name)
            asm = result.unit.to_asm()
            if span:
                span.attach(reports=len(result.pipeline.reports))
        if span:
            span_data = span.to_dict()
        return (asm, result.pipeline.to_dict(),
                result.parse_s, result.passes_s, None, span_data)
    except Exception as exc:  # parse errors, bad specs, pass failures
        return (None, None, 0.0, 0.0,
                "%s: %s" % (type(exc).__name__, exc), None)


def run_batch(inputs: Iterable[BatchInput],
              spec: Union[None, str, SpecItems] = None, *,
              jobs: int = 1,
              parallel_backend: Optional[str] = None,
              backend: Optional[str] = None,
              cache: Optional[ArtifactCache] = None,
              predict: Optional[str] = None) -> BatchResult:
    """Optimize a corpus of files through one pass spec.

    ``inputs`` are file paths or ``(name, source)`` pairs; results come
    back in input order regardless of worker completion order.  With a
    *cache*, byte-identical sources under the same spec replay their
    stored artifact instead of being re-optimized (unless the spec
    contains a side-effecting pass, which disables caching for the
    run).  ``backend=`` is the
    deprecated alias of ``parallel_backend=`` (as in ``passes.manager``).

    ``predict=`` a processor profile name (``"core2"``) additionally
    runs the static throughput model over each ok item's *emitted*
    assembly, annotating it with the ``pymao.predict/1`` document so
    :meth:`BatchResult.ranked_by_prediction` can triage the corpus by
    expected cycles without simulating anything.  A file the model
    cannot analyze keeps its ``ok`` status and records
    ``predict_error`` instead.
    """
    parallel_backend = _resolve_backend(parallel_backend, backend)
    if jobs < 1:
        raise ValueError("jobs must be >= 1, got %d" % jobs)
    if parallel_backend not in ("thread", "process"):
        raise ValueError("unknown batch backend %r" % parallel_backend)
    spec_items = _resolve_spec(spec)
    canonical = canonical_pass_spec(spec_items)
    if cache is not None and spec_has_side_effects(spec_items):
        # A replayed artifact restores asm + report only; it cannot
        # re-run a side-effecting pass (ASM writing its `o` target), so
        # a warm run of such a spec would silently skip the effect while
        # a cold run performs it.  Run these specs uncached instead.
        cache = None
    # Keys use the injective JSON encoding, not the --mao= rendering:
    # option values containing ']'/'+' can make two different specs
    # render the same canonical string.
    key_spec = encode_pass_spec(spec_items)
    loaded = _load_inputs(inputs)
    registry = obs.REGISTRY

    start = time.perf_counter()
    with obs.span("batch", files=len(loaded), jobs=jobs,
                  parallel_backend=parallel_backend,
                  cache=cache is not None) as root:
        items: List[Optional[BatchItem]] = [None] * len(loaded)
        spans: List[Optional[obs.Span]] = [None] * len(loaded)
        #: (index, name, source, key, sha) still needing real work.
        pending: List[Tuple[int, str, str, Optional[str], str]] = []

        for index, (name, source, read_error) in enumerate(loaded):
            if read_error is not None:
                items[index] = BatchItem(name=name, status="error",
                                         sha256=None, cache="off",
                                         error=read_error)
                continue
            sha = source_sha256(source)
            if cache is None:
                pending.append((index, name, source, None, sha))
                continue
            key = cache.key_for(source, key_spec)
            hit = cache.get(key)
            if hit is not None:
                try:
                    pipeline = PipelineResult.from_dict(hit.pipeline)
                except (ValueError, KeyError, TypeError):
                    # Stale schema inside an otherwise-readable entry:
                    # treat as a miss like any other corruption.
                    pending.append((index, name, source, key, sha))
                    continue
                items[index] = BatchItem(name=name, status="ok", sha256=sha,
                                         cache="hit", asm=hit.asm,
                                         pipeline=pipeline)
                continue
            pending.append((index, name, source, key, sha))

        if pending:
            want_spans = obs.enabled()
            payloads = [(name, source, spec_items, want_spans)
                        for _index, name, source, _key, _sha in pending]
            if jobs > 1 and len(pending) > 1:
                pool_cls = (ThreadPoolExecutor
                            if parallel_backend == "thread"
                            else ProcessPoolExecutor)
                with pool_cls(max_workers=jobs) as pool:
                    outcomes = list(pool.map(_batch_worker, payloads))
            else:
                outcomes = [_batch_worker(payload) for payload in payloads]

            cache_state = "off" if cache is None else "miss"
            for (index, name, _source, key, sha), outcome \
                    in zip(pending, outcomes):
                asm, pipeline_data, parse_s, passes_s, error, span_data \
                    = outcome
                if span_data is not None:
                    spans[index] = obs.Span.from_dict(span_data)
                if error is not None:
                    items[index] = BatchItem(name=name, status="error",
                                             sha256=sha, cache=cache_state,
                                             error=error)
                    continue
                pipeline = PipelineResult.from_dict(pipeline_data)
                items[index] = BatchItem(name=name, status="ok", sha256=sha,
                                         cache=cache_state, asm=asm,
                                         pipeline=pipeline,
                                         parse_s=parse_s, passes_s=passes_s)
                if cache is not None and key is not None:
                    cache.put(key, asm, pipeline_data,
                              source_sha=sha, spec=canonical)

        if predict is not None:
            # Predictions run on the coordinator: each takes single-digit
            # milliseconds (the whole point of the static model), so a
            # pool round trip would cost more than the work.
            from repro import api

            for item in items:
                if item is None or not item.ok or item.asm is None:
                    continue
                try:
                    item.prediction = api.predict(item.asm,
                                                  predict).to_dict()
                except Exception as exc:
                    item.predict_error = "%s: %s" % (type(exc).__name__,
                                                     exc)
            registry.inc("predict.batch_items",
                         sum(1 for item in items
                             if item is not None
                             and item.prediction is not None))

        # Deterministic span merge: input order, not completion order.
        for span in spans:
            if span is not None:
                obs.adopt_span(root if root else None, span)

        result = BatchResult(spec=canonical,
                             items=[item for item in items
                                    if item is not None])
        result.elapsed_s = time.perf_counter() - start
        registry.inc("batch.files", len(result.items))
        if result.error_count:
            registry.inc("batch.errors", result.error_count)
        if root:
            root.attach(ok=result.ok_count, errors=result.error_count,
                        cache_hits=result.cache_hits,
                        cache_misses=result.cache_misses)
    return result
