"""Artifact-cache correctness: keying, atomicity, corruption, eviction.

The cache replays *results* instead of re-running the optimizer, so its
keying is a safety property: every input that can change the output must
change the key (source bytes, pass spec, version salt) and nothing else
(in particular, not the file name).
"""

import json
import os

import pytest

from repro import obs
from repro.batch import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    default_cache_dir,
    run_batch,
)
from repro.obs.metrics import Registry

SOURCE_A = """
.text
.globl f
.type f, @function
f:
    andl $255, %eax
    mov %eax, %eax
    ret
"""

SOURCE_B = """
.text
.globl g
.type g, @function
g:
    addq $1, %rax
    addq $2, %rax
    ret
"""


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"), registry=Registry())


class TestKeying:
    def test_same_source_same_spec_hits(self, cache):
        key = cache.key_for(SOURCE_A, "REDTEST")
        cache.put(key, "asm-text", {"schema": "pymao.pipeline/1",
                                    "reports": []})
        hit = cache.get(key)
        assert hit is not None
        assert hit.asm == "asm-text"

    def test_different_pass_spec_misses(self, cache):
        cache.put(cache.key_for(SOURCE_A, "REDTEST"), "asm",
                  {"schema": "pymao.pipeline/1", "reports": []})
        assert cache.key_for(SOURCE_A, "REDTEST") \
            != cache.key_for(SOURCE_A, "REDTEST:LOOP16")
        assert cache.get(cache.key_for(SOURCE_A, "REDTEST:LOOP16")) is None

    def test_key_ignores_filename_content_addressing(self, tmp_path):
        """Byte-identical source under two different filenames is one
        entry: the second file hits the first file's artifact."""
        cache = ArtifactCache(str(tmp_path / "cache"), registry=Registry())
        cold = run_batch([("dir1/a.s", SOURCE_A), ("dir2/renamed.s",
                                                   SOURCE_A)],
                         "REDZEE:REDTEST", cache=cache)
        # Both were misses at lookup time (scheduled in one wave)...
        assert [item.cache for item in cold] == ["miss", "miss"]
        # ...but a fresh run under yet another name replays the artifact.
        warm = run_batch([("elsewhere/b.s", SOURCE_A)], "REDZEE:REDTEST",
                         cache=cache)
        assert [item.cache for item in warm] == ["hit"]
        assert warm.items[0].asm == cold.items[0].asm

    def test_salt_bump_invalidates_everything(self, tmp_path):
        root = str(tmp_path / "cache")
        old = ArtifactCache(root, salt="models-v1", registry=Registry())
        for source in (SOURCE_A, SOURCE_B):
            old.put(old.key_for(source, "REDTEST"), "asm",
                    {"schema": "pymao.pipeline/1", "reports": []})
        assert len(old.entries()) == 2

        new = ArtifactCache(root, salt="models-v2", registry=Registry())
        for source in (SOURCE_A, SOURCE_B):
            assert new.get(new.key_for(source, "REDTEST")) is None
        # The old generation's entries still exist (eviction reclaims
        # them later); they are simply unreachable under the new salt.
        assert len(new.entries()) == 2

    def test_batch_spec_spelling_is_canonicalized(self, tmp_path):
        """String spec and (name, options) items map to the same key."""
        cache = ArtifactCache(str(tmp_path / "cache"), registry=Registry())
        run_batch([("a.s", SOURCE_A)], "REDZEE:REDTEST", cache=cache)
        warm = run_batch([("a.s", SOURCE_A)],
                         [("REDZEE", {}), ("REDTEST", {})], cache=cache)
        assert warm.items[0].cache == "hit"

    def test_ambiguous_option_values_do_not_cross_replay(self, cache):
        """Regression: keys were built from the --mao= rendering, under
        which [('P', {'x': '1]+y[2'})] and [('P', {'x': '1', 'y': '2'})]
        both read 'P=x[1]+y[2]' — an API caller could replay the other
        spec's artifact."""
        from repro.passes.manager import encode_pass_spec
        tricky = encode_pass_spec([("P", {"x": "1]+y[2"})])
        plain = encode_pass_spec([("P", {"x": "1", "y": "2"})])
        assert tricky != plain
        cache.put(cache.key_for(SOURCE_A, tricky), "tricky-asm",
                  {"schema": "pymao.pipeline/1", "reports": []})
        assert cache.get(cache.key_for(SOURCE_A, plain)) is None


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        key = cache.key_for(SOURCE_A, "REDTEST")
        cache.put(key, "asm", {"schema": "pymao.pipeline/1",
                               "reports": []})
        path = cache._path(key)
        with open(path, "w") as handle:
            handle.write('{"schema": "pymao.artifact/1", "asm": trunca')
        assert cache.get(key) is None
        assert not os.path.exists(path)

    def test_wrong_schema_entry_is_a_miss(self, cache):
        key = cache.key_for(SOURCE_A, "REDTEST")
        path = cache._path(key)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            json.dump({"schema": "pymao.artifact/999", "asm": "x",
                       "pipeline": {}}, handle)
        assert cache.get(key) is None

    def test_put_is_atomic_no_tmp_residue(self, cache):
        key = cache.key_for(SOURCE_A, "REDTEST")
        cache.put(key, "asm", {"schema": "pymao.pipeline/1",
                               "reports": []})
        names = []
        for _dirpath, _dirs, files in os.walk(cache.root):
            names.extend(files)
        assert names == [key + ".json"]
        with open(cache._path(key)) as handle:
            assert json.load(handle)["schema"] == ARTIFACT_SCHEMA

    def test_metrics_counted(self, tmp_path):
        registry = Registry()
        cache = ArtifactCache(str(tmp_path / "c"), registry=registry)
        key = cache.key_for(SOURCE_A, "X")
        assert cache.get(key) is None
        cache.put(key, "asm", {"schema": "pymao.pipeline/1",
                               "reports": []})
        assert cache.get(key) is not None
        assert registry.counter_value("batch.cache.miss") == 1
        assert registry.counter_value("batch.cache.store") == 1
        assert registry.counter_value("batch.cache.hit") == 1


class TestEviction:
    def _fill(self, cache, count, payload_bytes=4000):
        keys = []
        for index in range(count):
            key = cache.key_for("source-%d" % index, "SPEC")
            cache.put(key, "x" * payload_bytes,
                      {"schema": "pymao.pipeline/1", "reports": []})
            # Distinct mtimes so LRU order is well-defined on coarse
            # filesystem timestamps.
            os.utime(cache._path(key), (index, index))
            keys.append(key)
        return keys

    def test_lru_eviction_over_bound(self, tmp_path):
        registry = Registry()
        cache = ArtifactCache(str(tmp_path / "c"), max_bytes=20000,
                              registry=registry)
        keys = self._fill(cache, 6)
        # Trigger enforcement with one more put.
        final = cache.key_for("final", "SPEC")
        cache.put(final, "x" * 4000, {"schema": "pymao.pipeline/1",
                                      "reports": []})
        assert cache.total_bytes() <= 20000
        assert registry.counter_value("batch.cache.evict") >= 1
        # Oldest entries went first; the newest survive.
        assert cache.get(keys[0]) is None
        assert cache.get(final) is not None

    def test_puts_under_bound_do_not_sweep_store(self, tmp_path,
                                                 monkeypatch):
        """Stores below max_bytes must not walk the whole store: a cold
        batch of N misses used to do N full scans (O(N^2) stats)."""
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        walks = {"count": 0}
        real_entries = cache.entries

        def counting_entries():
            walks["count"] += 1
            return real_entries()

        monkeypatch.setattr(cache, "entries", counting_entries)
        for index in range(20):
            cache.put(cache.key_for("source-%d" % index, "SPEC"), "x" * 64,
                      {"schema": "pymao.pipeline/1", "reports": []})
        # One seeding scan for the running estimate, no per-put sweeps.
        assert walks["count"] == 1

    def test_hit_refreshes_lru_position(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), max_bytes=14000,
                              registry=Registry())
        keys = self._fill(cache, 3)
        assert cache.get(keys[0]) is not None    # refresh the oldest
        big = cache.key_for("big", "SPEC")
        cache.put(big, "x" * 4000, {"schema": "pymao.pipeline/1",
                                    "reports": []})
        # keys[1] was the stalest after the refresh, so it was evicted
        # while the refreshed keys[0] survived.
        registry = Registry()
        quiet = ArtifactCache(cache.root, max_bytes=14000,
                              registry=registry)
        assert quiet.get(keys[0]) is not None
        assert quiet.get(keys[1]) is None


class TestDefaults:
    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv("PYMAO_CACHE_DIR", "/tmp/pymao-env-cache")
        assert default_cache_dir() == "/tmp/pymao-env-cache"

    def test_xdg_fallback(self, monkeypatch):
        monkeypatch.delenv("PYMAO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert default_cache_dir() == "/tmp/xdg/pymao"

    def test_default_registry_is_process_registry(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"))
        assert cache._registry is obs.REGISTRY
