"""Cross-process artifact-cache contention.

The server and any number of CLI batch runs may share one ``--cache-dir``
concurrently.  The consistency contract (DESIGN.md §9/§10) is that
publication is atomic — ``tmp + os.replace`` — so a reader can never
observe a torn or wrong-schema entry: it sees the whole artifact or a
miss.  This test makes two real processes hammer one cache directory
with overlapping puts and gets and then audits every byte on disk.
"""

import json
import os
import subprocess
import sys

from repro.batch import ARTIFACT_SCHEMA, ArtifactCache, run_batch
from repro.obs.metrics import Registry
from repro.workloads.corpus import CorpusConfig, generate_corpus_text

_REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")

SPEC = "REDZEE:REDTEST"

# Each process optimizes the same corpus repeatedly: round 1 races puts
# against the sibling's puts (both miss, both publish the same key),
# later rounds race gets against the sibling's still-in-flight puts.
WORKER = """
import sys
sys.path.insert(0, %(src)r)
from repro.batch import ArtifactCache, run_batch
from repro.obs.metrics import Registry
from tests.batch.test_cache_contention import corpus_inputs

cache = ArtifactCache(sys.argv[1], registry=Registry())
for _round in range(4):
    result = run_batch(corpus_inputs(), %(spec)r, cache=cache, jobs=2)
    assert not result.errors, [i.error for i in result.items if i.error]
sys.exit(0)
"""


def corpus_inputs():
    return [("tu_%d.s" % i,
             generate_corpus_text(CorpusConfig(seed=7000 + i, scale=0.002,
                                               functions=2)))
            for i in range(6)]


def test_two_processes_never_tear_an_entry(tmp_path):
    cache_dir = str(tmp_path / "shared-cache")
    script = WORKER % {"src": _REPO_SRC, "spec": SPEC}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_REPO_SRC, os.path.dirname(_REPO_SRC)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))

    procs = [subprocess.Popen([sys.executable, "-c", script, cache_dir],
                              env=env, stderr=subprocess.PIPE, text=True)
             for _ in range(2)]
    for proc in procs:
        _out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err

    # Audit: every entry on disk is complete, valid JSON of the right
    # schema — no torn writes, no partial files, no leftover temps.
    entries = []
    for dirpath, _dirnames, filenames in os.walk(cache_dir):
        for name in filenames:
            path = os.path.join(dirpath, name)
            assert name.endswith(".json"), "leftover temp file %s" % path
            with open(path) as handle:
                data = json.load(handle)
            assert data.get("schema") == ARTIFACT_SCHEMA
            assert isinstance(data.get("asm"), str)
            assert data.get("pipeline", {}).get("schema") \
                == "pymao.pipeline/1"
            entries.append(data)
    assert len(entries) == len(corpus_inputs())

    # And the surviving state is semantically right: a fresh process
    # replays the whole corpus from cache, byte-identical to a
    # cache-free reference run.
    cache = ArtifactCache(cache_dir, registry=Registry())
    warm = run_batch(corpus_inputs(), SPEC, cache=cache)
    assert [item.cache for item in warm.items] == ["hit"] * len(warm.items)
    reference = run_batch(corpus_inputs(), SPEC, cache=None)
    assert [i.asm for i in warm.items] == [i.asm for i in reference.items]
