"""Batch scheduler: determinism, cache replay, failure isolation, spans.

The acceptance bar for the corpus engine: ``jobs=1`` and ``jobs=4``
produce byte-identical outputs and an identical ``pymao.batch/1``
summary on both pool backends, warm runs replay byte-identical output,
and one bad file never aborts the batch.
"""

import pytest

from repro import api, obs
from repro.batch import BATCH_SCHEMA, ArtifactCache, run_batch
from repro.obs.metrics import Registry
from repro.workloads.corpus import CorpusConfig, generate_corpus_text

SPEC = "REDZEE:REDTEST:ADDADD"

GOOD = """
.text
.globl f
.type f, @function
f:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""

#: A known mnemonic with a malformed operand — a genuine parse error
#: (an unknown mnemonic would just become an opaque entry).
BAD = """
.text
h:
    movq (((, %rax
"""


def small_corpus(count=6):
    return [("tu_%d.s" % index,
             generate_corpus_text(CorpusConfig(seed=index, scale=0.001,
                                               functions=2)))
            for index in range(count)]


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_jobs_1_vs_4_identical(self, backend):
        corpus = small_corpus()
        serial = run_batch(corpus, SPEC, jobs=1, cache=None)
        parallel = run_batch(corpus, SPEC, jobs=4,
                             parallel_backend=backend, cache=None)
        assert [item.asm for item in serial] \
            == [item.asm for item in parallel]
        assert serial.to_dict() == parallel.to_dict()

    def test_summary_schema_and_order(self):
        corpus = small_corpus(3)
        result = run_batch(corpus, SPEC, jobs=4, cache=None)
        data = result.to_dict()
        assert data["schema"] == BATCH_SCHEMA
        assert [row["file"] for row in data["files"]] \
            == [name for name, _source in corpus]
        assert data["totals"] == {"files": 3, "ok": 3, "errors": 0,
                                  "cache_hits": 0, "cache_misses": 0}
        assert all(row["pipeline"]["schema"] == "pymao.pipeline/1"
                   for row in data["files"])

    def test_timings_are_opt_in(self):
        result = run_batch(small_corpus(2), SPEC, cache=None)
        assert "elapsed_s" not in result.to_dict()
        timed = result.to_dict(timings=True)
        assert "elapsed_s" in timed
        assert all("parse_s" in row for row in timed["files"])


class TestCacheReplay:
    def test_warm_run_is_all_hits_and_byte_identical(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        corpus = small_corpus()
        cold = run_batch(corpus, SPEC, jobs=2, cache=cache)
        warm = run_batch(corpus, SPEC, jobs=2, cache=cache)
        assert [item.cache for item in cold] == ["miss"] * len(corpus)
        assert [item.cache for item in warm] == ["hit"] * len(corpus)
        assert [item.asm for item in cold] == [item.asm for item in warm]
        # The replayed pipeline report is the full pymao.pipeline/1
        # document, so --stats works identically warm or cold.
        assert [item.pipeline.to_dict() for item in cold] \
            == [item.pipeline.to_dict() for item in warm]

    def test_warm_hits_across_process_backend(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        corpus = small_corpus(4)
        run_batch(corpus, SPEC, jobs=2, parallel_backend="process",
                  cache=cache)
        warm = run_batch(corpus, SPEC, jobs=2, parallel_backend="process",
                         cache=cache)
        assert warm.cache_hits == 4

    def test_source_change_misses(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        run_batch([("a.s", GOOD)], SPEC, cache=cache)
        changed = run_batch([("a.s", GOOD + "    nop\n")], SPEC,
                            cache=cache)
        assert changed.items[0].cache == "miss"


class TestSideEffectingSpecs:
    def test_asm_spec_bypasses_cache(self, tmp_path):
        """Replay restores asm+report only, so a spec whose point is a
        side effect (ASM writing its target) must never be served from
        cache: cold and warm runs of the same command must leave the
        same files behind."""
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        target = tmp_path / "emitted.s"
        spec = [("REDTEST", {}), ("ASM", {"o": str(target)})]

        cold = run_batch([("a.s", GOOD)], spec, cache=cache)
        assert cold.items[0].cache == "off"
        assert cache.entries() == []            # nothing published either
        assert target.exists()

        target.unlink()
        warm = run_batch([("a.s", GOOD)], spec, cache=cache)
        assert warm.items[0].cache == "off"
        assert target.exists()                  # the pass really re-ran

    def test_effect_free_specs_still_cache(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        run_batch([("a.s", GOOD)], SPEC, cache=cache)
        warm = run_batch([("a.s", GOOD)], SPEC, cache=cache)
        assert warm.items[0].cache == "hit"


class TestFailureIsolation:
    def test_bad_file_does_not_abort_batch(self):
        result = run_batch([("good1.s", GOOD), ("bad.s", BAD),
                            ("good2.s", GOOD)], SPEC, cache=None)
        assert [item.status for item in result] == ["ok", "error", "ok"]
        assert result.error_count == 1
        assert "ParseError" in result.errors[0].error
        assert result.items[0].asm == result.items[2].asm

    def test_bad_file_in_process_pool_does_not_poison_it(self):
        corpus = [("bad.s", BAD)] + small_corpus(3)
        result = run_batch(corpus, SPEC, jobs=4,
                           parallel_backend="process", cache=None)
        assert result.items[0].status == "error"
        assert all(item.ok for item in result.items[1:])

    def test_unreadable_path_is_reported(self, tmp_path):
        missing = str(tmp_path / "nope.s")
        result = run_batch([missing, ("ok.s", GOOD)], SPEC, cache=None)
        assert result.items[0].status == "error"
        assert result.items[0].cache == "off"
        assert result.items[1].ok

    def test_errors_are_not_cached(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        run_batch([("bad.s", BAD)], SPEC, cache=cache)
        assert cache.entries() == []
        again = run_batch([("bad.s", BAD)], SPEC, cache=cache)
        assert again.items[0].status == "error"


class TestObservability:
    def test_batch_span_tree_file_order(self):
        corpus = small_corpus(3)
        obs.reset_tracer()
        with obs.tracing_enabled():
            run_batch(corpus, SPEC, jobs=4, parallel_backend="thread",
                      cache=None)
        (root,) = [span for span in obs.finish_spans()
                   if span.name == "batch"]
        file_spans = [child for child in root.children
                      if child.name.startswith("file:")]
        assert [span.name for span in file_spans] \
            == ["file:%s" % name for name, _source in corpus]
        assert all(span.find("optimize") is not None
                   for span in file_spans)
        obs.reset_tracer()

    def test_process_backend_ships_spans_back(self):
        corpus = small_corpus(2)
        obs.reset_tracer()
        with obs.tracing_enabled():
            run_batch(corpus, SPEC, jobs=2, parallel_backend="process",
                      cache=None)
        (root,) = [span for span in obs.finish_spans()
                   if span.name == "batch"]
        assert [child.name for child in root.children
                if child.name.startswith("file:")] \
            == ["file:%s" % name for name, _source in corpus]
        obs.reset_tracer()

    def test_registry_counters(self):
        before = obs.REGISTRY.counter_value("batch.files")
        run_batch(small_corpus(3), SPEC, cache=None)
        assert obs.REGISTRY.counter_value("batch.files") == before + 3


class TestApiFacade:
    def test_optimize_many_with_cache_dir(self, tmp_path):
        corpus = small_corpus(3)
        cold = api.optimize_many(corpus, SPEC, jobs=2,
                                 cache_dir=str(tmp_path / "c"))
        warm = api.optimize_many(corpus, SPEC, jobs=2,
                                 cache_dir=str(tmp_path / "c"))
        assert cold.cache_misses == 3
        assert warm.cache_hits == 3

    def test_optimize_many_cache_false(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PYMAO_CACHE_DIR", str(tmp_path / "env"))
        result = api.optimize_many(small_corpus(2), SPEC, cache=False)
        assert all(item.cache == "off" for item in result)
        assert not (tmp_path / "env").exists()

    def test_optimize_many_env_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PYMAO_CACHE_DIR", str(tmp_path / "env"))
        api.optimize_many(small_corpus(2), SPEC)
        assert (tmp_path / "env").is_dir()

    def test_optimize_many_accepts_cache_instance(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), registry=Registry())
        api.optimize_many(small_corpus(2), SPEC, cache=cache)
        assert len(cache.entries()) == 2

    def test_optimize_many_cache_salt_kwarg(self, tmp_path):
        corpus = small_corpus(2)
        root = str(tmp_path / "c")
        api.optimize_many(corpus, SPEC, cache_dir=root, cache_salt="v1")
        resalted = api.optimize_many(corpus, SPEC, cache_dir=root,
                                     cache_salt="v2")
        assert resalted.cache_misses == 2


class TestPredictAnnotation:
    """``predict=`` corpus triage: every ok item gets the static
    throughput prediction of its *emitted* assembly."""

    def test_items_annotated_and_ranked(self):
        from repro.workloads import kernels
        corpus = [("hash.s", kernels.hash_bench()),
                  ("eon.s", kernels.eon_loop(pre_bytes=9)),
                  ("eon_al.s", kernels.eon_loop(pre_bytes=9,
                                                aligned=True)),
                  ("bad.s", BAD)]
        result = run_batch(corpus, None, predict="core2", cache=None)
        by_name = {item.name: item for item in result.items}
        assert by_name["bad.s"].prediction is None

        ranked = result.ranked_by_prediction()
        names = [item.name for item in ranked]
        assert "bad.s" not in names
        assert names.index("eon_al.s") < names.index("eon.s")
        assert names.index("eon.s") < names.index("hash.s")
        for item in ranked:
            assert item.prediction["schema"] == "pymao.predict/1"
            assert item.predicted_cycles == item.prediction["cycles"]

    def test_predictions_survive_summary_roundtrip(self):
        from repro.workloads import kernels
        result = run_batch([("k.s", kernels.hash_bench())], None,
                           predict="opteron", cache=None)
        row = result.to_dict()["files"][0]
        assert row["prediction"]["model"] == "opteron"

    def test_without_predict_items_are_unannotated(self):
        result = run_batch([("a.s", GOOD)], SPEC, cache=None)
        assert result.items[0].prediction is None
        assert result.ranked_by_prediction() == []

    def test_batch_items_counter(self):
        from repro.workloads import kernels
        before = obs.REGISTRY.snapshot().get("predict.batch_items", 0)
        run_batch([("k.s", kernels.hash_bench())], None,
                  predict="core2", cache=None)
        after = obs.REGISTRY.snapshot().get("predict.batch_items", 0)
        assert after == before + 1

    def test_optimize_many_predict_core_kwarg(self):
        batch = api.optimize_many(small_corpus(2), SPEC,
                                  predict_core="core2", cache=False)
        assert all(item.prediction is not None or
                   item.predict_error is not None
                   for item in batch.items if item.ok)
