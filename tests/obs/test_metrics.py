"""Tests for the metrics registry (repro.obs.metrics)."""

import threading

from repro import obs
from repro.obs.metrics import Histogram, Registry


class TestHistogram:
    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_streaming_aggregates(self):
        hist = Histogram()
        for value in (3, 1, 2):
            hist.observe(value)
        summary = hist.summary()
        assert summary == {"count": 3.0, "sum": 6.0, "mean": 2.0,
                           "min": 1.0, "max": 3.0}


class TestRegistry:
    def test_counters_accumulate(self):
        reg = Registry()
        reg.inc("hits")
        reg.inc("hits", 4)
        assert reg.counter_value("hits") == 5
        assert reg.counter_value("absent") == 0

    def test_gauge_overwrites(self):
        reg = Registry()
        reg.gauge("depth", 3)
        reg.gauge("depth", 7.5)
        assert reg.snapshot()["depth"] == 7.5

    def test_histogram_flattens_into_snapshot(self):
        reg = Registry()
        reg.observe("lat", 2.0)
        reg.observe("lat", 4.0)
        snap = reg.snapshot()
        assert snap["lat.count"] == 2.0
        assert snap["lat.mean"] == 3.0

    def test_snapshot_is_sorted(self):
        reg = Registry()
        reg.inc("zz")
        reg.inc("aa")
        assert list(reg.snapshot()) == ["aa", "zz"]

    def test_collector_values_are_namespaced(self):
        reg = Registry()
        reg.register_collector("cache", lambda: {"hits": 9, "rate": 0.5})
        snap = reg.snapshot()
        assert snap["cache.hits"] == 9
        assert snap["cache.rate"] == 0.5

    def test_collector_non_numbers_filtered(self):
        reg = Registry()
        reg.register_collector(
            "c", lambda: {"ok": True, "name": "x", "n": 1})
        assert list(reg.snapshot()) == ["c.n"]

    def test_snapshot_without_collectors(self):
        reg = Registry()
        reg.register_collector("c", lambda: {"n": 1})
        reg.inc("own")
        assert list(reg.snapshot(collectors=False)) == ["own"]

    def test_reset_keeps_collectors(self):
        reg = Registry()
        reg.register_collector("c", lambda: {"n": 1})
        reg.inc("own")
        reg.reset()
        snap = reg.snapshot()
        assert "own" not in snap
        assert snap["c.n"] == 1

    def test_reregister_replaces(self):
        reg = Registry()
        reg.register_collector("c", lambda: {"n": 1})
        reg.register_collector("c", lambda: {"n": 2})
        assert reg.snapshot()["c.n"] == 2

    def test_thread_safety_of_inc(self):
        reg = Registry()

        def hammer():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("n") == 4000


class TestDefaultCollectors:
    def test_engine_caches_appear_in_default_snapshot(self):
        snap = obs.REGISTRY.snapshot()
        for key in ("encoding_cache.hits", "block_cache.block_hits",
                    "fast_forward.loops_entered",
                    "program_cache.entries"):
            assert key in snap, key
