"""Span nesting and metrics through the parallel pass pipeline.

The redesign's contract: the span tree and the registry values for
``--jobs N`` are identical to serial — whatever the worker backend —
because detached worker subtrees are adopted in function order
(mirroring the deterministic report merge).
"""

import pytest

import repro.passes  # noqa: F401 — registers passes
from repro import obs
from repro.ir import parse_unit
from repro.passes.manager import run_passes

SOURCE = ".text\n" + "\n".join(
    """
.globl f{i}
.type f{i}, @function
f{i}:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
""".format(i=i) for i in range(4))

SPEC = "REDZEE:REDTEST:ADDADD"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_tracer()
    previous = obs.set_enabled(False)
    yield
    obs.set_enabled(previous)
    obs.reset_tracer()


def _skeleton(span):
    """Structure + attrs, with timings stripped."""
    return (span.name, tuple(sorted(span.attrs.items())),
            tuple(_skeleton(c) for c in span.children))


def _traced_run(jobs, backend):
    obs.reset_tracer()
    obs.set_enabled(True)
    unit = parse_unit(SOURCE)
    run_passes(unit, SPEC, jobs=jobs, parallel_backend=backend)
    return obs.finish_spans()


class TestSpanNesting:
    def test_serial_tree_shape(self):
        roots = _traced_run(jobs=1, backend="thread")
        assert [r.name for r in roots] \
            == ["pass:REDZEE", "pass:REDTEST", "pass:ADDADD"]
        for root in roots:
            assert [c.name for c in root.children] \
                == ["fn:f0", "fn:f1", "fn:f2", "fn:f3"]
            for child in root.children:
                assert "stats" in child.attrs

    @pytest.mark.parametrize("backend,jobs", [("thread", 4),
                                              ("process", 2)])
    def test_parallel_tree_matches_serial(self, backend, jobs):
        serial = [_skeleton(r) for r in _traced_run(1, "thread")]
        parallel = [_skeleton(r)
                    for r in _traced_run(jobs, backend)]
        # Identical shape, names, and per-function stats — only the
        # parallel= attr on the pass spans legitimately differs.
        def scrub(nodes):
            return [(name,
                     tuple(kv for kv in attrs if kv[0] != "parallel"),
                     scrub(list(children)))
                    for name, attrs, children in nodes]
        assert scrub(parallel) == scrub(serial)

    def test_tracing_off_costs_no_spans(self):
        obs.set_enabled(False)
        unit = parse_unit(SOURCE)
        run_passes(unit, SPEC, jobs=4, parallel_backend="thread")
        assert obs.finish_spans() == []


class TestRegistryDeterminism:
    def _counters(self, jobs, backend):
        obs.REGISTRY.reset()
        unit = parse_unit(SOURCE)
        run_passes(unit, SPEC, jobs=jobs, parallel_backend=backend)
        return obs.REGISTRY.snapshot(collectors=False)

    def test_pass_counters_published(self):
        snap = self._counters(1, "thread")
        assert snap["pass.REDZEE.runs"] == 4
        assert snap["pass.REDZEE.removed"] == 4
        assert snap["pass.REDTEST.removed"] == 4

    @pytest.mark.parametrize("backend,jobs", [("thread", 4),
                                              ("process", 2)])
    def test_registry_identical_serial_vs_parallel(self, backend, jobs):
        serial = self._counters(1, "thread")
        parallel = self._counters(jobs, backend)
        assert parallel == serial
