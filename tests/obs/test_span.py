"""Tests for the hierarchical tracing spans (repro.obs.span)."""

import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_tracer():
    obs.reset_tracer()
    previous = obs.set_enabled(False)
    yield
    obs.set_enabled(previous)
    obs.reset_tracer()


class TestDisabled:
    def test_disabled_span_is_falsy(self):
        with obs.span("anything") as sp:
            assert not sp
            assert sp is obs.NULL_SPAN

    def test_disabled_records_nothing(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert obs.finish_spans() == []

    def test_null_span_absorbs_attach_and_find(self):
        assert obs.NULL_SPAN.attach(k=1) is obs.NULL_SPAN
        assert obs.NULL_SPAN.find("x") is None


class TestNesting:
    def test_nested_spans_form_a_tree(self):
        obs.set_enabled(True)
        with obs.span("outer", kind="test") as outer:
            with obs.span("mid") as mid:
                with obs.span("leaf"):
                    pass
            assert outer
            assert mid
        roots = obs.finish_spans()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["mid"]
        assert [c.name for c in roots[0].children[0].children] == ["leaf"]

    def test_siblings_in_creation_order(self):
        obs.set_enabled(True)
        with obs.span("root"):
            for name in ("a", "b", "c"):
                with obs.span(name):
                    pass
        (root,) = obs.finish_spans()
        assert [c.name for c in root.children] == ["a", "b", "c"]

    def test_duration_and_attrs(self):
        obs.set_enabled(True)
        with obs.span("timed", workload="x") as sp:
            sp.attach(count=3)
        (root,) = obs.finish_spans()
        assert root.dur_s >= 0
        assert root.attrs == {"workload": "x", "count": 3}

    def test_find_walks_depth_first(self):
        obs.set_enabled(True)
        with obs.span("root"):
            with obs.span("a"):
                with obs.span("needle"):
                    pass
        (root,) = obs.finish_spans()
        assert root.find("needle").name == "needle"
        assert root.find("absent") is None
        assert [s.name for s in root.walk()] == ["root", "a", "needle"]

    def test_exception_still_closes_span(self):
        obs.set_enabled(True)
        with pytest.raises(RuntimeError):
            with obs.span("root"):
                with obs.span("inner"):
                    raise RuntimeError("boom")
        (root,) = obs.finish_spans()
        assert [c.name for c in root.children] == ["inner"]


class TestDetached:
    def test_detached_attaches_nowhere(self):
        obs.set_enabled(True)
        with obs.span("root") as root:
            with obs.detached_span("worker") as worker:
                with obs.span("inner"):
                    pass
        assert worker not in root.children
        assert [r.name for r in obs.finish_spans()] == ["root"]
        assert [c.name for c in worker.children] == ["inner"]

    def test_adopt_attaches_under_parent(self):
        obs.set_enabled(True)
        with obs.span("root") as root:
            with obs.detached_span("worker") as worker:
                pass
            obs.adopt_span(root, worker)
        (got,) = obs.finish_spans()
        assert [c.name for c in got.children] == ["worker"]

    def test_adopt_is_noop_for_null_spans(self):
        obs.adopt_span(obs.NULL_SPAN, obs.NULL_SPAN)
        assert obs.finish_spans() == []

    def test_threads_get_independent_stacks(self):
        obs.set_enabled(True)
        done = []

        def worker():
            with obs.detached_span("thread-span") as sp:
                pass
            done.append(sp)

        with obs.span("root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        (root,) = obs.finish_spans()
        # The worker's detached subtree never leaked into main's tree.
        assert root.children == []
        assert done[0].name == "thread-span"


class TestSerialization:
    def test_round_trip(self):
        obs.set_enabled(True)
        with obs.span("root", jobs=2) as root:
            with obs.span("child") as child:
                child.attach(removed=1)
        data = root.to_dict()
        rebuilt = obs.Span.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.name == "root"
        assert rebuilt.children[0].attrs == {"removed": 1}

    def test_from_dict_rejects_non_span(self):
        with pytest.raises(ValueError):
            obs.Span.from_dict({"type": "metrics"})

    def test_tracing_enabled_context_restores(self):
        assert not obs.enabled()
        with obs.tracing_enabled():
            assert obs.enabled()
            with obs.span("inside") as sp:
                assert sp
        assert not obs.enabled()
