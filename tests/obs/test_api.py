"""Tests for the repro.api facade and the kwarg deprecation shim."""

import warnings

import pytest

from repro import api, obs
from repro.ir import parse_unit
from repro.passes.manager import (
    PIPELINE_SCHEMA,
    PassReport,
    PipelineResult,
    run_passes,
)
from repro.uarch.profiles import core2

SOURCE = """
.text
.globl main
.type main, @function
main:
    movl $50, %ecx
    xorl %eax, %eax
.Lloop:
    addl $3, %eax
    testl %eax, %eax
    subl $1, %ecx
    jne .Lloop
    mov %eax, %eax
    ret
"""


class TestOptimize:
    def test_source_text_in(self):
        result = api.optimize(SOURCE, "REDTEST:REDZEE")
        assert result.stats_for("REDTEST") == {"removed": 1, "tests": 1}
        assert result.stats_for("REDZEE")["candidates"] == 1
        assert result.parse_s > 0
        assert "testl" not in result.to_asm()

    def test_prebuilt_unit_in(self):
        unit = parse_unit(SOURCE)
        result = api.optimize(unit, "REDTEST")
        assert result.unit is unit
        assert result.parse_s == 0.0

    def test_spec_forms(self):
        as_string = api.optimize(SOURCE, "REDTEST")
        as_items = api.optimize(SOURCE, [("REDTEST", {})])
        none_spec = api.optimize(SOURCE)
        assert [r.to_dict() for r in as_string.reports] \
            == [r.to_dict() for r in as_items.reports]
        assert none_spec.reports == []

    def test_parallel_kwargs(self):
        serial = api.optimize(SOURCE, "REDTEST")
        parallel = api.optimize(SOURCE, "REDTEST", jobs=2,
                                parallel_backend="thread")
        assert parallel.to_asm() == serial.to_asm()


class TestSimulate:
    def test_model_by_name_or_instance(self):
        by_name = api.simulate(SOURCE, "core2")
        by_model = api.simulate(SOURCE, core2())
        assert by_name.cycles == by_model.cycles
        assert by_name.steps == by_model.steps
        assert by_name.result.reason == "ret"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            api.simulate(SOURCE, "cray1")

    def test_workload_by_kernel_name(self):
        sim = api.simulate(None, "core2", workload="hash_bench")
        assert sim.cycles > 0

    def test_workload_by_callable(self):
        sim = api.simulate(None, "core2", workload=lambda: SOURCE)
        assert sim.result.reason == "ret"

    def test_workload_and_source_conflict(self):
        with pytest.raises(ValueError):
            api.simulate(SOURCE, "core2", workload="hash_bench")
        with pytest.raises(ValueError):
            api.simulate(None, "core2")

    def test_counter_access(self):
        sim = api.simulate(SOURCE, "core2")
        assert sim["INSTRUCTIONS"] == sim.steps
        assert sim.counters["INSTRUCTIONS"] == sim.steps

    def test_optimize_then_simulate(self):
        base = api.simulate(SOURCE, "core2")
        opt = api.simulate(api.optimize(SOURCE, "REDTEST:REDZEE").unit,
                           "core2")
        assert opt.steps < base.steps


class TestTracingIntegration:
    def test_facade_emits_nested_spans(self):
        obs.reset_tracer()
        with obs.tracing_enabled():
            result = api.optimize(SOURCE, "REDTEST")
            api.simulate(result.unit, "core2")
        roots = obs.finish_spans()
        obs.reset_tracer()
        names = [r.name for r in roots]
        assert "optimize" in names
        optimize = roots[names.index("optimize")]
        assert optimize.find("parse") is not None
        assert optimize.find("pass:REDTEST") is not None
        assert any(r.find("simulate") for r in roots)


class TestPipelineSerialization:
    def test_round_trip_with_versioned_schema(self):
        result = api.optimize(SOURCE, "REDTEST:REDZEE").pipeline
        data = result.to_dict()
        assert data["schema"] == PIPELINE_SCHEMA == "pymao.pipeline/1"
        rebuilt = PipelineResult.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.pass_names() == result.pass_names()
        assert rebuilt.stats_for("REDTEST") == result.stats_for("REDTEST")

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            PipelineResult.from_dict({"schema": "pymao.pipeline/99",
                                      "reports": []})

    def test_report_row_format(self):
        report = PassReport("REDTEST", "main", {"removed": 1})
        data = report.to_dict()
        assert data == {"pass": "REDTEST", "scope": "main",
                        "stats": {"removed": 1}}
        assert PassReport.from_dict(data).to_dict() == data

    def test_attribute_access_still_works(self):
        result = api.optimize(SOURCE, "REDTEST").pipeline
        assert result.reports[0].pass_name == "REDTEST"
        assert result.reports[0].scope == "main"
        assert result.total("REDTEST", "removed") == 1


class TestBackendKwargShim:
    def test_canonical_name_no_warning(self):
        unit = parse_unit(SOURCE)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_passes(unit, "REDTEST", jobs=2, parallel_backend="thread")

    def test_legacy_backend_warns_and_works(self):
        unit = parse_unit(SOURCE)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_passes(unit, "REDTEST", jobs=2, backend="thread")
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_conflicting_spellings_rejected(self):
        unit = parse_unit(SOURCE)
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                run_passes(unit, "REDTEST", jobs=2,
                           parallel_backend="thread", backend="process")
