"""Tests for the trace sinks and the pymao.trace/1 event stream."""

import io

import pytest

from repro import obs
from repro.obs.metrics import Registry


@pytest.fixture(autouse=True)
def clean_tracer():
    obs.reset_tracer()
    previous = obs.set_enabled(False)
    yield
    obs.set_enabled(previous)
    obs.reset_tracer()


def _record_spans():
    obs.set_enabled(True)
    with obs.span("optimize", jobs=1) as root:
        with obs.span("parse") as parse:
            parse.attach(functions=2)
        with obs.span("pass:REDTEST"):
            pass
    return obs.finish_spans(), root


class TestEvents:
    def test_meta_event_carries_schema_and_context(self):
        event = obs.meta_event(argv=["--mao=REDTEST"])
        assert event["schema"] == obs.TRACE_SCHEMA
        assert event["type"] == "meta"
        assert event["argv"] == ["--mao=REDTEST"]

    def test_span_event_nests_children_inline(self):
        _, root = _record_spans()
        event = obs.span_event(root)
        assert event["schema"] == obs.TRACE_SCHEMA
        assert [c["name"] for c in event["children"]] \
            == ["parse", "pass:REDTEST"]

    def test_metrics_event(self):
        event = obs.metrics_event({"a": 1})
        assert event["type"] == "metrics"
        assert event["values"] == {"a": 1}


class TestJsonlRoundTrip:
    def test_write_then_read_back(self, tmp_path):
        spans, root = _record_spans()
        registry = Registry()
        registry.inc("pass.REDTEST.runs")
        path = tmp_path / "trace.jsonl"

        sink = obs.JsonlSink(str(path))
        obs.write_trace(sink, spans, registry=registry, argv=["x"])
        sink.close()

        events = obs.read_jsonl(str(path))
        assert [e["type"] for e in events] == ["meta", "span", "metrics"]
        assert all(e["schema"] == obs.TRACE_SCHEMA for e in events)
        rebuilt = obs.Span.from_dict(events[1])
        assert rebuilt.to_dict() == root.to_dict()
        assert events[2]["values"] == {"pass.REDTEST.runs": 1}

    def test_validates_against_the_schema_checker(self, tmp_path):
        import os
        import sys
        scripts = os.path.join(os.path.dirname(__file__), os.pardir,
                               os.pardir, "scripts")
        sys.path.insert(0, os.path.abspath(scripts))
        try:
            import validate_trace
        finally:
            sys.path.pop(0)

        spans, _ = _record_spans()
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(str(path))
        obs.write_trace(sink, spans, registry=Registry())
        sink.close()

        events = validate_trace.read_events(str(path))
        assert validate_trace.validate_events(
            events, ["optimize", "parse", "pass:REDTEST"]) == []

    def test_accepts_open_file_without_closing_it(self):
        buf = io.StringIO()
        sink = obs.JsonlSink(buf)
        sink.emit(obs.meta_event())
        sink.close()
        assert buf.getvalue().count("\n") == 1


class TestMemorySink:
    def test_collects_and_rebuilds_spans(self):
        spans, root = _record_spans()
        sink = obs.MemorySink()
        obs.write_trace(sink, spans, registry=None, workload="t")
        assert sink.events[0]["workload"] == "t"
        (got,) = sink.spans()
        assert got.to_dict() == root.to_dict()


class TestTextSink:
    def test_renders_indented_tree_and_metrics(self):
        spans, _ = _record_spans()
        registry = Registry()
        registry.inc("pass.REDTEST.runs")
        buf = io.StringIO()
        obs.write_trace(obs.TextSink(buf), spans, registry=registry)
        text = buf.getvalue()
        assert "optimize" in text
        assert "  parse" in text           # indented child
        assert "functions=2" in text
        assert "pass.REDTEST.runs" in text
