"""Tests for the MaoUnit entry list and section/function views."""

import pytest

from repro.ir import parse_unit
from repro.ir.entries import (
    DirectiveEntry,
    InstructionEntry,
    LabelEntry,
    OpaqueEntry,
)
from repro.ir.unit import MaoUnit
from repro.x86.instruction import Instruction


class TestLinkedList:
    def test_append_order(self):
        unit = MaoUnit()
        a = unit.append(LabelEntry("a"))
        b = unit.append(InstructionEntry(Instruction("nop")))
        assert list(unit.entries()) == [a, b]
        assert len(unit) == 2

    def test_insert_before_head(self):
        unit = MaoUnit()
        b = unit.append(LabelEntry("b"))
        a = unit.insert_before(b, LabelEntry("a"))
        assert list(unit.entries()) == [a, b]
        assert unit.head is a

    def test_insert_after_tail(self):
        unit = MaoUnit()
        a = unit.append(LabelEntry("a"))
        b = unit.insert_after(a, LabelEntry("b"))
        assert list(unit.entries()) == [a, b]
        assert unit.tail is b

    def test_insert_middle(self):
        unit = MaoUnit()
        a = unit.append(LabelEntry("a"))
        c = unit.append(LabelEntry("c"))
        b = unit.insert_after(a, LabelEntry("b"))
        assert [e.name for e in unit.entries()] == ["a", "b", "c"]
        assert c.prev is b

    def test_remove_middle(self):
        unit = MaoUnit()
        a = unit.append(LabelEntry("a"))
        b = unit.append(LabelEntry("b"))
        c = unit.append(LabelEntry("c"))
        unit.remove(b)
        assert [e.name for e in unit.entries()] == ["a", "c"]
        assert a.next is c and c.prev is a
        assert len(unit) == 2

    def test_remove_head_and_tail(self):
        unit = MaoUnit()
        a = unit.append(LabelEntry("a"))
        b = unit.append(LabelEntry("b"))
        unit.remove(a)
        assert unit.head is b
        unit.remove(b)
        assert unit.head is None and unit.tail is None
        assert len(unit) == 0

    def test_removal_during_iteration_is_safe(self):
        unit = MaoUnit()
        for name in "abcde":
            unit.append(LabelEntry(name))
        for entry in unit.entries():
            if entry.name in "bd":
                unit.remove(entry)
        assert [e.name for e in unit.entries()] == ["a", "c", "e"]

    def test_replace(self):
        unit = MaoUnit()
        a = unit.append(LabelEntry("a"))
        b = unit.replace(a, LabelEntry("b"))
        assert [e.name for e in unit.entries()] == ["b"]

    def test_inserted_entry_inherits_section(self):
        unit = parse_unit(".text\nf:\n    nop\n")
        nop_entry = next(e for e in unit.entries() if e.is_instruction)
        new = unit.insert_instruction_before(nop_entry, Instruction("nop"))
        assert new.section is nop_entry.section


class TestEmission:
    def test_to_asm_roundtrip_shape(self):
        source = ".text\nmain:\n\tnop\n\tret\n"
        unit = parse_unit(source)
        text = unit.to_asm()
        assert "main:" in text
        assert "\tnop" in text
        assert "\tret" in text

    def test_opaque_entries_reemitted_verbatim(self):
        unit = parse_unit(".text\nf:\n    vaddps %ymm0, %ymm1, %ymm2\n")
        assert "vaddps %ymm0, %ymm1, %ymm2" in unit.to_asm()

    def test_instruction_count(self):
        unit = parse_unit(".text\nf:\n    nop\n    nop\n    ret\n")
        assert unit.instruction_count() == 3


class TestFunctions:
    SOURCE = """
.text
.globl f
.type f, @function
f:
    nop
    ret
.type g, @function
g:
    xorl %eax, %eax
    ret
"""

    def test_functions_found(self):
        unit = parse_unit(self.SOURCE)
        assert [fn.name for fn in unit.functions] == ["f", "g"]

    def test_function_named(self):
        unit = parse_unit(self.SOURCE)
        assert unit.function_named("g").name == "g"
        with pytest.raises(KeyError):
            unit.function_named("h")

    def test_function_instruction_streams(self):
        unit = parse_unit(self.SOURCE)
        f, g = unit.functions
        assert [e.insn.base for e in f.instructions()] == ["nop", "ret"]
        assert [e.insn.base for e in g.instructions()] == ["xor", "ret"]

    def test_function_split_by_data_section(self):
        """Paper §II: a function interrupted by an intermittent data
        section is iterated as one continuous body."""
        unit = parse_unit("""
.text
.type f, @function
f:
    movl $1, %eax
.section .rodata
.Ltab:
    .quad .La
.text
.La:
    ret
""")
        function = unit.function_named("f")
        bases = [e.insn.base for e in function.instructions()]
        assert bases == ["mov", "ret"]
        # The data directive is not part of the function's entry stream.
        assert all(not (e.is_directive and e.name == "quad")
                   for e in function.entries())

    def test_heuristic_function_detection(self):
        """Bare labels followed by code count as functions when no .type
        directives exist."""
        unit = parse_unit(".text\nmain:\n    nop\n    ret\n")
        assert [fn.name for fn in unit.functions] == ["main"]

    def test_local_labels_are_not_functions(self):
        unit = parse_unit(".text\nmain:\n    nop\n.L1:\n    ret\n")
        assert [fn.name for fn in unit.functions] == ["main"]

    def test_label_map(self):
        unit = parse_unit(".text\nf:\n.L1:\n    nop\n")
        assert set(unit.label_map()) == {"f", ".L1"}
