"""Tests for section tracking and function discovery in the builder."""

import pytest

from repro.ir import parse_unit
from repro.ir.entries import DirectiveEntry, LabelEntry, OpaqueEntry


def sections_of(unit):
    return {entry.section.name for entry in unit.entries()}


class TestSectionTracking:
    def test_default_is_text(self):
        unit = parse_unit("nop\n")
        entry = next(unit.entries())
        assert entry.section.name == ".text"

    def test_shorthand_directives(self):
        unit = parse_unit("""
.data
x:
    .quad 1
.text
f:
    ret
.bss
y:
""")
        names = {}
        for entry in unit.entries():
            if isinstance(entry, LabelEntry):
                names[entry.name] = entry.section.name
        assert names == {"x": ".data", "f": ".text", "y": ".bss"}

    def test_section_directive_with_flags(self):
        unit = parse_unit('.section .text.hot, "ax"\nf:\n    ret\n')
        assert unit.get_section(".text.hot").is_code

    def test_data_section_is_not_code(self):
        unit = parse_unit(".section .rodata\nx:\n    .quad 1\n")
        assert not unit.get_section(".rodata").is_code

    def test_pushsection_popsection(self):
        unit = parse_unit("""
.text
f:
    nop
.pushsection .rodata
x:
    .quad 1
.popsection
    ret
""")
        labels = {e.name: e.section.name for e in unit.entries()
                  if isinstance(e, LabelEntry)}
        assert labels["x"] == ".rodata"
        ret_entry = [e for e in unit.entries() if e.is_instruction][-1]
        assert ret_entry.section.name == ".text"

    def test_previous_directive(self):
        unit = parse_unit("""
.text
f:
    nop
.section .rodata
x:
    .quad 1
.previous
    ret
""")
        ret_entry = [e for e in unit.entries() if e.is_instruction][-1]
        assert ret_entry.section.name == ".text"


class TestFunctionDiscovery:
    def test_type_directive_wins(self):
        unit = parse_unit("""
.text
helper_label:
    nop
.type real_fn, @function
real_fn:
    ret
""")
        assert [fn.name for fn in unit.functions] == ["real_fn"]

    def test_size_directive_parsed(self):
        unit = parse_unit("""
.text
.type f, @function
f:
    ret
    .size f, .-f
""")
        assert [fn.name for fn in unit.functions] == ["f"]

    def test_function_in_custom_code_section(self):
        unit = parse_unit('.section .text.unlikely, "ax"\ncold:\n    ret\n')
        assert [fn.name for fn in unit.functions] == ["cold"]

    def test_data_labels_not_functions(self):
        unit = parse_unit("""
.text
f:
    ret
.data
table:
    .quad 1
""")
        assert [fn.name for fn in unit.functions] == ["f"]

    def test_function_end_boundaries(self):
        unit = parse_unit("""
.text
.type a, @function
a:
    movl $1, %eax
    ret
.type b, @function
b:
    movl $2, %eax
    ret
""")
        a, b = unit.functions
        assert len(list(a.instructions())) == 2
        assert len(list(b.instructions())) == 2


class TestEntryHelpers:
    def test_directive_int_args(self):
        entry = DirectiveEntry("p2align", "4,,10")
        assert entry.int_args() == [4, 10]

    def test_directive_str_args(self):
        entry = DirectiveEntry("type", "f, @function")
        assert entry.str_args() == ["f", "@function"]

    def test_opaque_roundtrip(self):
        unit = parse_unit(".text\nf:\n    vfmadd231ps %ymm0, %ymm1, %ymm2\n")
        opaque = [e for e in unit.entries()
                  if isinstance(e, OpaqueEntry)]
        assert len(opaque) == 1
        assert "vfmadd231ps" in unit.to_asm()

    def test_entry_kind_predicates(self):
        unit = parse_unit(".text\nf:\n    nop\n")
        kinds = [(e.is_label, e.is_instruction, e.is_directive)
                 for e in unit.entries()]
        assert kinds == [(False, False, True),
                         (True, False, False),
                         (False, True, False)]
