"""Extended detection tests: broader templates, Intel/AMD structure."""

import pytest

from repro.mbench import Processor, detect
from repro.mbench.sequence import DagType, InstructionSequence
from repro.uarch.profiles import blinded_profile, core2, opteron


class TestLatencyTable:
    """Fig. 6's method across the latency table."""

    @pytest.mark.parametrize("template,key", [
        ("addq %r, %r", "alu"),
        ("subq %r, %r", "alu"),
        ("xorq %r, %r", "alu"),
        ("imulq %r, %r", "mul"),
        ("movq (%r), %r", "load"),
    ])
    def test_core2_latencies(self, template, key):
        proc = Processor(core2())
        assert detect.InstructionLatency(proc, template,
                                         trip_count=400) \
            == core2().latency[key]

    def test_opteron_lea_latency_differs(self):
        """Opteron's 2-cycle lea vs Core-2's 1-cycle is detectable."""
        c2 = detect.InstructionLatency(Processor(core2()),
                                       "leaq (%r), %r", trip_count=400)
        amd = detect.InstructionLatency(Processor(opteron()),
                                        "leaq (%r), %r", trip_count=400)
        assert c2 == core2().latency["lea"]
        assert amd == opteron().latency["lea"]
        assert amd > c2

    def test_sse_latency(self):
        proc = Processor(core2())
        measured = detect.InstructionLatency(proc, "addsd %x, %x",
                                             trip_count=400)
        assert measured == core2().latency["fp_add"]


class TestThroughputVsLatency:
    def test_parallel_alu_beats_chain(self):
        proc = Processor(core2())
        latency = detect.InstructionLatency(proc, "addq %r, %r",
                                            trip_count=400)
        throughput = detect.InstructionThroughput(proc, "addq %r, %r",
                                                  trip_count=400)
        assert throughput < latency

    def test_single_port_unit_throughput(self):
        """imul has one port: throughput ~1/cycle even though independent."""
        proc = Processor(core2())
        throughput = detect.InstructionThroughput(
            proc, "imulq $3, %r, %r", trip_count=400)
        assert throughput >= 0.9


class TestStructuralDetection:
    def test_line_size_detection_robust_across_seeds(self):
        for seed in (2, 9):
            model = blinded_profile(seed)
            detected = detect.DetectDecodeLineSize(Processor(model))
            assert detected == model.decode_line_bytes, seed

    def test_lsd_budget_core2(self):
        assert detect.DetectLsdLineBudget(Processor(core2())) == 4

    def test_forwarding_bandwidth_core2(self):
        assert detect.DetectForwardingBandwidth(Processor(core2())) == 3


class TestSequencesWithCandidateSets:
    def test_mixed_candidate_templates(self):
        """The paper: sequences draw from a *set* of candidates."""
        proc = Processor(core2(), seed=3)
        seq = InstructionSequence(proc, length=12)
        seq.SetCandidateTemplates(["add %r, %r", "xor %r, %r",
                                   "sub %r, %r"])
        seq.SetDagType(DagType.CHAIN)
        texts = seq.Generate()
        bases = {t.split()[0] for t in texts}
        assert len(bases) > 1, "must mix candidates"

    def test_set_length(self):
        proc = Processor(core2())
        seq = InstructionSequence(proc)
        seq.SetInstructionTemplate("add %r, %r")
        seq.SetLength(5)
        seq.SetDagType(DagType.DISJOINT)
        assert len(seq.Generate()) == 5

    def test_generate_without_template_rejected(self):
        seq = InstructionSequence(Processor(core2()))
        with pytest.raises(ValueError):
            seq.Generate()
