"""Tests for the §IV microbenchmark framework."""

import pytest

from repro.mbench import (
    Benchmark,
    DagType,
    InstructionSequence,
    InstructionTemplate,
    LoopList,
    Processor,
    StraightLineLoop,
)
from repro.uarch.profiles import core2
from repro.x86.parser import parse_instruction


class TestTemplates:
    def test_placeholders_found(self):
        template = InstructionTemplate("add %r, %r")
        assert template.placeholders == ["%r", "%r"]
        assert template.width == 64

    def test_literal_registers_are_not_placeholders(self):
        template = InstructionTemplate("nopl 128(%rax,%rax,1)")
        assert template.placeholders == []

    def test_width_from_suffix(self):
        assert InstructionTemplate("addl %r, %r").width == 32

    def test_instantiate(self):
        template = InstructionTemplate("add %r, %r")
        assert template.instantiate(["%rbx", "%rcx"]) == "add %rbx, %rcx"

    def test_instantiate_memory_form(self):
        template = InstructionTemplate("movq (%r), %r")
        text = template.instantiate(["%rax", "%rbx"])
        assert text == "movq (%rax), %rbx"

    def test_immediate_placeholder(self):
        template = InstructionTemplate("add $i, %r")
        text = template.instantiate(["$5", "%rdx"])
        assert text == "add $5, %rdx"


class TestSequences:
    def proc(self):
        return Processor(core2(), seed=11)

    def generated(self, dag_type, length=6, template="add %r, %r"):
        seq = InstructionSequence(self.proc(), length=length)
        seq.SetInstructionTemplate(template)
        seq.SetDagType(dag_type)
        return seq.Generate()

    def parse_all(self, texts):
        return [parse_instruction(t).insn for t in texts]

    def test_chain_has_raw_dependences(self):
        insns = self.parse_all(self.generated(DagType.CHAIN))
        for prev, cur in zip(insns, insns[1:]):
            prev_dest = prev.operands[-1].reg.group
            srcs = {op.reg.group for op in cur.operands[:-1]
                    if hasattr(op, "reg")}
            assert prev_dest in srcs

    def test_cycle_closes(self):
        insns = self.parse_all(self.generated(DagType.CYCLE))
        last_dest = insns[-1].operands[-1].reg.group
        first_srcs = {op.reg.group for op in insns[0].operands[:-1]
                      if hasattr(op, "reg")}
        assert last_dest in first_srcs

    def test_disjoint_independent(self):
        insns = self.parse_all(self.generated(DagType.DISJOINT))
        for prev, cur in zip(insns, insns[1:]):
            prev_dest = prev.operands[-1].reg.group
            srcs = {op.reg.group for op in cur.operands[:-1]
                    if hasattr(op, "reg")}
            assert prev_dest not in srcs

    def test_all_instructions_parse_and_encode(self):
        from repro.x86.encoder import encode_instruction
        for dag in DagType:
            for text in self.generated(dag, length=10):
                encode_instruction(parse_instruction(text).insn)

    def test_seeded_reproducibility(self):
        a = self.generated(DagType.RANDOM)
        seq = InstructionSequence(Processor(core2(), seed=11), length=6)
        seq.SetInstructionTemplate("add %r, %r")
        seq.SetDagType(DagType.RANDOM)
        assert seq.Generate() == a

    def test_reserved_registers_untouched(self):
        for text in self.generated(DagType.RANDOM, length=30):
            insn = parse_instruction(text).insn
            for reg in insn.register_operands():
                assert reg.group not in ("rsp", "rbp", "r15")


class TestLoopsAndBenchmark:
    def test_program_assembles_and_runs(self):
        proc = Processor(core2())
        seq = InstructionSequence(proc, length=4)
        seq.SetInstructionTemplate("add %r, %r")
        seq.SetDagType(DagType.CHAIN)
        seq.Generate()
        loop_list = LoopList([StraightLineLoop([seq], proc,
                                               trip_count=100)])
        bench = Benchmark(loop_list)
        results = bench.Execute(proc, [proc.CPU_CYCLES,
                                       proc.INSTRUCTIONS])
        assert results[proc.CPU_CYCLES] > 0
        assert results[proc.INSTRUCTIONS] >= 400

    def test_num_dynamic_instructions(self):
        proc = Processor(core2())
        seq = InstructionSequence(proc, length=5)
        seq.SetInstructionTemplate("add %r, %r")
        seq.SetDagType(DagType.DISJOINT)
        seq.Generate()
        loop_list = LoopList([StraightLineLoop([seq], proc,
                                               trip_count=7)])
        assert loop_list.NumDynamicInstructions() == 35

    def test_memory_template_runs(self):
        proc = Processor(core2())
        seq = InstructionSequence(proc, length=3)
        seq.SetInstructionTemplate("movq %m, %r")
        seq.SetDagType(DagType.DISJOINT)
        seq.Generate()
        bench = Benchmark(LoopList([StraightLineLoop([seq], proc,
                                                     trip_count=50)]))
        results = bench.Execute(proc, [proc.CPU_CYCLES])
        assert results[proc.CPU_CYCLES] > 0


class TestDetection:
    """Fast subset of the detectors (full sweeps live in the benches)."""

    def test_instruction_latency_alu(self):
        from repro.mbench.detect import InstructionLatency
        proc = Processor(core2())
        assert InstructionLatency(proc, "addq %r, %r",
                                  trip_count=300) == 1

    def test_instruction_latency_matches_model(self):
        from repro.mbench.detect import InstructionLatency
        proc = Processor(core2())
        assert InstructionLatency(proc, "imulq %r, %r", trip_count=300) \
            == core2().latency["mul"]

    def test_latency_of_blinded_model_recovered(self):
        from repro.mbench.detect import InstructionLatency
        from repro.uarch.profiles import blinded_profile
        model = blinded_profile(3)
        proc = Processor(model)
        assert InstructionLatency(proc, "imulq %r, %r", trip_count=300) \
            == model.latency["mul"]

    def test_throughput_less_than_latency_for_parallel_alu(self):
        from repro.mbench.detect import InstructionThroughput
        proc = Processor(core2())
        throughput = InstructionThroughput(proc, "addq %r, %r",
                                           trip_count=300)
        assert throughput < 1.0    # three ALU ports
