"""Tests for program reuse across detection sweeps.

Detectors run the same generated kernel at many sweep points; loading it
once and running each sweep against a private memory clone must change
nothing but the load count — the detection results are pinned equal with
a cold and a warm cache, and cached runs must not leak architectural
state between executions.
"""

from repro.mbench import Processor, detect
from repro.mbench.benchmark import (
    load_program_cached,
    program_cache_stats,
    reset_program_cache,
)
from repro.uarch.pipeline import simulate_program
from repro.uarch.profiles import core2


SOURCE = (".text\n.globl main\nmain:\n"
          "    movq $50, %rcx\n"
          "    leaq buf(%rip), %rdi\n"
          ".Lloop:\n"
          "    addq %rcx, (%rdi)\n"
          "    subq $1, %rcx\n"
          "    jne .Lloop\n"
          "    movq (%rdi), %rax\n"
          "    ret\n"
          ".section .data\nbuf:\n    .zero 8\n")


class TestProgramCache:
    def test_cache_hit_on_second_load(self):
        reset_program_cache()
        first = load_program_cached(SOURCE)
        second = load_program_cached(SOURCE)
        assert first is second
        stats = program_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_entry_symbol_is_part_of_the_key(self):
        reset_program_cache()
        source = (".text\n.globl main\n.globl alt\nmain:\n    ret\n"
                  "alt:\n    ret\n")
        a = load_program_cached(source, "main")
        b = load_program_cached(source, "alt")
        assert a is not b
        assert program_cache_stats()["entries"] == 2

    def test_cached_runs_do_not_leak_memory_state(self):
        # The kernel sums 1..50 into .data and loads it back; a run
        # against a stale memory image would see the previous total.
        reset_program_cache()
        model = core2()
        program = load_program_cached(SOURCE)
        for _ in range(3):
            result, stats = simulate_program(program, model,
                                             private_memory=True)
            assert result.reason == "ret"
            assert result.state.gp["rax"] == sum(range(1, 51))
        assert program_cache_stats()["entries"] == 1


class TestDetectionUnchanged:
    def test_latency_same_cold_and_warm(self):
        proc = Processor(core2())
        reset_program_cache()
        cold = detect.InstructionLatency(proc, "addq %r, %r",
                                         trip_count=300)
        warm = detect.InstructionLatency(proc, "addq %r, %r",
                                         trip_count=300)
        assert cold == warm == core2().latency["alu"]

    def test_branch_predictor_shift_detection_unchanged(self):
        reset_program_cache()
        proc = Processor(core2())
        cold = detect.DetectBranchPredictorShift(proc)
        misses = program_cache_stats()["misses"]
        warm = detect.DetectBranchPredictorShift(proc)
        assert cold == warm == core2().bp_index_shift
        # The repeat sweep reuses every loaded program: only hits, no
        # further loads.
        stats = program_cache_stats()
        assert stats["misses"] == misses
        assert stats["hits"] >= misses
