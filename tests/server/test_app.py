"""End-to-end tests for the asyncio service (repro.server.app)."""

import json
import os
import threading

import pytest

from repro import obs
from repro.server import (
    Client,
    ServerConfig,
    ServerError,
    ServerThread,
)

SOURCE = """
.text
.globl f
.type f, @function
f:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""

BAD_SOURCE = """
.text
h:
    movq (((, %rax
"""


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("server-cache"))
    config = ServerConfig(port=0, cache_dir=cache_dir, max_inflight=4)
    with ServerThread(config) as handle:
        yield handle


@pytest.fixture
def client(server):
    with Client(port=server.port, retries=2) as c:
        yield c


class TestEndpoints:
    def test_healthz(self, client, server):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["max_inflight"] == 4
        assert payload["cache"] is True

    def test_optimize_roundtrip(self, client):
        result = client.optimize(SOURCE, "REDTEST", filename="in.s")
        assert result["schema"] == "pymao.server/1"
        assert "testl" not in result["asm"]
        assert result["pipeline"]["schema"] == "pymao.pipeline/1"
        assert result["cache"] in ("miss", "hit")

    def test_second_identical_request_replays(self, client):
        first = client.optimize(SOURCE, "REDTEST:LOOP16")
        again = client.optimize(SOURCE, "REDTEST:LOOP16")
        assert again["cache"] == "hit"
        assert again["asm"] == first["asm"]
        assert again["pipeline"] == first["pipeline"]

    def test_cache_shared_between_optimize_and_batch(self, client):
        """One store serves every endpoint: a source optimized via
        /v1/optimize must replay as a hit inside /v1/batch."""
        source = SOURCE.replace("f", "shared")
        client.optimize(source, "REDTEST")
        batch = client.batch([("shared.s", source)], "REDTEST")
        rows = batch["summary"]["files"]
        assert rows[0]["cache"] == "hit"

    def test_batch_summary_schema_and_failure_isolation(self, client):
        batch = client.batch(
            [("good.s", SOURCE.replace("f", "g")), ("bad.s", BAD_SOURCE)],
            "REDTEST")
        summary = batch["summary"]
        assert summary["schema"] == "pymao.batch/1"
        assert summary["totals"]["ok"] == 1
        assert summary["totals"]["errors"] == 1
        assert "good.s" in batch["asm"]
        assert "bad.s" not in batch["asm"]

    def test_simulate_workload(self, client):
        result = client.simulate(workload="hash_bench", core="core2",
                                 max_steps=200_000)
        assert result["cycles"] > 0
        assert result["steps"] > 0
        assert result["counters"]

    def test_predict_workload(self, client):
        result = client.predict(workload="hash_bench", core="core2")
        assert result["schema"] == "pymao.server/1"
        assert result["core"] == "core2"
        prediction = result["prediction"]
        assert prediction["schema"] == "pymao.predict/1"
        assert prediction["cycles"] > 0
        assert prediction["bottleneck"] in ("ports", "latency", "frontend")
        assert set(prediction["bounds"]) == {"ports", "latency",
                                             "frontend"}

    def test_predict_source_counted_in_metrics(self, client):
        source = SOURCE.replace("ret", "jmp f\n    ret")
        result = client.predict(source, "opteron")
        assert result["prediction"]["model"] == "opteron"
        values = client.metrics()["values"]
        assert values["server.predict.requests"] >= 1
        assert values["predict.requests"] >= 1

    def test_tune_workload(self, client):
        result = client.tune(workload="fig4_loop", core="core2",
                             budget=16)
        assert result["schema"] == "pymao.server/1"
        doc = result["tune"]
        assert doc["schema"] == "pymao.tune/1"
        assert doc["winner"]["cycles"] > 0
        assert doc["early_stop"]["reason"] in ("lower_bound", "budget",
                                               "rounds", "exhausted")
        assert result["asm"]
        # The winner is never worse than the default spec when the
        # default got scored, and never worse than any leaderboard row.
        for row in doc["leaderboard"]:
            assert doc["winner"]["cycles"] <= row["cycles"]
        values = client.metrics()["values"]
        assert values["server.tune.requests"] >= 1
        assert values["tune.requests"] >= 1

    def test_tune_warm_retune_replays_from_shared_cache(self, client):
        cold = client.tune(workload="mcf_fig1", core="opteron")
        warm = client.tune(workload="mcf_fig1", core="opteron")
        assert warm["tune"]["pass_runs"]["executed"] == 0
        assert warm["tune"]["winner"] == cold["tune"]["winner"]

    def test_metrics_is_trace_event(self, client):
        client.optimize(SOURCE, "REDTEST")
        payload = client.metrics()
        assert payload["schema"] == "pymao.trace/1"
        assert payload["type"] == "metrics"
        values = payload["values"]
        assert values["server.requests"] >= 1
        assert any(name.startswith("server.optimize.")
                   for name in values)

    def test_request_id_echoed(self, client):
        result = client.optimize(SOURCE, None, request_id="my-req-42")
        assert result["request_id"] == "my-req-42"

    def test_keep_alive_connection_reused(self, client):
        for _ in range(3):
            assert client.healthz()["status"] == "ok"
        assert client.retries_on_transport == 0


class TestClientErrors:
    def test_missing_source_is_400(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.request("POST", "/v1/optimize", {"spec": "REDTEST"})
        assert exc_info.value.status == 400

    def test_parse_failure_is_400(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.optimize(BAD_SOURCE, "REDTEST")
        assert exc_info.value.status == 400
        assert "Error" in str(exc_info.value) or "error" in str(exc_info.value)

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.optimize(SOURCE, "NOT!A%SPEC[[[")
        assert exc_info.value.status == 400

    def test_side_effecting_spec_rejected(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.optimize(SOURCE, "REDTEST:ASM=o[/tmp/evil.s]")
        assert exc_info.value.status == 400
        assert "side-effecting" in str(exc_info.value)

    def test_unknown_core_is_400(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.simulate(SOURCE, core="itanium")
        assert exc_info.value.status == 400

    def test_predict_unknown_core_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.predict(SOURCE, "z80")
        assert excinfo.value.status == 400

    def test_predict_needs_exactly_one_input(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.predict(SOURCE, "core2", workload="hash_bench")
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.predict(core="core2")
        assert excinfo.value.status == 400

    def test_predict_unanalyzable_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.predict(BAD_SOURCE, "core2")
        assert excinfo.value.status == 400

    def test_tune_unknown_core_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.tune(SOURCE, "z80")
        assert excinfo.value.status == 400

    def test_tune_needs_exactly_one_input(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.tune(SOURCE, "core2", workload="hash_bench")
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.tune(core="core2")
        assert excinfo.value.status == 400

    def test_tune_rejects_bad_search_params(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.tune(workload="mcf_fig1", core="core2", budget=-1)
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.tune(workload="mcf_fig1", core="core2",
                        n_select=0)
        assert excinfo.value.status == 400

    def test_tune_unanalyzable_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.tune(BAD_SOURCE, "core2")
        assert excinfo.value.status == 400

    def test_simulate_needs_exactly_one_input(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.simulate(SOURCE, core="core2", workload="hash_bench")
        assert exc_info.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.request("GET", "/v1/nonsense")
        assert exc_info.value.status == 404

    def test_bad_batch_inputs_is_400(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.request("POST", "/v1/batch", {"inputs": "not-a-list"})
        assert exc_info.value.status == 400


class TestLimitsAndBackends:
    def test_body_size_cap_is_413(self, tmp_path):
        config = ServerConfig(port=0, cache=False, max_body_bytes=512)
        with ServerThread(config) as handle:
            with Client(port=handle.port, retries=0) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.optimize("x" * 4096, None)
                assert exc_info.value.status == 413

    def test_request_timeout_is_504(self, tmp_path):
        config = ServerConfig(port=0, cache=False,
                              request_timeout_s=0.2, test_delay_s=1.0)
        with ServerThread(config) as handle:
            with Client(port=handle.port, retries=0) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.optimize(SOURCE, "REDTEST")
                assert exc_info.value.status == 504
                # The server must stay healthy after a timeout.
                assert client.healthz()["status"] == "ok"

    def test_process_backend_roundtrip(self, tmp_path):
        config = ServerConfig(port=0, parallel_backend="process",
                              max_inflight=2,
                              cache_dir=str(tmp_path / "cache"))
        with ServerThread(config) as handle:
            with Client(port=handle.port) as client:
                cold = client.optimize(SOURCE, "REDTEST")
                warm = client.optimize(SOURCE, "REDTEST")
                assert cold["cache"] == "miss"
                assert warm["cache"] == "hit"
                assert "testl" not in warm["asm"]

    def test_singleflight_coalesces_identical_requests(self, tmp_path):
        source = SOURCE.replace("f", "coalesce_me")
        config = ServerConfig(port=0, max_inflight=4, test_delay_s=0.4,
                              cache_dir=str(tmp_path / "cache"))
        results = []

        def worker():
            with Client(port=handle.port, retries=0) as client:
                results.append(client.optimize(source, "REDTEST"))

        with ServerThread(config) as handle:
            threads = [threading.Thread(target=worker) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        states = sorted(result["cache"] for result in results)
        assert states == ["coalesced", "miss"]
        assert results[0]["asm"] == results[1]["asm"]


class TestTracing:
    def test_request_spans_flushed_on_drain(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        config = ServerConfig(port=0, cache_dir=str(tmp_path / "cache"),
                              trace_out=trace_path)
        was_enabled = obs.set_enabled(True)
        obs.reset_tracer()
        try:
            with ServerThread(config) as handle:
                with Client(port=handle.port) as client:
                    client.optimize(SOURCE, "REDTEST",
                                    request_id="traced-1")
        finally:
            obs.set_enabled(was_enabled)
            obs.reset_tracer()
        assert os.path.exists(trace_path)
        with open(trace_path) as handle_:
            events = [json.loads(line) for line in handle_]
        spans = [e for e in events if e.get("type") == "span"
                 and e["name"] == "request:/v1/optimize"]
        assert spans, "no request span in the drained trace"
        span = next(s for s in spans
                    if s["attrs"].get("request_id") == "traced-1")
        assert span["attrs"]["status"] == 200
        assert span["attrs"]["cache"] in ("miss", "hit")
        # The worker's optimize subtree is adopted under the request.
        assert any(child["name"].startswith("optimize:")
                   for child in span["children"])
