"""The client's retry discipline, against a scripted one-shot server.

The fake accepts one connection per scripted behaviour: serve a canned
response, or slam the connection shut — which is exactly what a draining
or restarting real server looks like from the outside.
"""

import json
import random
import socket
import threading

import pytest

from repro.server.client import (
    Client,
    ServerBusy,
    ServerError,
    ServerUnavailable,
)


def canned(status, payload, headers=()):
    body = json.dumps(payload).encode()
    lines = ["HTTP/1.1 %d X" % status,
             "Content-Type: application/json",
             "Content-Length: %d" % len(body),
             "Connection: close"]
    lines.extend("%s: %s" % pair for pair in headers)
    return "\r\n".join(lines).encode() + b"\r\n\r\n" + body

RESET = object()     # script step: accept, then close without responding


class ScriptedServer:
    """Serve each script step to one connection, in order."""

    def __init__(self, script):
        self.script = list(script)
        self.served = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        for step in self.script:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            try:
                if step is RESET:
                    conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                    b"\x01\x00\x00\x00\x00\x00\x00\x00")
                    conn.close()
                    self.served += 1
                    continue
                conn.settimeout(5)
                data = b""
                while b"\r\n\r\n" not in data:
                    data += conn.recv(65536)
                head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
                length = 0
                for line in head.split("\r\n")[1:]:
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                body_so_far = data.split(b"\r\n\r\n", 1)[1]
                while len(body_so_far) < length:
                    body_so_far += conn.recv(65536)
                conn.sendall(step)
                self.served += 1
            finally:
                conn.close()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._sock.close()
        self._thread.join(timeout=5)


def canned_keepalive(payload):
    body = json.dumps(payload).encode()
    return ("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            "Content-Length: %d\r\nConnection: keep-alive\r\n\r\n"
            % len(body)).encode() + body


class KeepAliveServer:
    """Serve keep-alive responses, ``per_conn`` per accepted connection,
    counting accepts — the fake that pins connection reuse."""

    def __init__(self, per_conn=10 ** 9):
        self.per_conn = per_conn
        self.accepts = 0
        self.requests = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _read_request(self, conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return False
            data += chunk
        head, body = data.split(b"\r\n\r\n", 1)
        length = 0
        for line in head.decode("latin-1").split("\r\n")[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        while len(body) < length:
            body += conn.recv(65536)
        return True

    def _run(self):
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            self.accepts += 1
            try:
                conn.settimeout(10)
                for _ in range(self.per_conn):
                    if not self._read_request(conn):
                        break
                    self.requests += 1
                    conn.sendall(canned_keepalive({"ok": True}))
            except OSError:
                pass
            finally:
                conn.close()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._sock.close()
        self._thread.join(timeout=5)


class TestKeepAlive:
    def test_sequential_requests_share_one_connection(self):
        with KeepAliveServer() as server:
            with Client(port=server.port, retries=0) as client:
                for _ in range(5):
                    assert client.request("GET", "/healthz") \
                        == {"ok": True}
        assert server.accepts == 1
        assert server.requests == 5
        assert client.connects == 1
        assert client.stale_replays == 0

    def test_stale_keepalive_is_replayed_free_of_retry_budget(self):
        """The server closes each connection after one response (what a
        draining fleet worker does to idle sockets).  With retries=0 the
        next request still succeeds: a failure on a reused connection is
        replayed once on a fresh one without touching the budget."""
        with KeepAliveServer(per_conn=1) as server:
            with Client(port=server.port, retries=0,
                        backoff_s=0.01) as client:
                for _ in range(3):
                    assert client.request("GET", "/healthz") \
                        == {"ok": True}
        assert server.accepts == 3
        assert client.connects == 3
        assert client.stale_replays == 2
        assert client.retries_on_transport == 0


class TestRetries:
    def test_retries_503_until_success(self):
        script = [canned(503, {"error": "busy", "status": 503},
                         [("Retry-After", "0")])] * 2 \
            + [canned(200, {"asm": "done"})]
        with ScriptedServer(script) as server:
            client = Client(port=server.port, retries=4, backoff_s=0.01,
                            rng=random.Random(7))
            result = client.request("POST", "/v1/optimize", {"source": ""})
            client.close()
        assert result == {"asm": "done"}
        assert client.retries_on_busy == 2
        assert server.served == 3

    def test_busy_raised_after_budget_exhausted(self):
        script = [canned(503, {"error": "busy", "status": 503},
                         [("Retry-After", "0")])] * 3
        with ScriptedServer(script) as server:
            client = Client(port=server.port, retries=2, backoff_s=0.01,
                            rng=random.Random(7))
            with pytest.raises(ServerBusy):
                client.request("GET", "/healthz")
            client.close()
        assert server.served == 3

    def test_connection_reset_retried(self):
        script = [RESET, canned(200, {"ok": True})]
        with ScriptedServer(script) as server:
            client = Client(port=server.port, retries=3, backoff_s=0.01,
                            rng=random.Random(7))
            result = client.request("GET", "/healthz")
            client.close()
        assert result == {"ok": True}
        assert client.retries_on_transport >= 1

    def test_unavailable_after_transport_budget(self):
        script = [RESET] * 4
        with ScriptedServer(script) as server:
            client = Client(port=server.port, retries=3, backoff_s=0.01,
                            rng=random.Random(7))
            with pytest.raises(ServerUnavailable):
                client.request("GET", "/healthz")
            client.close()

    def test_4xx_never_retried(self):
        script = [canned(400, {"error": "bad", "status": 400})]
        with ScriptedServer(script) as server:
            client = Client(port=server.port, retries=5, backoff_s=0.01)
            with pytest.raises(ServerError) as exc_info:
                client.request("POST", "/v1/optimize", {})
            client.close()
        assert exc_info.value.status == 400
        assert server.served == 1
        assert client.retries_on_busy == 0


class TestBackoff:
    def test_backoff_is_jittered_and_bounded(self):
        client = Client(retries=0, backoff_s=0.1, max_backoff_s=0.8,
                        rng=random.Random(1234))
        slept = []
        import repro.server.client as mod
        original = mod.time.sleep
        mod.time.sleep = slept.append
        try:
            for attempt in range(6):
                client._sleep(attempt)
        finally:
            mod.time.sleep = original
        caps = [min(0.1 * (2 ** attempt), 0.8) for attempt in range(6)]
        assert all(0.0 <= delay <= cap
                   for delay, cap in zip(slept, caps) if delay)
        # Full jitter: the delays must not all sit at the cap.
        assert len(set(slept)) > 1

    def test_retry_after_is_a_floor(self):
        client = Client(retries=0, backoff_s=0.001,
                        rng=random.Random(1))
        slept = []
        import repro.server.client as mod
        original = mod.time.sleep
        mod.time.sleep = slept.append
        try:
            client._sleep(0, floor_s=0.7)
        finally:
            mod.time.sleep = original
        assert slept and slept[0] >= 0.7
