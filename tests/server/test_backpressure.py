"""The backpressure and drain contract, verified end to end.

Acceptance criteria: under overload (admitted > max_inflight +
max_queue) the server answers 503 with a ``Retry-After`` header and
**never drops an accepted request** — every admitted request ends in a
real response, including across a graceful drain.
"""

import http.client
import json
import threading
import time

import pytest

from repro.server import Client, ServerBusy, ServerConfig, ServerThread

SOURCE_TMPL = """
.text
.globl f%d
f%d:
    subl $16, %%r15d
    testl %%r15d, %%r15d
    ret
"""


def overload_config(**overrides):
    defaults = dict(port=0, cache=False, max_inflight=1, max_queue=1,
                    workers=1, test_delay_s=0.5, retry_after_s=0.05)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestBackpressure:
    def test_overload_rejects_with_retry_after_and_drops_nothing(self):
        """Four distinct concurrent requests against capacity 2: the
        overflow is shed with 503 + Retry-After, and every admitted
        request completes with its correct result."""
        outcomes = {}

        def worker(index, port):
            with Client(port=port, retries=0) as client:
                try:
                    result = client.optimize(SOURCE_TMPL % (index, index),
                                             "REDTEST")
                    outcomes[index] = ("ok", result)
                except ServerBusy as exc:
                    outcomes[index] = ("busy", exc.payload)

        with ServerThread(overload_config()) as handle:
            threads = [threading.Thread(target=worker,
                                        args=(i, handle.port))
                       for i in range(4)]
            for thread in threads:
                thread.start()
                time.sleep(0.02)   # deterministic arrival order
            for thread in threads:
                thread.join()

        statuses = [status for status, _ in outcomes.values()]
        assert statuses.count("busy") >= 1, "overload never shed load"
        assert statuses.count("ok") >= 2, "admitted requests were lost"
        for index, (status, payload) in outcomes.items():
            if status == "ok":
                # The response is the right one, not another request's.
                assert ("f%d" % index) in payload["asm"]
                assert "testl" not in payload["asm"]
            else:
                assert payload.get("status") == 503

    def test_503_carries_retry_after_header(self):
        with ServerThread(overload_config(max_queue=0)) as handle:
            blocker = threading.Thread(
                target=lambda: Client(port=handle.port, retries=0)
                .optimize(SOURCE_TMPL % (0, 0), "REDTEST"))
            blocker.start()
            time.sleep(0.1)        # let the blocker occupy the only slot
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=10)
            body = json.dumps({"source": SOURCE_TMPL % (1, 1),
                               "spec": "REDTEST"})
            conn.request("POST", "/v1/optimize", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
            try:
                assert response.status == 503
                assert response.headers.get("Retry-After") is not None
                assert json.loads(raw)["status"] == 503
            finally:
                conn.close()
                blocker.join()

    def test_healthz_and_metrics_still_served_under_overload(self):
        """Observability must not sit behind the admission queue: a
        saturated worker pool cannot blind the operator."""
        with ServerThread(overload_config(max_queue=0)) as handle:
            blocker = threading.Thread(
                target=lambda: Client(port=handle.port, retries=0)
                .optimize(SOURCE_TMPL % (7, 7), "REDTEST"))
            blocker.start()
            time.sleep(0.1)
            try:
                with Client(port=handle.port, retries=0) as client:
                    health = client.healthz()
                    assert health["status"] == "ok"
                    assert health["inflight"] == 1
                    assert health["queue_depth"] == 0
                    metrics = client.metrics()
                    assert metrics["type"] == "metrics"
                    # The registry gauges mirror the live admission
                    # numbers — the fleet's merged /metrics sums these.
                    assert metrics["values"]["server.inflight"] == 1
                    assert metrics["values"]["server.queue_depth"] == 0
            finally:
                blocker.join()

    def test_client_retry_rides_out_backpressure(self):
        """With a retry budget, a shed client eventually lands: the
        jittered-backoff loop turns 503s into a delayed success."""
        with ServerThread(overload_config(max_queue=0,
                                          test_delay_s=0.2)) as handle:
            results = []

            def worker(index):
                with Client(port=handle.port, retries=8,
                            backoff_s=0.05) as client:
                    results.append(
                        client.optimize(SOURCE_TMPL % (index, index),
                                        "REDTEST"))

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(results) == 3
            assert all("testl" not in r["asm"] for r in results)


class TestDrain:
    def test_inflight_request_survives_drain(self):
        """SIGTERM semantics: an admitted request finishes with a real
        response while the server refuses new work and shuts down."""
        outcome = {}

        def slow_request(port):
            with Client(port=port, retries=0) as client:
                outcome["result"] = client.optimize(
                    SOURCE_TMPL % (3, 3), "REDTEST")

        handle = ServerThread(overload_config(test_delay_s=0.6))
        with handle:
            worker = threading.Thread(target=slow_request,
                                      args=(handle.port,))
            worker.start()
            time.sleep(0.2)        # request is admitted and executing
            handle.stop()          # drain: finish inflight, then exit
            worker.join()
        assert "result" in outcome, "inflight request was dropped on drain"
        assert "testl" not in outcome["result"]["asm"]

    def test_draining_server_rejects_new_work_with_503(self):
        handle = ServerThread(overload_config(test_delay_s=0.8))
        with handle:
            blocker = threading.Thread(
                target=lambda: Client(port=handle.port, retries=0)
                .optimize(SOURCE_TMPL % (5, 5), "REDTEST"))
            blocker.start()
            time.sleep(0.2)
            # Trigger the drain without waiting for it to finish, then
            # race a new request in over the still-open connection.
            handle._loop.call_soon_threadsafe(
                handle.server.request_drain)
            time.sleep(0.05)
            with Client(port=handle.port, retries=0) as client:
                with pytest.raises((ServerBusy, Exception)) as exc_info:
                    client.optimize(SOURCE_TMPL % (6, 6), "REDTEST")
            blocker.join()
        # Depending on timing the listener may already be closed
        # (connection refused) or the request is answered 503 draining;
        # both satisfy "stop accepting new work".
        if isinstance(exc_info.value, ServerBusy):
            assert exc_info.value.payload.get("error") == "draining"
