"""The consistent-hash ring: the three properties the fleet leans on —
cross-process determinism, routing affinity, and bounded key movement
on membership change."""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.ring import DEFAULT_REPLICAS, HashRing, hash_key

KEYS = ["key-%03d" % i for i in range(200)]


class TestDeterminism:
    def test_route_is_stable_within_a_process(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in KEYS:
            assert ring.route(key) == ring.route(key)

    @pytest.mark.parametrize("hashseed", ["0", "31337"])
    def test_route_agrees_across_processes(self, hashseed):
        """A fresh interpreter with a different PYTHONHASHSEED routes
        every key identically — placement never depends on hash()."""
        script = (
            "import json, sys\n"
            "from repro.server.ring import HashRing\n"
            "ring = HashRing(['w0', 'w1', 'w2', 'w3'])\n"
            "keys = ['key-%03d' % i for i in range(200)]\n"
            "json.dump({k: ring.route(k) for k in keys}, sys.stdout)\n")
        import repro
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": hashseed})
        remote = json.loads(out.stdout)
        ring = HashRing(["w0", "w1", "w2", "w3"])
        assert remote == {key: ring.route(key) for key in KEYS}

    def test_membership_order_is_irrelevant(self):
        forward = HashRing(["w0", "w1", "w2", "w3"])
        backward = HashRing(["w3", "w2", "w1", "w0"])
        for key in KEYS:
            assert forward.route(key) == backward.route(key)

    def test_hash_key_is_64bit_and_deterministic(self):
        assert hash_key("a") == hash_key("a")
        assert hash_key("a") != hash_key("b")
        assert 0 <= hash_key("anything") < 2 ** 64


members_strategy = st.integers(min_value=2, max_value=8).map(
    lambda n: ["w%d" % i for i in range(n)])
keys_strategy = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=50)


class TestBoundedMovement:
    @settings(max_examples=50, deadline=None)
    @given(members=members_strategy, keys=keys_strategy,
           data=st.data())
    def test_remove_only_reassigns_the_removed_members_keys(
            self, members, keys, data):
        ring = HashRing(members)
        before = {key: ring.route(key) for key in keys}
        victim = data.draw(st.sampled_from(members))
        ring.remove(victim)
        for key in keys:
            after = ring.route(key)
            if before[key] != victim:
                # Keys never shuffle between survivors.
                assert after == before[key]
            else:
                assert after != victim

    @settings(max_examples=50, deadline=None)
    @given(members=members_strategy, keys=keys_strategy)
    def test_add_only_steals_keys_for_the_new_member(
            self, members, keys):
        ring = HashRing(members)
        before = {key: ring.route(key) for key in keys}
        ring.add("w-new")
        for key in keys:
            after = ring.route(key)
            assert after == before[key] or after == "w-new"

    @settings(max_examples=30, deadline=None)
    @given(members=members_strategy, keys=keys_strategy,
           data=st.data())
    def test_remove_then_readd_restores_placement(self, members, keys,
                                                  data):
        """The fleet's rolling restart: the replacement worker keeps
        the slot id, so it re-inherits exactly its old ring segment."""
        ring = HashRing(members)
        before = {key: ring.route(key) for key in keys}
        victim = data.draw(st.sampled_from(members))
        ring.remove(victim)
        ring.add(victim)
        assert before == {key: ring.route(key) for key in keys}


class TestPreference:
    def test_preference_starts_at_the_owner(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert order[0] == ring.route(key)
            assert sorted(order) == ["w0", "w1", "w2"]

    def test_preference_on_empty_ring_is_empty(self):
        assert HashRing().preference("k") == []


class TestEdges:
    def test_empty_ring_raises_lookup_error(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.route("k")
        assert ring.route_or_none("k") is None

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["w0"])
        ring.add("w0")
        assert len(ring) == 1
        assert ring.describe()["points"] == DEFAULT_REPLICAS
        ring.remove("absent")
        ring.remove("w0")
        ring.remove("w0")
        assert len(ring) == 0

    def test_load_is_roughly_balanced(self):
        ring = HashRing(["w%d" % i for i in range(4)])
        counts = {}
        for i in range(4000):
            counts[ring.route("key-%d" % i)] = \
                counts.get(ring.route("key-%d" % i), 0) + 1
        assert len(counts) == 4
        # 128 vnodes/member keeps skew loose but real: no member owns
        # more than half or less than a tenth of a uniform keyspace.
        assert max(counts.values()) < 2000
        assert min(counts.values()) > 400
