"""Fleet routing of ``/v1/profile``: profile affinity = cache affinity,
and the profile store survives rolling restarts."""

import json
import uuid

import pytest

from repro.pgo import build_profile
from repro.server import FleetConfig, FleetThread
from repro.workloads.kernels import hash_bench

from tests.server.test_fleet import raw_request


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    config = FleetConfig(
        port=0, workers=2, worker_inflight=1, max_queue=32,
        cache_dir=str(tmp_path_factory.mktemp("fleet-pgo-cache")),
        cache_salt="fleet-pgo-%s" % uuid.uuid4().hex,
        profile_dir=str(tmp_path_factory.mktemp("fleet-pgo-profiles")))
    with FleetThread(config) as handle:
        yield handle


class TestProfileRouting:
    def test_profile_ingest_shares_the_tune_worker(self, fleet):
        """The worker that ingests an input's profile is the one holding
        its warm tune prefixes: both routes hash the input digest."""
        source = hash_bench()
        document = build_profile(source, period=211, seed=4)
        _s, tune_headers, _ = raw_request(
            fleet.port, "POST", "/v1/tune",
            {"source": source, "core": "core2", "budget": 8})
        status, profile_headers, payload = raw_request(
            fleet.port, "POST", "/v1/profile", {"profile": document})
        assert status == 200
        assert payload["found"] is True
        assert profile_headers["X-Worker"] == tune_headers["X-Worker"]

    def test_repeated_ingests_land_on_one_worker(self, fleet):
        document = build_profile(hash_bench(), period=307, seed=4)
        seen = set()
        for _ in range(4):
            _s, headers, _ = raw_request(fleet.port, "POST", "/v1/profile",
                                         {"profile": document})
            seen.add(headers["X-Worker"])
        assert len(seen) == 1

    def test_lookup_routes_like_ingest(self, fleet):
        document = build_profile(hash_bench(), period=401, seed=4)
        _s, ingest_headers, _ = raw_request(
            fleet.port, "POST", "/v1/profile", {"profile": document})
        _s, lookup_headers, payload = raw_request(
            fleet.port, "POST", "/v1/profile",
            {"digest": document["digest"]})
        assert lookup_headers["X-Worker"] == ingest_headers["X-Worker"]
        assert payload["found"] is True


class TestRoutingKeyUnit:
    """routing_key contract for /v1/profile — no sockets."""

    @staticmethod
    def _front_door():
        from repro.server.fleet import FleetServer
        return FleetServer(FleetConfig(port=0, workers=1,
                                       cache_salt="rk-pgo-test"))

    @staticmethod
    def _request(path, payload):
        from repro.server.http import Request
        return Request(method="POST", path=path, version="HTTP/1.1",
                       body=json.dumps(payload).encode())

    def test_profile_key_equals_tune_key_for_the_same_input(self):
        source = hash_bench()
        document = build_profile(source, period=211, seed=4)
        door = self._front_door()
        tune_key = door.routing_key(self._request(
            "/v1/tune", {"source": source, "core": "core2"}))
        ingest_key = door.routing_key(self._request(
            "/v1/profile", {"profile": document}))
        lookup_key = door.routing_key(self._request(
            "/v1/profile", {"digest": document["digest"]}))
        assert ingest_key == tune_key
        assert lookup_key == tune_key
        assert ingest_key.startswith("input\x00")

    def test_unparsable_profile_body_falls_back_to_body_hash(self):
        from repro.server.http import Request
        door = self._front_door()
        key = door.routing_key(Request(method="POST", path="/v1/profile",
                                       version="HTTP/1.1",
                                       body=b"\xff not json"))
        assert key.startswith("body\x00/v1/profile\x00")


class TestRestartPersistence:
    def test_rolling_restart_preserves_the_profile_store(self, fleet):
        """Ingest before the restart, read back after it: the replacement
        worker generation opens the same on-disk store."""
        document = build_profile(hash_bench(), period=503, seed=6,
                                 weight=987.0)
        _s, _h, stored = raw_request(fleet.port, "POST", "/v1/profile",
                                     {"profile": document})
        epoch_before = stored["profile"]["epoch"]
        status, _h, report = raw_request(fleet.port, "POST",
                                         "/admin/restart", {})
        assert status == 200
        assert [w["member"] for w in report["restarted"]] == ["w0", "w1"]
        _s, _h, after = raw_request(fleet.port, "POST", "/v1/profile",
                                    {"digest": document["digest"]})
        assert after["found"] is True
        assert after["profile"]["weight"] == 987.0
        assert after["profile"]["epoch"] == epoch_before
