"""The fleet front door, against real worker subprocesses.

What must hold: routing affinity (identical requests land on one
worker), cross-instance cache coherence (a put by one worker/process is
a hit for every other one sharing the store), aggregated ``/healthz`` /
``/metrics``, and rolling restarts that drop zero admitted requests.
"""

import http.client
import json
import threading
import uuid

import pytest

from repro.server import (
    Client,
    FleetConfig,
    FleetThread,
    ServerConfig,
    ServerThread,
)
from repro.server.fleet import merge_metric_values

SOURCE = """\
.text
.globl main
main:
  movq $0, %rax
loop:
  addq $1, %rax
  cmpq $16, %rax
  jl loop
  ret
"""


def raw_request(port, method, path, payload=None):
    """One request via http.client, returning (status, headers, body) —
    the tests need response headers (X-Worker), which Client hides."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), \
            json.loads(raw.decode())
    finally:
        conn.close()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    config = FleetConfig(
        port=0, workers=2, worker_inflight=1, max_queue=32,
        cache_dir=str(tmp_path_factory.mktemp("fleet-cache")),
        cache_salt="fleet-test-%s" % uuid.uuid4().hex)
    with FleetThread(config) as handle:
        yield handle


class TestHealthAggregation:
    def test_healthz_reports_every_worker_and_the_ring(self, fleet):
        status, headers, payload = raw_request(fleet.port, "GET",
                                               "/healthz")
        assert status == 200
        assert payload["schema"] == "pymao.fleet/1"
        assert payload["status"] == "ok"
        assert [w["member"] for w in payload["workers"]] == ["w0", "w1"]
        for worker in payload["workers"]:
            assert worker["state"] == "live"
            assert worker["health"]["status"] == "ok"
            assert worker["health"]["inflight"] == 0
            assert worker["health"]["queue_depth"] == 0
        assert payload["inflight"] == 0
        assert payload["queue_depth"] == 0
        assert payload["capacity"] == 2 * 1 + 32
        assert payload["ring"]["members"] == ["w0", "w1"]

    def test_unknown_route_is_404(self, fleet):
        status, _headers, payload = raw_request(fleet.port, "GET",
                                                "/nope")
        assert status == 404
        assert payload["status"] == 404


class TestRoutingAffinity:
    def test_identical_requests_land_on_one_worker(self, fleet):
        seen = set()
        for _ in range(4):
            status, headers, payload = raw_request(
                fleet.port, "POST", "/v1/optimize",
                {"source": SOURCE, "spec": "LOOP16"})
            assert status == 200
            seen.add(headers["X-Worker"])
        assert len(seen) == 1
        assert seen <= {"w0", "w1"}

    def test_first_request_misses_then_hits(self, fleet):
        body = {"source": SOURCE + "# affinity\n", "spec": "LOOP16"}
        _s, _h, first = raw_request(fleet.port, "POST", "/v1/optimize",
                                    body)
        _s, _h, second = raw_request(fleet.port, "POST", "/v1/optimize",
                                     body)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"

    def test_tune_routes_by_input_digest(self, fleet):
        """Tune-by-name and tune-by-text of the same kernel must land
        on one worker — and the second must replay the first's
        prefixes from the shared store with zero executions."""
        from repro.workloads.kernels import fig4_loop

        by_name = {"workload": "fig4_loop", "core": "core2",
                   "budget": 16}
        by_text = {"source": fig4_loop(), "core": "core2", "budget": 16}
        status_a, headers_a, cold = raw_request(
            fleet.port, "POST", "/v1/tune", by_name)
        status_b, headers_b, warm = raw_request(
            fleet.port, "POST", "/v1/tune", by_text)
        assert status_a == 200 and status_b == 200
        assert headers_a["X-Worker"] == headers_b["X-Worker"]
        assert warm["tune"]["pass_runs"]["cache_hits"] > 0
        assert cold["tune"]["schema"] == "pymao.tune/1"

    def test_metrics_merge_worker_and_front_door_views(self, fleet):
        _s, _h, event = raw_request(fleet.port, "GET", "/metrics")
        assert event["schema"] == "pymao.trace/1"
        assert event["workers"] == 2
        values = event["values"]
        assert values["fleet.forwarded"] >= 1
        # Worker-side counters survive the merge: the optimize calls
        # above executed inside the worker subprocesses.
        assert values["server.requests"] >= 1


class TestRollingRestart:
    def test_restart_preserves_cache_across_generations(self, fleet):
        body = {"source": SOURCE + "# restart\n", "spec": "LOOP16"}
        _s, _h, first = raw_request(fleet.port, "POST", "/v1/optimize",
                                    body)
        assert first["cache"] == "miss"
        status, _h, report = raw_request(fleet.port, "POST",
                                         "/admin/restart", {})
        assert status == 200
        assert [w["member"] for w in report["restarted"]] == ["w0", "w1"]
        assert all(w["generation"] == 2 for w in report["restarted"])
        assert report["ring"]["members"] == ["w0", "w1"]
        # The replacement processes share the store: cross-instance
        # coherence makes the old generation's put their hit.
        _s, _h, again = raw_request(fleet.port, "POST", "/v1/optimize",
                                    body)
        assert again["cache"] == "hit"

    def test_restart_rejects_bad_slot(self, fleet):
        status, _h, payload = raw_request(fleet.port, "POST",
                                          "/admin/restart",
                                          {"worker": 7})
        assert status == 400
        assert "slot index" in payload["error"]


class TestZeroDropUnderRestart:
    def test_admitted_requests_survive_a_rolling_restart(
            self, tmp_path_factory):
        """Clients with a zero retry budget see zero failures while
        every worker is restarted mid-stream."""
        config = FleetConfig(
            port=0, workers=2, worker_inflight=1, max_queue=64,
            worker_test_delay_s=0.05,
            cache_dir=str(tmp_path_factory.mktemp("fleet-drop")),
            cache_salt="fleet-drop-%s" % uuid.uuid4().hex)
        failures = []
        results = []

        def worker_thread(index):
            client = Client(port=fleet.port, retries=0, timeout=60)
            try:
                for step in range(6):
                    body = {"source": SOURCE + "# t%d s%d\n"
                            % (index, step), "spec": "LOOP16"}
                    results.append(client.request(
                        "POST", "/v1/optimize", body))
            except Exception as exc:   # any client-visible failure
                failures.append(repr(exc))
            finally:
                client.close()

        with FleetThread(config) as fleet:
            threads = [threading.Thread(target=worker_thread, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            status, _h, report = raw_request(fleet.port, "POST",
                                             "/admin/restart", {})
            for thread in threads:
                thread.join(timeout=120)
            assert status == 200
        assert failures == []
        assert len(results) == 24
        assert all(r["cache"] in ("miss", "hit") for r in results)


class TestCrossInstanceCoherence:
    def test_two_servers_sharing_a_store_share_artifacts(self, tmp_path):
        """The coherence contract the fleet is built on, at the level of
        two independent server instances: a put by A is a hit for B."""
        shared = dict(cache_dir=str(tmp_path / "store"),
                      cache_salt="coherence-%s" % uuid.uuid4().hex)
        with ServerThread(ServerConfig(port=0, **shared)) as a:
            with Client(port=a.port) as client:
                first = client.optimize(SOURCE, "LOOP16")
        with ServerThread(ServerConfig(port=0, **shared)) as b:
            with Client(port=b.port) as client:
                second = client.optimize(SOURCE, "LOOP16")
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert second["asm"] == first["asm"]


class TestRoutingKey:
    """Unit-level contract of FleetServer.routing_key — no sockets."""

    @staticmethod
    def _front_door():
        from repro.server.fleet import FleetServer
        return FleetServer(FleetConfig(port=0, workers=1,
                                       cache_salt="rk-test"))

    @staticmethod
    def _request(path, payload):
        from repro.server.http import Request
        return Request(method="POST", path=path, version="HTTP/1.1",
                       body=json.dumps(payload).encode())

    def test_tune_key_is_input_digest_only(self):
        """Different search parameters over one input share a key (one
        worker owns that input's prefixes); by-name and by-text of the
        same kernel share it too."""
        from repro.workloads.kernels import hash_bench

        door = self._front_door()
        a = door.routing_key(self._request(
            "/v1/tune", {"workload": "hash_bench", "core": "core2"}))
        b = door.routing_key(self._request(
            "/v1/tune", {"source": hash_bench(), "core": "opteron",
                         "budget": 99}))
        assert a == b
        assert a.startswith("input\x00")

    def test_tune_key_differs_per_input(self):
        door = self._front_door()
        a = door.routing_key(self._request(
            "/v1/tune", {"workload": "hash_bench", "core": "core2"}))
        b = door.routing_key(self._request(
            "/v1/tune", {"workload": "mcf_fig1", "core": "core2"}))
        assert a != b

    def test_unparsable_tune_body_falls_back_to_body_hash(self):
        door = self._front_door()
        from repro.server.http import Request
        key = door.routing_key(Request(method="POST", path="/v1/tune",
                                       version="HTTP/1.1",
                                       body=b"\xff not json"))
        assert key.startswith("body\x00/v1/tune\x00")


class TestMetricsMerge:
    def test_counters_sum_and_summary_components_keep_meaning(self):
        merged = merge_metric_values([
            {"server.requests": 3, "server.inflight": 1,
             "wall.min": 0.2, "wall.max": 1.0, "wall.count": 2,
             "wall.sum": 1.2, "wall.mean": 0.6},
            {"server.requests": 5, "server.inflight": 0,
             "wall.min": 0.1, "wall.max": 3.0, "wall.count": 2,
             "wall.sum": 3.1, "wall.mean": 1.55},
        ])
        assert merged["server.requests"] == 8
        assert merged["server.inflight"] == 1
        assert merged["wall.min"] == 0.1
        assert merged["wall.max"] == 3.0
        assert merged["wall.count"] == 4
        assert merged["wall.sum"] == pytest.approx(4.3)
        assert merged["wall.mean"] == pytest.approx(4.3 / 4)

    def test_non_numeric_values_are_dropped(self):
        assert merge_metric_values([{"a": 1, "b": "x", "c": True}]) \
            == {"a": 1}
