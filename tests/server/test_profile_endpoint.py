"""``POST /v1/profile`` on a single MaoServer instance."""

import pytest

from repro.pgo import PROFILE_SCHEMA, ProfileStore, build_profile
from repro.server import Client, ServerConfig, ServerThread
from repro.workloads.kernels import fig4_loop


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServerConfig(
        port=0, cache=False,
        profile_dir=str(tmp_path_factory.mktemp("profiles")))
    with ServerThread(config) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(server):
    with Client(port=server.port) as handle:
        yield handle


def make_doc(weight=None):
    return build_profile(fig4_loop(), period=97, seed=2, weight=weight)


class TestIngest:
    def test_ingest_returns_the_stored_entry(self, client):
        out = client.profile(make_doc(weight=111.0))
        assert out["schema"] == "pymao.server/1"
        assert out["found"] is True
        stored = out["profile"]
        assert stored["schema"] == PROFILE_SCHEMA
        assert stored["weight"] == 111.0
        assert stored["epoch"] >= 1

    def test_reingest_same_weight_keeps_the_epoch(self, client):
        doc = make_doc(weight=222.0)
        first = client.profile(doc)["profile"]["epoch"]
        second = client.profile(doc)["profile"]["epoch"]
        assert second == first

    def test_weight_change_bumps_the_epoch_over_http(self, client):
        before = client.profile(make_doc(weight=333.0))["profile"]["epoch"]
        after = client.profile(make_doc(weight=444.0))["profile"]["epoch"]
        assert after == before + 1

    def test_ingest_lands_in_the_configured_store(self, server, client):
        doc = make_doc(weight=555.0)
        client.profile(doc)
        store = ProfileStore(server.config.profile_dir)
        assert store.get(doc["digest"]).weight == 555.0


class TestLookup:
    def test_lookup_by_digest(self, client):
        doc = make_doc(weight=666.0)
        client.profile(doc)
        out = client.profile(digest=doc["digest"])
        assert out["found"] is True
        assert out["profile"]["weight"] == 666.0

    def test_absent_digest_reports_not_found(self, client):
        out = client.profile(digest="0" * 64)
        assert out["found"] is False
        assert out["profile"] is None


class TestValidation:
    def test_neither_field_is_a_400(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError):
            client.request("POST", "/v1/profile", {})

    def test_both_fields_is_a_400(self, client):
        from repro.server.client import ServerError

        doc = make_doc()
        with pytest.raises(ServerError):
            client.request("POST", "/v1/profile",
                           {"profile": doc, "digest": doc["digest"]})

    def test_malformed_document_is_a_400_not_a_500(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.profile({"schema": PROFILE_SCHEMA, "digest": "nope",
                            "weight": 1})
        assert excinfo.value.status == 400
