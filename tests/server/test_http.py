"""Unit tests for the HTTP/1.1 framing layer (repro.server.http)."""

import asyncio
import json

import pytest

from repro.server.http import (
    MAX_HEADER_BYTES,
    ProtocolError,
    parse_response,
    read_request,
    render_json,
    render_response,
)


def parse(raw: bytes, max_body_bytes: int = 1024 * 1024):
    """Feed raw bytes through a real StreamReader and parse one request."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_roundtrip(self):
        request = parse(b"GET /healthz HTTP/1.1\r\n"
                        b"Host: localhost\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "localhost"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = json.dumps({"source": ".text"}).encode()
        request = parse(b"POST /v1/optimize HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + b"Content-Length: %d\r\n\r\n" % len(body)
                        + body)
        assert request.method == "POST"
        assert request.json() == {"source": ".text"}

    def test_query_string_stripped(self):
        request = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/metrics"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_http10_defaults_to_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not request.keep_alive

    def test_connection_close_honoured(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse(b"NOT-HTTP\r\n\r\n")
        assert exc_info.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert exc_info.value.status == 400

    def test_post_without_length_is_411(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse(b"POST /v1/optimize HTTP/1.1\r\n\r\n")
        assert exc_info.value.status == 411

    def test_body_over_cap_is_413_before_reading(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
                  max_body_bytes=100)
        assert exc_info.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert exc_info.value.status == 400

    def test_chunked_is_501(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert exc_info.value.status == 501

    def test_oversized_headers_rejected(self):
        pad = b"X-Pad: " + b"a" * 1000 + b"\r\n"
        huge = (b"GET / HTTP/1.1\r\n"
                + pad * ((MAX_HEADER_BYTES // len(pad)) + 2) + b"\r\n")
        with pytest.raises(ProtocolError) as exc_info:
            parse(huge)
        assert exc_info.value.status == 431

    def test_bad_json_body_raises_400(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        with pytest.raises(ProtocolError) as exc_info:
            request.json()
        assert exc_info.value.status == 400


class TestRenderResponse:
    def test_roundtrip(self):
        raw = render_response(200, b'{"x": 1}')
        status, headers, body = parse_response(raw)
        assert status == 200
        assert headers["content-length"] == "8"
        assert headers["connection"] == "keep-alive"
        assert body == b'{"x": 1}'

    def test_close_and_extra_headers(self):
        raw = render_json(503, {"error": "busy"}, keep_alive=False,
                          headers={"Retry-After": "1"})
        status, headers, body = parse_response(raw)
        assert status == 503
        assert headers["connection"] == "close"
        assert headers["retry-after"] == "1"
        assert json.loads(body.decode()) == {"error": "busy"}
