"""Tests for Havlak loop detection."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import build_lsg
from repro.ir import parse_unit


def lsg_of(source):
    unit = parse_unit(source)
    cfg = build_cfg(unit.functions[0], unit)
    return cfg, build_lsg(cfg)


class TestSimpleLoops:
    def test_no_loops(self):
        cfg, lsg = lsg_of(".text\nf:\n    nop\n    ret\n")
        assert len(lsg) == 0

    def test_self_loop(self):
        cfg, lsg = lsg_of("""
.text
f:
.Ltop:
    subl $1, %eax
    jne .Ltop
    ret
""")
        assert len(lsg) == 1
        loop = lsg.non_root_loops()[0]
        assert loop.is_reducible
        assert loop.header is cfg.label_to_block[".Ltop"]

    def test_multi_block_loop(self):
        cfg, lsg = lsg_of("""
.text
f:
.Lhead:
    testl %eax, %eax
    je .Lexit
    subl $1, %eax
    jmp .Lhead
.Lexit:
    ret
""")
        assert len(lsg) == 1
        loop = lsg.non_root_loops()[0]
        assert len(loop.all_blocks()) == 2

    def test_two_sibling_loops(self):
        cfg, lsg = lsg_of("""
.text
f:
.L1:
    subl $1, %eax
    jne .L1
.L2:
    subl $1, %ebx
    jne .L2
    ret
""")
        loops = lsg.non_root_loops()
        assert len(loops) == 2
        assert all(l.parent is lsg.root for l in loops)
        assert all(l.depth() == 0 for l in loops)


class TestNesting:
    NESTED = """
.text
f:
.Louter:
    movl $10, %ecx
.Linner:
    subl $1, %ecx
    jne .Linner
    subl $1, %eax
    jne .Louter
    ret
"""

    def test_two_deep_nest(self):
        cfg, lsg = lsg_of(self.NESTED)
        loops = lsg.non_root_loops()
        assert len(loops) == 2
        inner = [l for l in loops if l.depth() == 1]
        outer = [l for l in loops if l.depth() == 0]
        assert len(inner) == 1 and len(outer) == 1
        assert inner[0].parent is outer[0]

    def test_inner_loops_query(self):
        cfg, lsg = lsg_of(self.NESTED)
        inner = lsg.inner_loops()
        assert len(inner) == 1
        assert inner[0].header is cfg.label_to_block[".Linner"]

    def test_all_blocks_includes_children(self):
        cfg, lsg = lsg_of(self.NESTED)
        outer = [l for l in lsg.non_root_loops() if l.depth() == 0][0]
        inner_header = cfg.label_to_block[".Linner"]
        assert inner_header in outer.all_blocks()

    def test_three_deep_nest(self):
        cfg, lsg = lsg_of("""
.text
f:
.La:
    movl $5, %ebx
.Lb:
    movl $5, %ecx
.Lc:
    subl $1, %ecx
    jne .Lc
    subl $1, %ebx
    jne .Lb
    subl $1, %eax
    jne .La
    ret
""")
        depths = sorted(l.depth() for l in lsg.non_root_loops())
        assert depths == [0, 1, 2]


class TestIrreducible:
    IRREDUCIBLE = """
.text
f:
    testl %eax, %eax
    je .Lb
.La:
    subl $1, %eax
    jmp .Lb_body
.Lb:
    subl $1, %ebx
.Lb_body:
    testl %ebx, %ebx
    jne .La
    ret
"""

    def test_irreducible_detected(self):
        """Two entry points into one cycle: classic irreducible shape.

        The paper: "The algorithm allows distinguishing between reducible
        and irreducible loops"."""
        cfg, lsg = lsg_of(self.IRREDUCIBLE)
        assert any(not l.is_reducible for l in lsg.non_root_loops())

    def test_reducible_not_misflagged(self):
        cfg, lsg = lsg_of("""
.text
f:
.Ltop:
    subl $1, %eax
    jne .Ltop
    ret
""")
        assert all(l.is_reducible for l in lsg.non_root_loops())
