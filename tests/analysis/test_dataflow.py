"""Tests for reaching definitions and liveness."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    FLAG_PREFIX,
    Liveness,
    ReachingDefinitions,
    flag_loc,
    location_defs,
    location_uses,
)
from repro.ir import parse_unit
from repro.x86.parser import parse_instruction


def analysis_of(source):
    unit = parse_unit(source)
    cfg = build_cfg(unit.functions[0], unit)
    return unit, cfg


class TestLocations:
    def test_uses_include_flags(self):
        insn = parse_instruction("je .L").insn
        assert flag_loc("ZF") in location_uses(insn)

    def test_defs_include_undefined_flags(self):
        insn = parse_instruction("imull %ecx, %eax").insn
        assert flag_loc("ZF") in location_defs(insn)

    def test_register_aliasing(self):
        insn = parse_instruction("movl $1, %eax").insn
        assert "rax" in location_defs(insn)


class TestReachingDefinitions:
    def test_straight_line_unique_def(self):
        unit, cfg = analysis_of("""
.text
f:
    movl $1, %eax
    movl %eax, %ebx
    ret
""")
        entries = cfg.entry.entries
        rd = ReachingDefinitions(cfg)
        defs = rd.reaching_defs(entries[1], "rax")
        assert defs == [entries[0]]
        assert rd.unique_reaching_def(entries[1], "rax") is entries[0]

    def test_local_def_shadows(self):
        unit, cfg = analysis_of("""
.text
f:
    movl $1, %eax
    movl $2, %eax
    movl %eax, %ebx
    ret
""")
        entries = cfg.entry.entries
        rd = ReachingDefinitions(cfg)
        assert rd.reaching_defs(entries[2], "rax") == [entries[1]]

    def test_merge_yields_two_defs(self):
        unit, cfg = analysis_of("""
.text
f:
    je .Lalt
    movl $1, %eax
    jmp .Ljoin
.Lalt:
    movl $2, %eax
.Ljoin:
    movl %eax, %ebx
    ret
""")
        rd = ReachingDefinitions(cfg)
        join = cfg.label_to_block[".Ljoin"]
        use = join.entries[0]
        assert len(rd.reaching_defs(use, "rax")) == 2
        assert rd.unique_reaching_def(use, "rax") is None

    def test_call_kills_caller_saved(self):
        unit, cfg = analysis_of("""
.text
f:
    movl $1, %eax
    call g
    movl %eax, %ebx
    ret
""")
        rd = ReachingDefinitions(cfg)
        entries = cfg.entry.entries
        defs = rd.reaching_defs(entries[2], "rax")
        assert defs == [entries[1]]     # the call, not the mov


class TestLiveness:
    def test_use_makes_live(self):
        unit, cfg = analysis_of("""
.text
f:
    movl $1, %ecx
    movl %ecx, %eax
    ret
""")
        live = Liveness(cfg)
        block = cfg.entry
        assert "rcx" in live.live_after(block, block.entries[0])

    def test_dead_after_last_use(self):
        unit, cfg = analysis_of("""
.text
f:
    movl $1, %ecx
    movl %ecx, %eax
    movl $0, %ecx
    movl %ecx, %edx
    movl $0, %ecx
    ret
""")
        live = Liveness(cfg)
        block = cfg.entry
        # rcx is redefined at entries[2] before its next use, so it is
        # dead right after the first use.
        assert live.is_dead_after(block, block.entries[1], "rcx")
        # But live again between the redefinition and the second use.
        assert "rcx" in live.live_after(block, block.entries[2])

    def test_flags_live_between_cmp_and_jcc(self):
        unit, cfg = analysis_of("""
.text
f:
    cmpl $1, %eax
    nop
    je .L
.L:
    ret
""")
        live = Liveness(cfg)
        block = cfg.entry
        assert flag_loc("ZF") in live.live_after(block, block.entries[0])
        assert flag_loc("ZF") in live.live_after(block, block.entries[1])

    def test_flags_dead_after_consumer(self):
        unit, cfg = analysis_of("""
.text
f:
    cmpl $1, %eax
    je .L
    addl $1, %ebx
.L:
    ret
""")
        live = Liveness(cfg)
        # After the add (which rewrites flags) nothing reads flags.
        add_block = cfg.blocks[1]
        assert flag_loc("ZF") not in live.live_after(
            add_block, add_block.entries[0])

    def test_cross_block_liveness(self):
        unit, cfg = analysis_of("""
.text
f:
    movl $7, %esi
    je .Luse
    ret
.Luse:
    movl %esi, %eax
    ret
""")
        live = Liveness(cfg)
        assert "rsi" in live.live_out(cfg.entry)

    def test_exit_live_defaults(self):
        unit, cfg = analysis_of(".text\nf:\n    ret\n")
        live = Liveness(cfg)
        assert "rax" in live.exit_live        # return value register
