"""Differential tests: incremental relaxation vs. the reference re-walk.

``relax_section`` (size-vector + prefix-sum, recompute from the first
promoted branch) must reach the *same fixpoint* as the retained
``relax_section_reference`` full re-walk — same iteration count, symbol
table, section size, byte image, and per-entry placements.  The argument
is monotonicity: promotions only grow sizes, so entries before the first
promoted branch keep their addresses; these tests check it holds on
every interesting entry mix.
"""

import pytest

from repro.analysis.relax import (
    relax_section,
    relax_section_reference,
    relax_unit,
    section_entry_map,
)
from repro.ir import parse_unit
from repro.workloads.corpus import CorpusConfig, generate_corpus_text

FILLER = "\n".join("    addl $1, %eax" for _ in range(42))

def _cascade(chains=6):
    # Each jmp targets the label one filler block further ahead, so spans
    # straddle the rel8 limit and promotions ripple backward over several
    # relaxation sweeps — the multi-iteration case worth testing.
    parts = [".text", "start:"]
    for i in range(chains):
        parts.append("    jmp .C%d" % i)
        parts.append(FILLER)
        if i > 0:
            parts.append(".C%d:" % (i - 1))
    parts.append("    jmp .Cend")
    parts.append(".C%d:" % (chains - 1))
    parts.append("\n".join("    addl $2, %ebx" for _ in range(45)))
    parts.append(".Cend:")
    parts.append("    ret")
    return "\n".join(parts) + "\n"


CASCADE = _cascade()

ALIGN_MIX = """
.text
top:
    jmp far
    .p2align 4
    movl $0, %eax
@FILLER@
    .balign 8
far:
    ret
""".replace("@FILLER@", FILLER)

DATA_MIX = """
.data
table:
    .quad 1, 2, 3
    .asciz "hello"
.text
f:
    movl $7, %eax
    jmp out
@FILLER@
out:
    ret
""".replace("@FILLER@", FILLER)


def _assert_same_fixpoint(text, section_name=".text"):
    unit_a = parse_unit(text)
    unit_b = parse_unit(text)
    ref = relax_section_reference(unit_a, unit_a.get_section(section_name))
    fast = relax_section(unit_b, unit_b.get_section(section_name))
    assert fast.iterations == ref.iterations
    assert fast.symtab == ref.symtab
    assert fast.size == ref.size
    assert fast.code_image() == ref.code_image()
    # Placements keyed by parallel entry identity: walk both in order.
    ref_entries = section_entry_map(unit_a)[section_name]
    fast_entries = section_entry_map(unit_b)[section_name]
    for a, b in zip(ref_entries, fast_entries):
        pa, pb = ref.placement.get(a), fast.placement.get(b)
        if pa is None or pb is None:
            assert pa is None and pb is None
        else:
            assert (pa.address, pa.size) == (pb.address, pb.size)
    return fast


class TestDifferential:
    def test_corpus(self):
        text = generate_corpus_text(CorpusConfig(seed=3, scale=0.01))
        _assert_same_fixpoint(text)

    def test_cascade_multiple_iterations(self):
        layout = _assert_same_fixpoint(CASCADE)
        assert layout.iterations > 1   # the interesting, rippling case

    def test_alignment_interplay(self):
        _assert_same_fixpoint(ALIGN_MIX)

    def test_data_section(self):
        _assert_same_fixpoint(DATA_MIX, section_name=".data")
        _assert_same_fixpoint(DATA_MIX, section_name=".text")

    def test_nonzero_start_address(self):
        unit_a = parse_unit(CASCADE)
        unit_b = parse_unit(CASCADE)
        ref = relax_section_reference(
            unit_a, unit_a.get_section(".text"), start_address=0x400000)
        fast = relax_section(
            unit_b, unit_b.get_section(".text"), start_address=0x400000)
        assert fast.symtab == ref.symtab
        assert fast.code_image() == ref.code_image()


class TestSectionEntryMap:
    def test_single_scan_matches_per_section_queries(self):
        unit = parse_unit(DATA_MIX)
        entry_map = section_entry_map(unit)
        assert set(entry_map) == set(unit.sections)
        for name, section in unit.sections.items():
            direct = [e for e in unit.entries() if e.section is section]
            assert entry_map[name] == direct

    def test_relax_unit_uses_hoisted_scan(self):
        text = generate_corpus_text(CorpusConfig(seed=3, scale=0.01))
        unit = parse_unit(text)
        layouts = relax_unit(unit)
        reference = parse_unit(text)
        for name, layout in layouts.items():
            ref = relax_section_reference(reference,
                                          reference.get_section(name))
            assert layout.code_image() == ref.code_image()
