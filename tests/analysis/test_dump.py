"""Tests for the IR/CFG/LSG dump formats."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dump import cfg_to_dot, dump_ir_text, lsg_to_dot
from repro.analysis.loops import build_lsg
from repro.ir import parse_unit

SOURCE = """
.text
.globl f
.type f, @function
f:
    movl $10, %ecx
.Ltop:
    addl $1, %eax
    testl %ebx, %ebx
    je .Lskip
    addl $2, %eax
.Lskip:
    subl $1, %ecx
    jne .Ltop
    ret
"""


@pytest.fixture
def artifacts():
    unit = parse_unit(SOURCE)
    function = unit.functions[0]
    cfg = build_cfg(function, unit)
    lsg = build_lsg(cfg)
    return function, cfg, lsg


class TestTextDump:
    def test_contains_addresses_and_encodings(self, artifacts):
        function, _, _ = artifacts
        text = dump_ir_text(function)
        assert "# function f" in text
        assert "000000" in text          # first instruction address
        assert "b90a000000" in text      # movl $10, %ecx encoding

    def test_without_layout(self, artifacts):
        function, _, _ = artifacts
        text = dump_ir_text(function, with_layout=False)
        assert "movl $10, %ecx" in text


class TestCfgDot:
    def test_structure(self, artifacts):
        _, cfg, _ = artifacts
        dot = cfg_to_dot(cfg)
        assert dot.startswith('digraph "f"')
        assert dot.count("bb") >= len(cfg.blocks)
        assert "-> exit" in dot
        assert dot.rstrip().endswith("}")

    def test_entry_highlighted(self, artifacts):
        _, cfg, _ = artifacts
        assert "color=blue" in cfg_to_dot(cfg)

    def test_unresolved_highlighted(self):
        unit = parse_unit(".text\nf:\n    jmp *%rax\n")
        cfg = build_cfg(unit.functions[0], unit)
        assert "color=red" in cfg_to_dot(cfg)

    def test_edge_count_matches(self, artifacts):
        _, cfg, _ = artifacts
        dot = cfg_to_dot(cfg)
        arrow_lines = [l for l in dot.splitlines() if "->" in l]
        true_edges = sum(len(b.successors) for b in cfg.blocks)
        assert len(arrow_lines) == true_edges


class TestLsgDot:
    def test_structure(self, artifacts):
        _, _, lsg = artifacts
        dot = lsg_to_dot(lsg)
        assert "root" in dot
        assert "header=.Ltop" in dot

    def test_irreducible_marked(self):
        unit = parse_unit("""
.text
f:
    testl %eax, %eax
    je .Lb
.La:
    subl $1, %eax
    jmp .Lbody
.Lb:
    subl $1, %ebx
.Lbody:
    testl %ebx, %ebx
    jne .La
    ret
""")
        cfg = build_cfg(unit.functions[0], unit)
        lsg = build_lsg(cfg)
        dot = lsg_to_dot(lsg)
        assert "irreducible" in dot
        assert "color=red" in dot


class TestPassDumpOption:
    def test_dump_option_prints(self, capsys):
        from repro.passes import run_passes
        unit = parse_unit(SOURCE)
        run_passes(unit, "REDTEST=dump[1]")
        err = capsys.readouterr().err
        assert "REDTEST f before" in err
        assert "REDTEST f after" in err
