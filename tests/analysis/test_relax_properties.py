"""Property-based relaxation invariants over generated programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.relax import relax_section
from repro.ir import parse_unit


@st.composite
def branchy_program(draw):
    """Programs with dense forward/backward branches and alignment."""
    n_blocks = draw(st.integers(3, 10))
    lines = [".text", "f:"]
    for i in range(n_blocks):
        lines.append(".Lb%d:" % i)
        for _ in range(draw(st.integers(0, 20))):
            lines.append("    addl $%d, %%eax"
                         % draw(st.integers(0, 127)))
        if draw(st.booleans()):
            lines.append("    .p2align %d" % draw(st.integers(2, 5)))
        target = draw(st.integers(0, n_blocks - 1))
        kind = draw(st.sampled_from(["jmp", "je", "jne", "jg", "fall"]))
        if kind != "fall":
            lines.append("    %s .Lb%d" % (kind, target))
    lines.append("    ret")
    return "\n".join(lines) + "\n"


@given(branchy_program())
@settings(max_examples=50, deadline=None)
def test_relaxation_invariants(source):
    unit = parse_unit(source)
    layout = relax_section(unit, unit.get_section(".text"))

    # 1. Convergence within the paper's cap.
    assert layout.converged
    assert layout.iterations <= 100

    # 2. Addresses are sequential and gapless except alignment padding.
    cursor = 0
    for entry, place in layout.placement.items():
        assert place.address >= cursor
        if not entry.is_directive:
            assert place.address == cursor, "unexpected gap"
        cursor = place.address + place.size

    # 3. Sizes match final encodings.
    for entry, place in layout.placement.items():
        if entry.is_instruction:
            assert len(entry.insn.encoding) == place.size

    # 4. Every branch displacement resolves to its label's address.
    for entry, place in layout.placement.items():
        if not entry.is_instruction:
            continue
        insn = entry.insn
        label = insn.branch_target_label()
        if label is None or insn.base not in ("jmp", "j"):
            continue
        encoding = insn.encoding
        if encoding[0] == 0xEB or 0x70 <= encoding[0] <= 0x7F:
            rel = int.from_bytes(encoding[-1:], "little", signed=True)
        else:
            rel = int.from_bytes(encoding[-4:], "little", signed=True)
        assert place.address + place.size + rel == layout.symtab[label]

    # 5. Alignment directives actually align their successors.
    entries = list(layout.placement.items())
    for i, (entry, place) in enumerate(entries):
        if entry.is_directive and entry.name == "p2align":
            args = entry.int_args()
            if not args:
                continue
            alignment = 1 << args[0]
            next_addr = place.address + place.size
            assert next_addr % alignment == 0

    # 6. Idempotence: re-running relaxation reproduces the layout.
    again = relax_section(unit, unit.get_section(".text"))
    assert again.size == layout.size
    assert again.symtab == layout.symtab


@given(branchy_program())
@settings(max_examples=25, deadline=None)
def test_image_matches_placement(source):
    unit = parse_unit(source)
    layout = relax_section(unit, unit.get_section(".text"))
    image = layout.code_image()
    assert len(image) == layout.size
    for entry, place in layout.placement.items():
        if entry.is_instruction:
            start = place.address
            assert image[start:start + place.size] == entry.insn.encoding
