"""Tests for the repeated-relaxation algorithm."""

import pytest

from repro.analysis.relax import (
    MAX_RELAX_ITERATIONS,
    RelaxError,
    directive_data_size,
    relax_section,
    relax_unit,
)
from repro.ir import parse_unit
from repro.ir.entries import DirectiveEntry


def layout_of(source, section=".text"):
    unit = parse_unit(source)
    return unit, relax_section(unit, unit.get_section(section))


class TestBasicLayout:
    def test_sequential_addresses(self):
        unit, layout = layout_of(".text\nf:\n    nop\n    nop\n    ret\n")
        addresses = [p.address for e, p in layout.placement.items()
                     if e.is_instruction]
        assert addresses == [0, 1, 2]
        assert layout.size == 3

    def test_label_addresses_in_symtab(self):
        unit, layout = layout_of(
            ".text\nf:\n    nop\n.L1:\n    ret\n")
        assert layout.symtab["f"] == 0
        assert layout.symtab[".L1"] == 1

    def test_start_address_offset(self):
        unit = parse_unit(".text\nf:\n    nop\n")
        layout = relax_section(unit, unit.get_section(".text"),
                               start_address=0x400000)
        assert layout.symtab["f"] == 0x400000

    def test_instruction_addresses_cached(self):
        unit, layout = layout_of(".text\nf:\n    nop\n    ret\n")
        insns = [e.insn for e in unit.entries() if e.is_instruction]
        assert insns[0].address == 0
        assert insns[1].address == 1


class TestBranchRelaxation:
    def test_backward_branch_stays_short(self):
        unit, layout = layout_of("""
.text
f:
.Ltop:
    nop
    jne .Ltop
    ret
""")
        jne = next(e.insn for e in unit.entries()
                   if e.is_instruction and e.insn.base == "j")
        assert len(jne.encoding) == 2

    def test_far_forward_branch_goes_long(self):
        body = "".join("    addl $1, %eax\n" for _ in range(50))
        unit, layout = layout_of(
            ".text\nf:\n    jmp .Lfar\n%s.Lfar:\n    ret\n" % body)
        jmp = next(e.insn for e in unit.entries()
                   if e.is_instruction and e.insn.base == "jmp")
        assert len(jmp.encoding) == 5

    def test_cascade_converges(self):
        """A branch growing pushes another out of range (paper §II)."""
        blocks = []
        for i in range(4):
            filler = "".join("    addl $1, %%eax  #%d\n" % j
                             for j in range(40))
            blocks.append("    jmp .Lb%d\n%s.Lb%d:\n" % (i, filler, i))
        unit, layout = layout_of(".text\nf:\n" + "".join(blocks) + "    ret\n")
        assert layout.converged
        assert layout.iterations <= 10   # "a few iterations" in practice

    def test_displacements_are_correct(self):
        """Every encoded branch displacement resolves to its label."""
        unit, layout = layout_of("""
.text
f:
    jmp .La
    nop
.La:
    je .Lb
""" + "".join("    addl $1, %eax\n" for _ in range(60)) + """
.Lb:
    ret
""")
        for entry, place in layout.placement.items():
            if not entry.is_instruction:
                continue
            insn = entry.insn
            label = insn.branch_target_label()
            if label is None or insn.base not in ("jmp", "j"):
                continue
            encoding = insn.encoding
            if encoding[0] in (0xEB,) or 0x70 <= encoding[0] <= 0x7F:
                rel = int.from_bytes(encoding[-1:], "little", signed=True)
            else:
                rel = int.from_bytes(encoding[-4:], "little", signed=True)
            assert place.address + place.size + rel == layout.symtab[label]


class TestAlignment:
    def test_p2align_pads(self):
        unit, layout = layout_of("""
.text
f:
    nop
    .p2align 4
.Laligned:
    ret
""")
        assert layout.symtab[".Laligned"] == 16

    def test_p2align_respects_max_skip(self):
        unit, layout = layout_of("""
.text
f:
    nop
    .p2align 4,,7
.Lmaybe:
    ret
""")
        # 15 bytes of padding needed > 7 allowed -> no alignment.
        assert layout.symtab[".Lmaybe"] == 1

    def test_align_is_byte_alignment(self):
        unit, layout = layout_of(
            ".text\nf:\n    nop\n    .align 8\n.La:\n    ret\n")
        assert layout.symtab[".La"] == 8

    def test_fill_regions_reported(self):
        unit, layout = layout_of(
            ".text\nf:\n    nop\n    .p2align 4\n.La:\n    ret\n")
        assert layout.fill_regions() == [(1, 15)]


class TestDataDirectives:
    @pytest.mark.parametrize("directive,size", [
        (".byte 1", 1), (".byte 1, 2, 3", 3),
        (".word 5", 2), (".long 5", 4), (".quad 5", 8),
        (".quad a, b", 16),
        (".zero 100", 100), (".skip 12", 12),
        ('.ascii "hi"', 2), ('.asciz "hi"', 3),
        ('.string "a\\nb"', 4),
        ('.ascii "a", "bc"', 3),
    ])
    def test_sizes(self, directive, size):
        name, _, args = directive.partition(" ")
        entry = DirectiveEntry(name[1:], args)
        assert directive_data_size(entry) == size

    def test_data_section_layout(self):
        unit = parse_unit("""
.section .data
a:
    .quad 1
b:
    .long 2
c:
""")
        layout = relax_section(unit, unit.get_section(".data"))
        assert layout.symtab == {"a": 0, "b": 8, "c": 12}


class TestRelaxUnit:
    def test_multiple_sections(self):
        unit = parse_unit("""
.text
f:
    movq counter(%rip), %rax
    ret
.section .data
counter:
    .quad 0
""")
        layouts = relax_unit(unit)
        assert set(layouts) == {".text", ".data"}

    def test_code_image_matches_size(self):
        unit = parse_unit(".text\nf:\n    nop\n    .p2align 3\n    ret\n")
        layout = relax_section(unit, unit.get_section(".text"))
        assert len(layout.code_image()) == layout.size

    def test_opaque_entry_rejected(self):
        unit = parse_unit(".text\nf:\n    vaddps %ymm0, %ymm1, %ymm2\n")
        with pytest.raises(RelaxError):
            relax_section(unit, unit.get_section(".text"))

    def test_iteration_limit_constant(self):
        assert MAX_RELAX_ITERATIONS == 100   # paper: built-in limit of 100
