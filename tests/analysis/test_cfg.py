"""Tests for CFG construction and indirect-branch resolution."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.ir import parse_unit


def cfg_of(source, name=None):
    unit = parse_unit(source)
    function = unit.functions[0] if name is None \
        else unit.function_named(name)
    return build_cfg(function, unit)


class TestBlockStructure:
    def test_straight_line_single_block(self):
        cfg = cfg_of(".text\nf:\n    nop\n    nop\n    ret\n")
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == [cfg.exit]

    def test_labels_start_blocks(self):
        cfg = cfg_of(".text\nf:\n    nop\n.L1:\n    nop\n    ret\n")
        assert len(cfg.blocks) == 2

    def test_diamond(self):
        cfg = cfg_of("""
.text
f:
    testl %eax, %eax
    je .Lelse
    movl $1, %ebx
    jmp .Ldone
.Lelse:
    movl $2, %ebx
.Ldone:
    ret
""")
        assert len(cfg.blocks) == 4
        entry = cfg.entry
        assert len(entry.successors) == 2
        done = cfg.label_to_block[".Ldone"]
        assert len(done.predecessors) == 2

    def test_fallthrough_edges(self):
        cfg = cfg_of("""
.text
f:
    je .L1
    nop
.L1:
    ret
""")
        entry = cfg.entry
        targets = {id(s) for s in entry.successors}
        assert id(cfg.label_to_block[".L1"]) in targets
        assert len(entry.successors) == 2

    def test_call_does_not_end_block(self):
        cfg = cfg_of(".text\nf:\n    call g\n    nop\n    ret\n")
        assert len(cfg.blocks) == 1

    def test_loop_back_edge(self):
        cfg = cfg_of("""
.text
f:
.Ltop:
    subl $1, %eax
    jne .Ltop
    ret
""")
        top = cfg.label_to_block[".Ltop"]
        assert top in top.successors

    def test_reverse_postorder_starts_at_entry(self):
        cfg = cfg_of("""
.text
f:
    je .La
.Lb:
    ret
.La:
    jmp .Lb
""")
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry
        assert len(order) == len(cfg.blocks)


class TestIndirectResolution:
    OPERAND_PATTERN = """
.text
.type f, @function
f:
    andl $3, %eax
    jmp *.Ltab(,%rax,8)
.Lc0:
    ret
.Lc1:
    ret
.Lc2:
    ret
.Lc3:
    ret
.section .rodata
.Ltab:
    .quad .Lc0
    .quad .Lc1
    .quad .Lc2
    .quad .Lc3
"""

    REACHING_DEFS_PATTERN = """
.text
.type f, @function
f:
    andl $1, %eax
    leaq .Ltab(%rip), %rdx
    movq (%rdx,%rax,8), %rcx
    jmp *%rcx
.Lc0:
    ret
.Lc1:
    ret
.section .rodata
.Ltab:
    .quad .Lc0
    .quad .Lc1
"""

    HARD_PATTERN = """
.text
.type f, @function
f:
    testq %rbx, %rbx
    je .Lalt
    leaq .Ltab(%rip), %rdx
    jmp .Ljoin
.Lalt:
    leaq 8+.Ltab(%rip), %rdx
.Ljoin:
    movq (%rdx,%rax,8), %rcx
    jmp *%rcx
.Lc0:
    ret
.Lc1:
    ret
.section .rodata
.Ltab:
    .quad .Lc0
    .quad .Lc1
"""

    def test_operand_pattern_resolved(self):
        cfg = cfg_of(self.OPERAND_PATTERN)
        assert cfg.is_well_formed
        assert [tier for _, tier in cfg.resolved_branches] == ["operand"]
        branch_block = cfg.entry
        names = {s.labels[0] for s in branch_block.successors
                 if s is not cfg.exit}
        assert names == {".Lc0", ".Lc1", ".Lc2", ".Lc3"}

    def test_reaching_defs_pattern_resolved(self):
        cfg = cfg_of(self.REACHING_DEFS_PATTERN)
        assert cfg.is_well_formed
        assert [tier for _, tier in cfg.resolved_branches] \
            == ["reaching-defs"]

    def test_reaching_defs_tier_can_be_disabled(self):
        unit = parse_unit(self.REACHING_DEFS_PATTERN)
        cfg = build_cfg(unit.functions[0], unit, resolve_indirect=False)
        assert not cfg.is_well_formed

    def test_hard_pattern_flags_function(self):
        cfg = cfg_of(self.HARD_PATTERN)
        assert not cfg.is_well_formed
        assert cfg.function.flagged_unresolved_branch
        assert len(cfg.unresolved_branches) == 1

    def test_register_jump_without_table_unresolved(self):
        cfg = cfg_of(".text\nf:\n    jmp *%rax\n")
        assert not cfg.is_well_formed
