"""Tests for the kernels, corpus generator, and spec benchmark builder."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import run_unit
from repro.workloads import kernels
from repro.workloads.corpus import (
    CorpusConfig,
    PAPER_TESTS_REDUNDANT,
    PAPER_TESTS_TOTAL,
    generate_corpus,
    generate_corpus_text,
)
from repro.workloads.spec import (
    SPEC2000_INT,
    build_benchmark,
    measure_cycles,
)
from repro.uarch.profiles import core2


class TestKernels:
    @pytest.mark.parametrize("source_fn,kwargs", [
        (kernels.mcf_fig1, {"outer": 5}),
        (kernels.eon_loop, {"outer": 5}),
        (kernels.fig4_loop, {"iterations": 20}),
        (kernels.hash_bench, {"trip": 20}),
        (kernels.nested_short_loops, {"outer": 5}),
    ])
    def test_kernels_parse_and_run(self, source_fn, kwargs):
        result = run_unit(parse_unit(source_fn(**kwargs)))
        assert result.reason == "ret"

    def test_fig1_nop_changes_layout_not_results(self):
        base = run_unit(parse_unit(kernels.mcf_fig1(False, outer=3)))
        with_nop = run_unit(parse_unit(kernels.mcf_fig1(True, outer=3)))
        assert base.state.gp["r8"] == with_nop.state.gp["r8"]

    def test_hash_variants_compute_same_hash(self):
        base = run_unit(parse_unit(kernels.hash_bench(False, trip=100)))
        sched = run_unit(parse_unit(kernels.hash_bench(True, trip=100)))
        assert base.state.gp["rdx"] == sched.state.gp["rdx"]


class TestCorpus:
    CONFIG = CorpusConfig(seed=5, scale=0.003)

    def test_generates_parseable_unit(self):
        unit = generate_corpus(self.CONFIG)
        assert unit.instruction_count() > 200
        assert len(unit.functions) >= 2

    def test_seeded_determinism(self):
        a = generate_corpus_text(self.CONFIG)
        b = generate_corpus_text(CorpusConfig(seed=5, scale=0.003))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_corpus_text(CorpusConfig(seed=1, scale=0.003))
        b = generate_corpus_text(CorpusConfig(seed=2, scale=0.003))
        assert a != b

    def test_pattern_ratios_near_paper(self):
        """The redundant-test ratio must track the paper's 24%."""
        unit = generate_corpus(CorpusConfig(seed=0, scale=0.01))
        result = run_passes(unit, "REDTEST=count_only[1]")
        tests = result.total("REDTEST", "tests")
        removed = result.total("REDTEST", "removed")
        paper_ratio = PAPER_TESTS_REDUNDANT / PAPER_TESTS_TOTAL
        assert tests > 100
        assert abs(removed / tests - paper_ratio) < 0.05

    def test_zext_catch_rate_above_90_percent(self):
        unit = generate_corpus(CorpusConfig(seed=0, scale=0.05))
        result = run_passes(unit, "REDZEE=count_only[1]")
        candidates = result.total("REDZEE", "candidates")
        removed = result.total("REDZEE", "removed")
        assert candidates > 30
        assert removed / candidates >= 0.90

    def test_indirect_branch_tiers(self):
        unit = generate_corpus(CorpusConfig(seed=0, scale=0.05))
        resolved = {"operand": 0, "reaching-defs": 0}
        unresolved = 0
        for function in unit.functions:
            cfg = build_cfg(function, unit)
            for _, tier in cfg.resolved_branches:
                resolved[tier] += 1
            unresolved += len(cfg.unresolved_branches)
        assert resolved["operand"] > 0
        assert resolved["reaching-defs"] > resolved["operand"]
        # The hard patterns (4 in the paper) stay unresolved.
        assert unresolved >= 1


class TestSpecBenchmarks:
    def test_all_benchmarks_build(self):
        for name in SPEC2000_INT[:3] + ["454.calculix", "429.mcf"]:
            program = build_benchmark(name)
            assert "main:" in program.source

    def test_benchmarks_run_to_completion(self):
        program = build_benchmark("164.gzip")
        stats = measure_cycles(program.unit(), core2(),
                               max_steps=program.max_steps)
        assert stats.cycles > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("999.nonesuch")

    def test_builds_are_deterministic(self):
        a = build_benchmark("175.vpr").source
        b = build_benchmark("175.vpr").source
        assert a == b

    def test_eon_hot_loop_calibrated(self):
        from repro.analysis.relax import relax_section
        unit = build_benchmark("252.eon").unit()
        layout = relax_section(unit, unit.get_section(".text"))
        assert layout.symtab[".Lhot"] % 32 == 16
        assert layout.symtab[".Lmini"] % 16 == 9

    def test_passes_preserve_benchmark_semantics(self):
        program = build_benchmark("175.vpr")
        before = run_unit(program.unit(), max_steps=program.max_steps)
        unit = program.unit()
        run_passes(unit, "LOOP16:REDTEST:REDMOV:ADDADD:SCHED")
        after = run_unit(unit, max_steps=program.max_steps)
        assert before.state.gp["rax"] == after.state.gp["rax"]
        assert before.state.gp["rbx"] == after.state.gp["rbx"]
