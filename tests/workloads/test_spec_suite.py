"""Suite-wide invariants for every synthetic SPEC benchmark."""

import pytest

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.verify import disassemble_compare
from repro.workloads.spec import (
    SPEC2000_INT,
    SPEC2006_FP,
    SPEC2006_SCHED,
    _RECIPES,
    build_benchmark,
)

ALL_BENCHMARKS = SPEC2000_INT + SPEC2006_FP + SPEC2006_SCHED


class TestSuiteInvariants:
    def test_recipe_table_covers_all_names(self):
        assert set(ALL_BENCHMARKS) == set(_RECIPES)

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_builds_and_relaxes(self, name):
        program = build_benchmark(name)
        unit = program.unit()
        layout = relax_section(unit, unit.get_section(".text"))
        assert layout.converged
        assert layout.size > 100

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_calibration_holds(self, name):
        recipe = _RECIPES[name]
        if recipe.offset is None or recipe.kind == "plain":
            pytest.skip("no calibrated offset")
        unit = build_benchmark(name).unit()
        layout = relax_section(unit, unit.get_section(".text"))
        assert layout.symtab[".Lhot"] % recipe.grid == recipe.offset, \
            "%s hot-label calibration drifted" % name

    @pytest.mark.parametrize("name", ["252.eon", "454.calculix",
                                      "429.mcf", "164.gzip"])
    def test_roundtrip_verifies(self, name):
        """The §III.A disassemble-and-compare check over the suite."""
        program = build_benchmark(name)
        result = disassemble_compare(program.source)
        assert result.identical, result.first_diff

    def test_prealign_calibration(self):
        for name in SPEC2006_FP:
            recipe = _RECIPES[name]
            unit = build_benchmark(name).unit()
            layout = relax_section(unit, unit.get_section(".text"))
            assert layout.symtab[".Lprealign"] % 32 \
                == recipe.prealign_offset, name
            # With the directive in place the hot loop is window-aligned.
            assert layout.symtab[".Lhot"] % 32 == 0, name

    def test_window_loop_sizes(self):
        """calculix/dealII hot bodies must sit just over one 32-byte
        window, shrinking under it after REDMOV or REDTEST."""
        from repro.passes import run_passes

        for name in SPEC2006_FP:
            unit = build_benchmark(name).unit()
            layout = relax_section(unit, unit.get_section(".text"))
            start = layout.symtab[".Lhot"]
            # Find the loop's back branch: the last entry targeting .Lhot.
            end = None
            for entry, place in layout.placement.items():
                if entry.is_instruction \
                        and entry.insn.branch_target_label() == ".Lhot":
                    end = place.address + place.size
            size = end - start
            assert 32 < size <= 40, (name, size)
            for spec in ("REDMOV", "REDTEST"):
                opt = build_benchmark(name).unit()
                run_passes(opt, spec)
                opt_layout = relax_section(opt, opt.get_section(".text"))
                opt_start = opt_layout.symtab[".Lhot"]
                opt_end = None
                for entry, place in opt_layout.placement.items():
                    if entry.is_instruction \
                            and entry.insn.branch_target_label() \
                            == ".Lhot":
                        opt_end = place.address + place.size
                assert opt_end - opt_start <= 32, (name, spec)
