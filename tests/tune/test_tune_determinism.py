"""Tuner determinism: the search result is a pure function of
(input, core, search parameters) — not of worker count, pool backend,
or cache temperature."""

import json

import pytest

from repro.batch.cache import ArtifactCache
from repro.tune import tune
from repro.workloads import kernels


def canonical_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def fig4_source():
    return kernels.fig4_loop()


class TestParallelDeterminism:
    def test_jobs_1_vs_4_byte_identical(self, fig4_source):
        serial = tune(fig4_source, "core2", jobs=1)
        fanned = tune(fig4_source, "core2", jobs=4)
        assert canonical_json(serial) == canonical_json(fanned)
        assert serial.asm == fanned.asm

    def test_thread_vs_process_byte_identical(self, fig4_source):
        threaded = tune(fig4_source, "core2", jobs=2,
                        parallel_backend="thread")
        processed = tune(fig4_source, "core2", jobs=2,
                         parallel_backend="process")
        assert canonical_json(threaded) == canonical_json(processed)
        assert threaded.asm == processed.asm

    def test_repeat_runs_identical(self, fig4_source):
        first = tune(fig4_source, "core2")
        second = tune(fig4_source, "core2")
        assert canonical_json(first) == canonical_json(second)


class TestCacheTransparency:
    def test_warm_retune_pins_hit_counters_and_document(
            self, tmp_path, fig4_source):
        """Second tune of the same input: zero pass executions, every
        prefix the cold run executed replayed as a hit, and the search
        outcome byte-identical apart from the pass_runs accounting."""
        store = str(tmp_path / "store")
        cold = tune(fig4_source, "core2", cache=ArtifactCache(store))
        warm = tune(fig4_source, "core2", cache=ArtifactCache(store))

        assert cold.pass_runs["cache_hits"] == 0
        assert warm.pass_runs == {
            "executed": 0,
            "cache_hits": cold.pass_runs["executed"],
            "total_steps": cold.pass_runs["total_steps"],
            "saved": cold.pass_runs["saved"],
        }

        cold_doc = cold.to_dict()
        warm_doc = warm.to_dict()
        cold_doc.pop("pass_runs")
        warm_doc.pop("pass_runs")
        assert json.dumps(warm_doc, sort_keys=True) \
            == json.dumps(cold_doc, sort_keys=True)
        assert warm.asm == cold.asm

    def test_cached_and_uncached_agree_on_the_winner(self, tmp_path,
                                                     fig4_source):
        uncached = tune(fig4_source, "core2")
        cached = tune(fig4_source, "core2",
                      cache=ArtifactCache(str(tmp_path / "store")))
        assert cached.winner == uncached.winner
        assert cached.leaderboard == uncached.leaderboard
        assert cached.asm == uncached.asm
