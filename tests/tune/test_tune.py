"""The pass-pipeline autotuner: search contract, early stopping,
prefix-cache accounting, and the ``pymao.tune/1`` document."""

import pytest

from repro import api
from repro.batch.cache import ArtifactCache
from repro.tune import (
    DEFAULT_SPEC,
    TUNE_SCHEMA,
    TuneError,
    TuneResult,
    seed_candidates,
    tune,
)
from repro.workloads import kernels


@pytest.fixture(scope="module")
def fig4_source():
    return kernels.fig4_loop()


@pytest.fixture(scope="module")
def fig4_result(fig4_source):
    """One cold, cache-less tune shared by the read-only assertions."""
    return tune(fig4_source, "core2")


class TestSeedCandidates:
    def test_baseline_and_default_always_present(self):
        seeds = seed_candidates()
        origins = {cand.origin for cand in seeds}
        assert "baseline" in origins
        assert "default" in origins
        by_origin = {cand.origin: cand for cand in seeds}
        assert by_origin["baseline"].spec == ()
        assert [name for name, _ in by_origin["default"].spec] \
            == ["REDTEST", "LOOP16"]

    def test_ladders_share_prefixes(self):
        """Every strategy path contributes each of its prefixes, so the
        trie evaluates the whole ladder in len(path) pass runs."""
        seeds = seed_candidates()
        peephole = [cand for cand in seeds
                    if cand.origin == "peephole-first"]
        lengths = sorted(len(cand.spec) for cand in peephole)
        assert lengths == list(range(1, len(peephole) + 1))

    def test_deduped_by_encoding(self):
        seeds = seed_candidates()
        encodings = [cand.encoding for cand in seeds]
        assert len(encodings) == len(set(encodings))


class TestSearchContract:
    def test_winner_never_worse_than_default_or_baseline(
            self, fig4_source, fig4_result):
        baseline = api.predict(fig4_source, "core2").cycles
        default = api.predict(
            api.optimize(fig4_source, DEFAULT_SPEC).unit, "core2").cycles
        assert fig4_result.winner_cycles <= baseline
        assert fig4_result.winner_cycles <= default

    def test_leaderboard_sorted_best_first(self, fig4_result):
        cycles = [row["cycles"] for row in fig4_result.leaderboard]
        assert cycles == sorted(cycles)
        assert fig4_result.winner["cycles"] == cycles[0]

    def test_winner_asm_scores_as_advertised(self, fig4_result):
        """The emitted winning asm re-predicts to the winning cycles —
        the document's claim is reproducible from its own artifact."""
        assert fig4_result.asm
        again = api.predict(fig4_result.asm, "core2")
        assert again.cycles == pytest.approx(fig4_result.winner_cycles)

    def test_winner_items_replay_through_optimize(self, fig4_source,
                                                  fig4_result):
        replay = api.optimize(fig4_source, fig4_result.winner_items)
        assert replay.to_asm() == fig4_result.asm

    def test_early_stop_at_lower_bound_skips_all_work(self):
        """mcf_fig1's baseline already sits on the static lower bound:
        the search must stop before executing a single pass."""
        result = tune(kernels.mcf_fig1(), "core2")
        assert result.early_stop["reason"] == "lower_bound"
        assert result.pass_runs["executed"] == 0
        assert result.winner["origin"] == "baseline"
        assert result.candidates["skipped"] > 0
        # The skipped candidates still count toward the naive cost the
        # efficiency gate divides by.
        assert result.pass_runs["total_steps"] > 0

    def test_budget_zero_scores_baseline_only(self, fig4_source):
        result = tune(fig4_source, "core2", budget=0)
        assert result.pass_runs["executed"] == 0
        assert result.early_stop["reason"] in ("budget", "lower_bound")
        assert result.winner["origin"] == "baseline"

    def test_budget_is_respected(self, fig4_source):
        result = tune(fig4_source, "core2", budget=7)
        assert result.pass_runs["executed"] <= 7

    def test_bad_parameters_raise_tune_error(self, fig4_source):
        with pytest.raises(TuneError):
            tune(fig4_source, "core2", budget=-1)
        with pytest.raises(TuneError):
            tune(fig4_source, "core2", n_select=0)
        with pytest.raises(TuneError):
            tune(fig4_source, "core2", max_rounds=-1)

    def test_unanalyzable_source_raises_tune_error(self):
        with pytest.raises(TuneError):
            tune("", "core2")   # no functions to score

    def test_unknown_core_raises(self, fig4_source):
        with pytest.raises(ValueError):
            tune(fig4_source, "z80")

    def test_simulate_rescore_reports_sim_cycles(self, fig4_source):
        result = tune(fig4_source, "core2", budget=6, simulate_top=2,
                      max_rounds=0)
        simmed = [row for row in result.leaderboard
                  if row.get("sim_cycles") is not None]
        assert len(simmed) == 2
        for row in simmed:
            assert row["sim_cycles"] > 0


class TestDocument:
    def test_schema_and_round_trip(self, fig4_result):
        doc = fig4_result.to_dict()
        assert doc["schema"] == TUNE_SCHEMA
        rebuilt = TuneResult.from_dict(doc)
        assert rebuilt.to_dict() == doc
        assert rebuilt.winner_spec == fig4_result.winner_spec

    def test_timings_are_opt_in(self, fig4_result):
        assert "timings" not in fig4_result.to_dict()
        timed = fig4_result.to_dict(timings=True)
        assert timed["timings"]["elapsed_s"] >= 0

    def test_asm_stays_out_of_the_document(self, fig4_result):
        assert "asm" not in fig4_result.to_dict()

    def test_explain_mentions_winner_and_stop(self, fig4_result):
        text = fig4_result.explain()
        assert fig4_result.winner_spec in text
        assert fig4_result.early_stop["reason"] in text

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            TuneResult.from_dict({"schema": "pymao.tune/999"})


class TestPrefixCache:
    def test_tune_prefixes_replay_as_batch_artifacts(self, tmp_path,
                                                     fig4_source):
        """Tune writes the same keys `optimize_many` reads: optimizing
        the winning spec after a tune must be a pure cache hit."""
        cache = ArtifactCache(str(tmp_path / "store"))
        result = tune(fig4_source, "core2", cache=cache)
        assert result.winner_spec   # fig4 improves beyond baseline
        batch = api.optimize_many([("fig4.s", fig4_source)],
                                  result.winner_spec, cache=cache)
        assert batch.items[0].cache == "hit"
        assert batch.items[0].asm == result.asm

    def test_warm_retune_runs_nothing(self, tmp_path, fig4_source):
        store = str(tmp_path / "store")
        cold = tune(fig4_source, "core2", cache=ArtifactCache(store))
        warm = tune(fig4_source, "core2", cache=ArtifactCache(store))
        assert cold.pass_runs["cache_hits"] == 0
        assert warm.pass_runs["executed"] == 0
        assert warm.pass_runs["cache_hits"] \
            == cold.pass_runs["executed"]
        assert warm.winner == cold.winner
