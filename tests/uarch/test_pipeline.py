"""Tests for the pipeline timing model's causal mechanisms."""

import pytest

from repro.ir import parse_unit
from repro.sim import run_unit
from repro.uarch import counters as C
from repro.uarch.pipeline import PipelineSimulator, simulate_trace
from repro.uarch.profiles import core2, opteron


def timed(source, model=None, max_steps=2_000_000, args=None):
    unit = parse_unit(source)
    result = run_unit(unit, collect_trace=True, max_steps=max_steps,
                      args=args)
    assert result.reason == "ret"
    return simulate_trace(result.trace, model or core2())


def counted_loop(body, trips, pre=""):
    """A counted loop; `pre` sits between the trip-count setup and the
    loop label, so alignment directives there position the label itself."""
    return f"""
.text
.globl main
main:
    movq ${trips}, %rbp
{pre}
.Lloop:
{body}
    subq $1, %rbp
    jne .Lloop
    ret
"""


class TestFrontend:
    def test_cycles_positive_and_bounded(self):
        stats = timed(counted_loop("    addq $1, %rax", 100))
        assert 0 < stats.cycles < 10_000
        assert stats[C.INSTRUCTIONS] == 302

    def test_line_crossing_costs(self):
        """A loop body crossing a 16-byte line pays an extra fetch.

        Trip count stays below the LSD threshold so the loop is truly
        decode-bound."""
        trips = core2().lsd_min_iterations - 10
        aligned = timed(counted_loop("    movss %xmm0,(%rdi,%rax,4)",
                                     trips, pre="    .p2align 4"),
                        args=[0x600000])
        crossing = timed(counted_loop("    movss %xmm0,(%rdi,%rax,4)",
                                      trips, pre="    .p2align 4\n"
                                          + "    nop\n" * 11),
                         args=[0x600000])
        assert crossing[C.DECODE_LINES] > aligned[C.DECODE_LINES]
        assert crossing.cycles > aligned.cycles

    def test_decode_width_caps(self):
        """More instructions than decode width per line take extra cycles."""
        few = timed(counted_loop("    nop\n" * 2, 500))
        many = timed(counted_loop("    nop\n" * 12, 500))
        assert many.cycles > few.cycles


class TestLsd:
    def hot_loop(self, trips):
        return counted_loop("    addq $1, %rax", trips,
                            pre="    .p2align 4")

    def test_lsd_engages_after_threshold(self):
        below = timed(self.hot_loop(core2().lsd_min_iterations - 4))
        above = timed(self.hot_loop(500))
        assert below[C.LSD_UOPS] == 0
        assert above[C.LSD_UOPS] > 0
        assert above[C.LSD_ACTIVE_LOOPS] == 1

    def test_oversized_loop_never_streams(self):
        body = "\n".join("    addl $%d, %%eax" % i for i in range(30))
        stats = timed(counted_loop(body, 500))
        assert stats[C.LSD_UOPS] == 0

    def test_call_poisons_loop(self):
        source = """
.text
.globl main
main:
    movq $200, %rbp
.Lloop:
    call helper
    subq $1, %rbp
    jne .Lloop
    ret
.type helper, @function
helper:
    ret
"""
        stats = timed(source)
        assert stats[C.LSD_UOPS] == 0

    def test_lsd_disabled_profile(self):
        from repro.uarch.profiles import pentium4
        stats = timed(self.hot_loop(500), model=pentium4())
        assert stats[C.LSD_UOPS] == 0


class TestBranchPrediction:
    def test_biased_loop_predicts_well(self):
        stats = timed(counted_loop("    addq $1, %rax", 500))
        assert stats[C.BR_MISP] <= 3

    def test_alternating_pattern_mispredicts(self):
        source = """
.text
.globl main
main:
    movq $200, %rbp
.Lloop:
    testq $1, %rbp
    je .Lskip
    addq $1, %rax
.Lskip:
    subq $1, %rbp
    jne .Lloop
    ret
"""
        stats = timed(source)
        assert stats[C.BR_MISP] > 50

    def test_mispredicts_cost_cycles(self):
        predictable = timed(counted_loop("    addq $1, %rax", 300))
        source = """
.text
.globl main
main:
    movq $300, %rbp
.Lloop:
    testq $1, %rbp
    je .Lskip
    addq $1, %rax
.Lskip:
    subq $1, %rbp
    jne .Lloop
    ret
"""
        unpredictable = timed(source)
        extra_cycles = unpredictable.cycles - predictable.cycles
        assert extra_cycles > unpredictable[C.BR_MISP] \
            * core2().bp_mispredict_penalty // 2


class TestBackend:
    def test_dependent_chain_slower_than_independent(self):
        chain = timed(counted_loop(
            "    imulq %rax, %rax\n" * 4, 200))
        independent = timed(counted_loop(
            "    imulq $3, %rbx, %rcx\n" * 4, 200))
        assert chain.cycles > independent.cycles

    def test_load_latency_observed(self):
        pointer_chase = counted_loop(
            "    movq (%rdi), %rdi", 500,
            pre="    leaq buf(%rip), %rdi") + """
.section .bss
buf:
    .zero 64
"""
        # A pointer chase pays full load latency per iteration.
        stats = timed(pointer_chase)
        per_iter = stats.cycles / 500
        assert per_iter >= core2().latency["load"]

    def test_cache_misses_counted(self):
        streaming = counted_loop("""
    movq (%rdi,%rbp,8), %rdx
    addq %rdx, %rax
""", 2000, pre="    leaq buf(%rip), %rdi") + """
.section .bss
buf:
    .zero 65536
"""
        stats = timed(streaming)
        # 2000 loads spanning 16000 bytes -> ~250 distinct 64B lines.
        assert 150 <= stats[C.L1D_MISSES] <= 400

    def test_forwarding_stalls_counted(self):
        from repro.workloads import kernels
        stats = timed(kernels.hash_bench(False, trip=500))
        sched = timed(kernels.hash_bench(True, trip=500))
        assert stats[C.RESOURCE_STALLS_RS_FULL] \
            > sched[C.RESOURCE_STALLS_RS_FULL]


class TestStatsApi:
    def test_ipc(self):
        stats = timed(counted_loop("    addq $1, %rax", 100))
        assert 0 < stats.ipc() < 6

    def test_getitem_missing_counter(self):
        stats = timed(counted_loop("    nop", 10))
        assert stats["NOT_A_COUNTER"] == 0
