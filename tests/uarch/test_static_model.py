"""Tests for the analytical throughput predictor (repro.uarch.static_model).

Three layers:

* unit tests over loop extraction and the three bounds;
* hypothesis property tests — adding an instruction to a loop body can
  never make the *backend* bounds (ports, latency) better, while the
  front-end bound is allowed its documented Fig.-1 alignment cliffs;
* cross-validation — the predicted cycles-per-iteration must land in the
  same pinned tolerance bands the ``bench_predict`` gate enforces, on
  every anecdote kernel x {core2, opteron}.  The bands (and their
  documented divergences) are imported from the benchmark so the test
  and the CI gate can never drift apart.
"""

import os
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.uarch import static_model
from repro.uarch.profiles import core2, opteron
from repro.uarch.static_model import (
    PREDICT_SCHEMA,
    PredictError,
    find_loops,
    predict,
    select_loop,
)
from repro.workloads import kernels

_BENCH_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                          os.pardir, os.pardir,
                                          "benchmarks"))
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)
import bench_predict  # noqa: E402


def loop_source(body_lines, trip=100):
    """A minimal counted loop around *body_lines* (assembly strings)."""
    body = "\n".join("\t%s" % line for line in body_lines)
    return (".text\n.globl main\nmain:\n"
            "\tmovl $%d, %%ecx\n"
            ".Lloop:\n%s\n"
            "\tsubl $1, %%ecx\n"
            "\tjne .Lloop\n"
            "\tret\n" % (trip, body))


class TestLoopExtraction:
    def test_finds_the_kernel_loops(self):
        from repro.ir import parse_unit
        unit = parse_unit(kernels.eon_loop())
        loops = find_loops(unit, unit.functions[0])
        assert ".Lloop" in [loop.label for loop in loops]

    def test_innermost_largest_is_selected(self):
        from repro.ir import parse_unit
        unit = parse_unit(kernels.nested_short_loops())
        loops = find_loops(unit, unit.functions[0])
        selected = select_loop(loops, None)
        assert selected is not None
        assert not selected.contains_loop

    def test_explicit_loop_label_overrides(self):
        prediction = predict(kernels.nested_short_loops(), core2(),
                             loop=".Lrow")
        assert prediction.loop_label == ".Lrow"

    def test_unknown_loop_label_raises(self):
        with pytest.raises(PredictError):
            predict(kernels.eon_loop(), core2(), loop=".Lnope")

    def test_unknown_function_raises(self):
        with pytest.raises(PredictError):
            predict(kernels.eon_loop(), core2(), function="ghost")

    def test_straight_line_function_predicts(self):
        source = (".text\n.globl main\nmain:\n"
                  "\taddl $1, %eax\n\tret\n")
        prediction = predict(source, core2())
        assert prediction.loop_label is None
        assert prediction.cycles > 0


class TestBounds:
    CORES = [core2, opteron]

    @pytest.mark.parametrize("make_model", CORES,
                             ids=lambda f: f.__name__)
    @pytest.mark.parametrize("workload", [
        kernels.eon_loop, kernels.fig4_loop, kernels.hash_bench,
        kernels.mcf_fig1, kernels.nested_short_loops,
    ], ids=lambda f: f.__name__)
    def test_prediction_is_max_of_bounds(self, workload, make_model):
        p = predict(workload(), make_model())
        assert p.cycles == pytest.approx(
            max(p.port_bound, p.latency_bound, p.frontend_bound))
        # Each individual bound is a lower bound on the prediction.
        assert p.port_bound <= p.cycles + 1e-9
        assert p.latency_bound <= p.cycles + 1e-9
        assert p.frontend_bound <= p.cycles + 1e-9
        assert p.bottleneck in ("ports", "latency", "frontend")

    def test_port_pressure_accounts_all_port_uops(self):
        p = predict(kernels.hash_bench(), core2())
        # Water-filled pressure conserves the uop count (NOP-class
        # uops route to no port and are excluded).
        assert sum(p.port_pressure.values()) <= p.uops + 1e-9
        assert max(p.port_pressure.values()) <= p.port_bound + 1e-9

    def test_serial_chain_is_latency_bound(self):
        p = predict(loop_source(["imull $3, %eax, %eax"] * 4), core2())
        assert p.bottleneck == "latency"
        assert p.latency_bound >= 12  # 4 x 3-cycle multiply, carried
        carried = [row for row in p.critical_path
                   if row.get("loop_carried")]
        assert carried

    def test_independent_stream_is_not_latency_bound(self):
        body = ["addl $1, %%r%dd" % n for n in (8, 9, 10, 11, 12, 13)]
        p = predict(loop_source(body), core2())
        assert p.latency_bound < p.cycles or p.bottleneck != "latency"

    def test_lea_port_restriction_raises_port_bound(self):
        # §III.F: lea only on port 0 on core2 — a lea-only body
        # serializes on that port; opteron spreads it over 3 ALUs.
        body = ["leal 1(%%r%dd), %%r%dd" % (n, n)
                for n in (8, 9, 10, 11, 12, 13)]
        intel = predict(loop_source(body), core2())
        amd = predict(loop_source(body), opteron())
        assert intel.port_bound >= len(body)
        assert amd.port_bound < intel.port_bound

    def test_assume_lsd_lowers_frontend_when_streamable(self):
        base = predict(kernels.fig4_loop(), core2(), loop=".Ll0")
        lsd = predict(kernels.fig4_loop(), core2(), loop=".Ll0",
                      assume_lsd=True)
        if base.lsd_streamable:
            assert lsd.frontend_bound <= base.frontend_bound

    def test_prediction_document_shape(self):
        doc = predict(kernels.eon_loop(), core2()).to_dict()
        assert doc["schema"] == PREDICT_SCHEMA
        assert set(doc["bounds"]) == {"ports", "latency", "frontend"}
        assert len(doc["ranking"]) == 2
        assert doc["cycles"] == max(doc["bounds"].values())

    def test_explain_renders_pressure_and_path(self):
        text = predict(kernels.hash_bench(), core2()).explain()
        assert "bottleneck" in text
        assert "port pressure" in text
        assert "bounds (cycles/iteration):" in text


#: Small instruction pool for the growth property.  Each template only
#: touches its own scratch register (and none reads flags), so adding
#: one can never *break* another's dependency chain — the precondition
#: under which prediction growth is guaranteed.
_POOL = [
    "addl $1, %r8d",
    "imull $3, %r9d, %r9d",
    "movl $7, %r10d",
    "shll $2, %r11d",
    "leal 5(%r12), %r12d",
    "movl 16(%rsp), %r13d",
]


class TestGrowthMonotonicity:
    """Adding an instruction can never make the *backend* prediction
    better: port pressure and dependency chains only grow.  The
    front-end bound is deliberately NOT monotone — it replays the
    decode-line walk over real encoded bytes, so an added instruction
    can push a later one across a line boundary and resynchronize the
    decoder (the paper's Fig. 1 single-NOP effect, pinned below).  The
    headline prediction therefore never drops below the grown backend
    bounds, which dominate the base backend bounds."""

    @given(body=st.lists(st.sampled_from(_POOL), min_size=1, max_size=10),
           extra=st.sampled_from(_POOL))
    @settings(max_examples=30, deadline=None)
    def test_adding_never_improves_backend_bounds(self, body, extra):
        base = predict(loop_source(body), core2())
        grown = predict(loop_source(body + [extra]), core2())
        assert grown.port_bound >= base.port_bound - 1e-9
        assert grown.latency_bound >= base.latency_bound - 1e-9
        assert grown.decode_lines >= base.decode_lines
        assert grown.uops > base.uops
        assert grown.cycles >= max(base.port_bound,
                                   base.latency_bound) - 1e-9

    @given(body=st.lists(st.sampled_from(_POOL), min_size=1, max_size=8),
           extra=st.sampled_from(_POOL))
    @settings(max_examples=15, deadline=None)
    def test_growth_holds_on_opteron_too(self, body, extra):
        base = predict(loop_source(body), opteron())
        grown = predict(loop_source(body + [extra]), opteron())
        assert grown.port_bound >= base.port_bound - 1e-9
        assert grown.latency_bound >= base.latency_bound - 1e-9
        assert grown.cycles >= max(base.port_bound,
                                   base.latency_bound) - 1e-9

    def test_frontend_alignment_cliff_is_modelled(self):
        """The reason full-cycle monotonicity is not a theorem: a 7th
        addl straddles a 16-byte decode line, resetting the 4-wide
        decode counter, and the front-end bound *drops* from 4 to 3 —
        the Fig. 1 cliff, reproduced statically."""
        base = predict(loop_source(["addl $1, %r8d"] * 6), core2())
        grown = predict(loop_source(["addl $1, %r8d"] * 7), core2())
        assert grown.frontend_bound < base.frontend_bound
        # The cliff belongs to the front end alone; the backend bounds
        # still obey growth.
        assert grown.port_bound >= base.port_bound


_CASES = [(config, core)
          for config in bench_predict.CONFIGS
          for core in bench_predict.CORES]


class TestCrossValidation:
    """The predictor must stay inside the same pinned tolerance bands
    the BENCH_predict.json CI gate enforces — measured here against the
    simulator's steady state at the benchmark's --quick scales."""

    @pytest.mark.parametrize("config,core", _CASES,
                             ids=["%s-%s" % (c["name"], core)
                                  for c, core in _CASES])
    def test_predicted_ratio_in_pinned_band(self, config, core):
        _lo, hi = config["quick_scales"]
        source = config["factory"](hi)
        prediction = api.predict(source, core, loop=config["loop"])
        steady, _sim_s = bench_predict.steady_state_cycles(
            config, core, quick=True)
        assert steady > 0
        ratio = prediction.cycles / steady
        lo_band, hi_band = config["band"]
        assert lo_band <= ratio <= hi_band, (
            "%s on %s: predicted %.2f / simulated %.2f = %.3f outside "
            "pinned band [%.2f, %.2f]%s"
            % (config["name"], core, prediction.cycles, steady, ratio,
               lo_band, hi_band,
               " (documented divergence: %s)" % config["diverges"]
               if config["diverges"] else ""))
