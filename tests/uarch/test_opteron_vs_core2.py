"""Cross-platform behaviour checks: the same code, two models.

The paper's §V.B point is that identical transformations have different
effects on Intel vs AMD; these tests pin the model-level differences that
produce it.
"""

import pytest

from repro.ir import parse_unit
from repro.sim import run_unit
from repro.uarch import counters as C
from repro.uarch.pipeline import simulate_trace
from repro.uarch.profiles import core2, opteron


def both(source, max_steps=2_000_000):
    result = run_unit(parse_unit(source), collect_trace=True,
                      max_steps=max_steps)
    assert result.reason == "ret"
    return (simulate_trace(result.trace, core2()),
            simulate_trace(result.trace, opteron()))


def loop(body, trips, align=""):
    return f"""
.text
.globl main
main:
    movq ${trips}, %rbp
{align}
.Lloop:
{body}
    subq $1, %rbp
    jne .Lloop
    ret
"""


class TestWindowSizes:
    def test_17_byte_loop_crossing(self):
        """A body crossing a 16-byte line hurts Core-2 decode but fits an
        Opteron 32-byte window."""
        source = loop("    movss %xmm0,(%rdi,%rax,4)\n"
                      "    addq $1, %rax\n"
                      "    andq $7, %rax", 40,
                      align="    .p2align 4\n    nop\n" * 1 + "    nop\n"
                      * 10)
        intel, amd = both(source)
        # Intel sees two 16B lines/iter; AMD still one 32B window when
        # the body stays under its wider grid.
        assert intel[C.DECODE_LINES] >= amd[C.DECODE_LINES]

    def test_lsd_thresholds_differ(self):
        """A 40-iteration loop streams on Opteron (threshold 32) but not
        on Core-2 (threshold 64)."""
        source = loop("    addq $1, %rax", 40, align="    .p2align 5")
        intel, amd = both(source)
        assert intel[C.LSD_UOPS] == 0
        assert amd[C.LSD_UOPS] > 0

    def test_window_budget_differs(self):
        """A 3-line body streams on Core-2 (budget 4) but not Opteron
        (budget 1 window)."""
        body = "\n".join("    addl $%d, %%eax" % i for i in range(12))
        source = loop(body, 500, align="    .p2align 5")
        intel, amd = both(source)
        assert intel[C.LSD_UOPS] > 0
        assert amd[C.LSD_UOPS] == 0


class TestPredictorGeometry:
    def test_aliasing_distance_differs(self):
        """Branches 20 bytes apart alias on Core-2 (32-byte buckets) but
        not on Opteron (16-byte buckets)."""
        model_intel, model_amd = core2(), opteron()
        a = 0x1000
        b = 0x1000 + 20
        assert model_intel.bp_index(a) == model_intel.bp_index(b)
        assert model_amd.bp_index(a) != model_amd.bp_index(b)


class TestDecodeWidth:
    def test_wide_straightline_favors_core2(self):
        """4-wide Core-2 decodes dense 3-byte ALU runs faster than
        3-wide Opteron."""
        body = "\n".join("    addl $%d, %%eax" % i for i in range(8))
        source = loop(body, 30)
        intel, amd = both(source)
        assert intel.cycles < amd.cycles
