"""Tests for branch predictor, cache, and uop classification."""

import pytest

from repro.uarch import model as M
from repro.uarch.branch_predictor import BranchPredictor
from repro.uarch.cache import DataCache
from repro.uarch.classify import compute_class, uops_of
from repro.uarch.model import ProcessorModel
from repro.uarch.profiles import blinded_profile, core2, opteron, pentium4
from repro.x86.parser import parse_instruction


def insn(text):
    return parse_instruction(text).insn


class TestBranchPredictor:
    def test_biased_branch_learns(self):
        predictor = BranchPredictor(core2())
        for _ in range(10):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)
        assert predictor.mispredictions <= 1

    def test_aliasing_in_one_bucket(self):
        """Two branches 8 bytes apart share PC>>5 state (paper §III.C.g)."""
        predictor = BranchPredictor(core2())
        a, b = 0x1000, 0x1008
        assert core2().bp_index(a) == core2().bp_index(b)
        for _ in range(50):
            predictor.update(a, True)
            predictor.update(b, False)     # thrashes the shared counter
        assert predictor.mispredictions > 40

    def test_no_aliasing_across_buckets(self):
        predictor = BranchPredictor(core2())
        a, b = 0x1000, 0x1040
        assert core2().bp_index(a) != core2().bp_index(b)
        for _ in range(50):
            predictor.update(a, True)
            predictor.update(b, False)
        assert predictor.mispredictions <= 4

    def test_index_uses_shift(self):
        model = core2()
        assert model.bp_index(0x123) == (0x123 >> 5) % model.bp_table_size


class TestDataCache:
    def test_hit_after_fill(self):
        cache = DataCache(core2())
        assert not cache.access(0x1000)    # cold miss
        assert cache.access(0x1000)        # hit
        assert cache.access(0x103F)        # same 64-byte line

    def test_capacity_eviction(self):
        model = core2()
        cache = DataCache(model)
        lines = model.cache_ways + 2
        stride = model.cache_sets * model.cache_line_bytes
        for i in range(lines):
            cache.access(i * stride)       # all map to set 0
        assert not cache.access(0)          # evicted (LRU)
        assert cache.evictions >= 2

    def test_lru_order(self):
        model = core2()
        cache = DataCache(model)
        stride = model.cache_sets * model.cache_line_bytes
        for i in range(model.cache_ways):
            cache.access(i * stride)
        cache.access(0)                     # refresh line 0
        cache.access(model.cache_ways * stride)  # evicts line 1, not 0
        assert cache.access(0)

    def test_nta_fill_does_not_pollute(self):
        """§III.E.k: NTA fills replace a single way."""
        model = core2()
        cache = DataCache(model)
        stride = model.cache_sets * model.cache_line_bytes
        for i in range(model.cache_ways):
            cache.access(i * stride)        # fill the set
        nta_addr = 100 * stride
        cache.hint_nta(nta_addr)
        cache.access(nta_addr)              # non-temporal fill
        # The NTA line sits at LRU: the next fill evicts it, and all but
        # one of the originally resident lines survive.
        cache.access(101 * stride)
        assert not cache.contains(nta_addr)
        survivors = sum(cache.contains(i * stride)
                        for i in range(model.cache_ways))
        assert survivors >= model.cache_ways - 2


class TestClassification:
    @pytest.mark.parametrize("text,cls", [
        ("addl $1, %eax", M.ALU),
        ("leaq (%rax), %rbx", M.LEA),
        ("sarl %ecx", M.SHIFT),
        ("imull %ebx, %eax", M.MUL),
        ("idivl %ecx", M.DIV),
        ("jne .L", M.BRANCH),
        ("addsd %xmm0, %xmm1", M.FP_ADD),
        ("mulss %xmm0, %xmm1", M.FP_MUL),
        ("cmovel %eax, %ebx", M.CMOV),
        ("nop", M.NOP),
    ])
    def test_compute_class(self, text, cls):
        assert compute_class(insn(text)) == cls

    def test_load_op_splits_into_two_uops(self):
        uops = uops_of(insn("addl (%rdi), %eax"))
        assert [u[0] for u in uops] == [M.LOAD, M.ALU]

    def test_rmw_is_three_uops(self):
        uops = uops_of(insn("addl $1, (%rdi)"))
        assert [u[0] for u in uops] == [M.LOAD, M.ALU, M.STORE]

    def test_plain_store_is_one_uop(self):
        uops = uops_of(insn("movl %eax, (%rdi)"))
        assert [u[0] for u in uops] == [M.STORE]

    def test_plain_load_is_one_uop(self):
        uops = uops_of(insn("movl (%rdi), %eax"))
        assert [u[0] for u in uops] == [M.LOAD]

    def test_nop_has_no_ports(self):
        uops = uops_of(insn("nop"))
        assert uops == [(M.NOP, False, False)]
        assert core2().port_map[M.NOP] == ()

    def test_call_is_store_plus_branch(self):
        uops = uops_of(insn("call f"))
        assert [u[0] for u in uops] == [M.STORE, M.BRANCH]


class TestProfiles:
    def test_core2_paper_parameters(self):
        model = core2()
        assert model.decode_line_bytes == 16   # §III.C.e
        assert model.lsd_max_lines == 4        # §III.C.f
        assert model.lsd_min_iterations == 64  # §III.C.f
        assert model.bp_index_shift == 5       # §III.C.g
        assert model.port_map[M.LEA] == (0,)   # §III.F
        assert model.port_map[M.SHIFT] == (0, 5)

    def test_opteron_differs(self):
        intel, amd = core2(), opteron()
        assert amd.decode_line_bytes != intel.decode_line_bytes
        assert amd.bp_index_shift != intel.bp_index_shift
        assert amd.port_map[M.ALU] == (0, 1, 2)

    def test_pentium4_has_no_lsd(self):
        assert not pentium4().lsd_enabled

    def test_blinded_profiles_are_deterministic(self):
        # The documented seed contract: same seed => every hidden
        # parameter identical (dataclass == is field-wise), and the
        # draws never touch the global RNG.
        import random as _random

        for seed in (0, 5, 123):
            state = _random.getstate()
            a, b = blinded_profile(seed), blinded_profile(seed)
            assert a == b
            assert _random.getstate() == state

    def test_blinded_profile_name_is_cosmetic(self):
        import dataclasses

        a = blinded_profile(7)
        b = blinded_profile(7, name="mystery")
        assert a.name == "blinded-7" and b.name == "mystery"
        assert dataclasses.replace(b, name=a.name) == a

    def test_blinded_profiles_vary(self):
        values = {blinded_profile(seed).bp_index_shift
                  for seed in range(20)}
        assert len(values) > 1

    def test_cache_geometry(self):
        model = core2()
        assert model.cache_sets * model.cache_ways \
            * model.cache_line_bytes == model.cache_size_bytes
