"""Golden + schema tests for the versioned profile tables.

The legacy processors used to be hard-coded Python constructors; they
now load from ``pymao.uarch/1`` documents under
``src/repro/uarch/data/``.  These tests pin the data files *field-wise*
against the historical constructor values (inlined below verbatim), so
a data edit that silently shifts a documented cliff fails loudly.
"""

import dataclasses
import json
import os

import pytest

from repro.uarch import model as M
from repro.uarch import tables
from repro.uarch.model import ProcessorModel
from repro.uarch.profiles import blinded_profile, core2, opteron, pentium4


def legacy_core2() -> ProcessorModel:
    """The pre-data-file ``core2()`` constructor, inlined verbatim."""
    return ProcessorModel(
        name="core2",
        decode_line_bytes=16,
        decode_width=4,
        lsd_enabled=True,
        lsd_max_lines=4,
        lsd_min_iterations=64,
        lsd_max_branches=4,
        bp_table_size=512,
        bp_index_shift=5,
        bp_mispredict_penalty=15,
        issue_width=4,
        num_ports=6,
        port_map={
            M.ALU: (0, 1, 5),
            M.LEA: (0,),            # §III.F: lea only on port 0
            M.SHIFT: (0, 5),        # §III.F: sarl on ports 0 and 5
            M.MUL: (1,),
            M.DIV: (0,),
            M.LOAD: (2,),
            M.STORE: (3,),
            M.BRANCH: (5,),
            M.FP_ADD: (1,),
            M.FP_MUL: (0,),
            M.FP_DIV: (0,),
            M.FP_MOV: (0, 1, 5),
            M.CMOV: (0, 1),
            M.NOP: (),
        },
        latency={
            M.ALU: 1, M.LEA: 1, M.SHIFT: 1, M.MUL: 3, M.DIV: 22,
            M.LOAD: 3, M.STORE: 1, M.BRANCH: 1,
            M.FP_ADD: 3, M.FP_MUL: 5, M.FP_DIV: 18, M.FP_MOV: 1,
            M.CMOV: 2, M.NOP: 0,
        },
        forwarding_bw=3,
        memory_latency=35,
    )


def legacy_opteron() -> ProcessorModel:
    """The pre-data-file ``opteron()`` constructor, inlined verbatim."""
    return ProcessorModel(
        name="opteron",
        decode_line_bytes=32,
        decode_width=3,
        lsd_enabled=True,
        lsd_max_lines=1,
        lsd_min_iterations=32,
        lsd_max_branches=1,
        lsd_stream_width=6,
        bp_table_size=1024,
        bp_index_shift=4,
        bp_mispredict_penalty=12,
        issue_width=3,
        num_ports=6,
        port_map={
            M.ALU: (0, 1, 2),
            M.LEA: (0, 1, 2),
            M.SHIFT: (0, 1, 2),
            M.MUL: (0,),
            M.DIV: (0,),
            M.LOAD: (3,),
            M.STORE: (4,),
            M.BRANCH: (2,),
            M.FP_ADD: (5,),
            M.FP_MUL: (5,),
            M.FP_DIV: (5,),
            M.FP_MOV: (5, 0),
            M.CMOV: (0, 1),
            M.NOP: (),
        },
        latency={
            M.ALU: 1, M.LEA: 2, M.SHIFT: 1, M.MUL: 3, M.DIV: 23,
            M.LOAD: 3, M.STORE: 1, M.BRANCH: 1,
            M.FP_ADD: 4, M.FP_MUL: 4, M.FP_DIV: 20, M.FP_MOV: 1,
            M.CMOV: 2, M.NOP: 0,
        },
        forwarding_bw=3,
        memory_latency=40,
    )


def legacy_pentium4() -> ProcessorModel:
    """The pre-data-file ``pentium4()`` constructor, inlined verbatim."""
    return ProcessorModel(
        name="pentium4",
        decode_line_bytes=16,
        decode_width=1,
        lsd_enabled=False,
        bp_table_size=256,
        bp_index_shift=5,
        bp_mispredict_penalty=24,
        issue_width=3,
        forwarding_bw=2,
        memory_latency=50,
    )


class TestGoldenProfiles:
    """Data files must be field-wise equal to the legacy constructors."""

    @pytest.mark.parametrize("factory,legacy", [
        (core2, legacy_core2),
        (opteron, legacy_opteron),
        (pentium4, legacy_pentium4),
    ])
    def test_field_wise_equal(self, factory, legacy):
        loaded, want = factory(), legacy()
        for field in dataclasses.fields(ProcessorModel):
            assert getattr(loaded, field.name) == getattr(want, field.name), \
                "field %r drifted from the legacy constructor" % field.name

    def test_port_order_preserved(self):
        """Port list order is tie-break preference — it must round-trip."""
        model = opteron()
        assert model.port_map[M.FP_MOV] == (5, 0)   # deliberately unsorted

    def test_each_call_independently_mutable(self):
        a, b = core2(), core2()
        assert a == b and a is not b
        a.latency[M.MUL] = 99
        assert b.latency[M.MUL] == 3


class TestRoundTrip:
    def test_model_doc_model(self):
        for name in tables.profile_names():
            model = tables.get_profile(name)
            doc = tables.model_to_doc(model)
            assert doc["schema"] == "pymao.uarch/1"
            again = tables.doc_to_model(doc)
            assert again == model

    def test_save_load(self, tmp_path):
        path = os.path.join(str(tmp_path), "prof.json")
        tables.save_profile(core2(), path)
        assert tables.load_profile(path) == core2()

    def test_doc_json_stable(self, tmp_path):
        path = os.path.join(str(tmp_path), "prof.json")
        tables.save_profile(opteron(), path)
        with open(path) as handle:
            first = handle.read()
        tables.save_profile(tables.load_profile(path), path)
        with open(path) as handle:
            assert handle.read() == first


class TestRegistry:
    def test_data_only_profiles_present(self):
        names = tables.profile_names()
        for name in ("core2", "opteron", "pentium4", "skylake", "zen"):
            assert name in names
        assert len(names) >= 5

    def test_data_only_profiles_simulate(self):
        """skylake/zen need zero Python code — load and predict."""
        from repro import api
        from repro.workloads import kernels
        unit = api.optimize(kernels.fig4_loop()).unit
        for name in ("skylake", "zen"):
            model = tables.get_profile(name)
            assert model.name == name
            result = api.predict(unit, name)
            assert result.cycles > 0

    def test_unknown_profile(self):
        with pytest.raises(tables.ProfileError):
            tables.get_profile("i486")


class TestResolveCore:
    def test_name(self):
        assert tables.resolve_core("core2") == core2()

    def test_model_passthrough(self):
        model = blinded_profile(3)
        assert tables.resolve_core(model) is model

    def test_inline_doc(self):
        doc = tables.model_to_doc(core2())
        assert tables.resolve_core(doc) == core2()

    def test_path(self, tmp_path):
        path = os.path.join(str(tmp_path), "c.json")
        tables.save_profile(opteron(), path)
        assert tables.resolve_core(path) == opteron()

    def test_unknown_name_error_lists_registry(self):
        with pytest.raises(tables.ProfileError, match="core2"):
            tables.resolve_core("not-a-core")


class TestValidator:
    def _doc(self):
        return tables.model_to_doc(core2())

    def test_wrong_schema(self):
        doc = self._doc()
        doc["schema"] = "pymao.uarch/99"
        with pytest.raises(tables.ProfileError, match="schema"):
            tables.validate_doc(doc)

    def test_missing_section(self):
        doc = self._doc()
        del doc["frontend"]
        with pytest.raises(tables.ProfileError):
            tables.validate_doc(doc)

    def test_bad_type(self):
        doc = self._doc()
        doc["frontend"]["decode_line_bytes"] = "sixteen"
        with pytest.raises(tables.ProfileError):
            tables.validate_doc(doc)

    def test_bad_port(self):
        doc = self._doc()
        doc["instructions"]["alu"]["ports"] = [0, "one"]
        with pytest.raises(tables.ProfileError):
            tables.validate_doc(doc)

    def test_unknown_class_rejected(self):
        doc = self._doc()
        doc["instructions"]["warp_drive"] = {"latency": 1, "ports": [0]}
        with pytest.raises(tables.ProfileError):
            tables.validate_doc(doc)

    def test_not_a_dict(self):
        with pytest.raises(tables.ProfileError):
            tables.validate_doc([1, 2, 3])

    def test_meta_is_opaque(self):
        doc = self._doc()
        doc["meta"] = {"anything": {"goes": ["here", 1, None]}}
        tables.validate_doc(doc)
        assert tables.doc_to_model(doc) == core2()


class TestBlindedRanges:
    def test_ranges_drive_blinded_profile(self):
        """Every drawn path's value must come from its choices list."""
        ranges = tables.load_ranges()
        for seed in (0, 3, 7, 11):
            model = blinded_profile(seed)
            for entry in ranges["draws"]:
                value = tables.param_value(model, entry["path"])
                assert value in entry["choices"], \
                    (seed, entry["path"], value)

    def test_seed_purity(self):
        assert blinded_profile(5) == blinded_profile(5)
        assert blinded_profile(5) != blinded_profile(6)

    def test_legacy_seed_values_stable(self):
        """Appending draws must not disturb historical seeds."""
        model = blinded_profile(3)
        assert model.latency[M.MUL] == 3
        assert model.decode_line_bytes == 16
