"""Unit tests for the LSD tracker's loop-eligibility rules (§III.C.f)."""

import pytest

from repro.ir import parse_unit
from repro.sim import run_unit
from repro.uarch import counters as C
from repro.uarch.pipeline import _LsdTracker, simulate_trace
from repro.uarch.profiles import core2


def stats_for(source, model=None, max_steps=2_000_000):
    result = run_unit(parse_unit(source), collect_trace=True,
                      max_steps=max_steps)
    assert result.reason == "ret"
    return simulate_trace(result.trace, model or core2())


def loop(body, trips, align=True):
    directive = "    .p2align 4" if align else ""
    return f"""
.text
.globl main
main:
    movq ${trips}, %rbp
{directive}
.Lloop:
{body}
    subq $1, %rbp
    jne .Lloop
    ret
"""


class TestEligibility:
    def test_minimum_iterations(self):
        """Paper: "The loop must execute a minimum of 64 iterations"."""
        threshold = core2().lsd_min_iterations
        below = stats_for(loop("    addq $1, %rax", threshold - 2))
        at = stats_for(loop("    addq $1, %rax", threshold + 50))
        assert below[C.LSD_UOPS] == 0
        assert at[C.LSD_UOPS] > 0

    def test_line_budget(self):
        """"must not span more than four 16-byte decoding lines"."""
        small = "\n".join("    addl $%d, %%eax" % i for i in range(12))
        big = "\n".join("    addl $%d, %%eax" % i for i in range(30))
        assert stats_for(loop(small, 500))[C.LSD_UOPS] > 0
        assert stats_for(loop(big, 500))[C.LSD_UOPS] == 0

    def test_branch_type_restriction(self):
        """"may only contain certain types of branches" — a call inside
        the body disqualifies the loop."""
        source = """
.text
.globl main
main:
    movq $300, %rbp
.Lloop:
    call helper
    subq $1, %rbp
    jne .Lloop
    ret
.type helper, @function
helper:
    ret
"""
        assert stats_for(source)[C.LSD_UOPS] == 0

    def test_internal_forward_branch_allowed(self):
        body = """
    testq $1, %rbp
    je .Lskip
    addq $1, %rax
.Lskip:
    addq $2, %rbx
"""
        stats = stats_for(loop(body, 500))
        assert stats[C.LSD_UOPS] > 0

    def test_too_many_branches_disqualify(self):
        body = "\n".join("""
    testq $%d, %%rbp
    je .Ls%d
    addq $1, %%rax
.Ls%d:""" % (1 << i, i, i) for i in range(5))
        stats = stats_for(loop(body, 400))
        assert stats[C.LSD_UOPS] == 0

    def test_nested_inner_loop_resets_candidate(self):
        source = """
.text
.globl main
main:
    movq $100, %rbx
.Louter:
    movq $3, %rbp
.Linner:
    addq $1, %rax
    subq $1, %rbp
    jne .Linner
    subq $1, %rbx
    jne .Louter
    ret
"""
        # Neither loop reaches 64 *consecutive* iterations of one branch.
        assert stats_for(source)[C.LSD_UOPS] == 0


class TestTrackerObject:
    def test_reset_clears_state(self):
        tracker = _LsdTracker(core2())
        tracker.branch_addr = 0x100
        tracker.iterations = 99
        tracker.active = True
        tracker.reset()
        assert tracker.branch_addr is None
        assert tracker.iterations == 0
        assert not tracker.active

    def test_activation_counted_once(self):
        stats = stats_for(loop("    addq $1, %rax", 800))
        assert stats[C.LSD_ACTIVE_LOOPS] == 1
