"""Differential tests for the steady-state loop fast-forward engine.

Fast-forwarding replaces validated loop iterations with one algebraic
state advance, so the only acceptable observable difference is wall
clock: every counter the pipeline produces must be bit-identical to the
retained full walk (``simulate_reference``), on every workload and both
processor models — including loops the engine must *refuse* (LSD
candidates below their activation threshold, backend-bound bodies whose
completion clocks drift).
"""

import pytest

from repro.ir import parse_unit
from repro.sim.interp import run_unit
from repro.uarch import pipeline as pipeline_mod
from repro.uarch.pipeline import (
    FastForwardEngine,
    PipelineSimulator,
    fast_forward_disabled,
    fast_forward_stats,
    reset_fast_forward_stats,
    simulate_reference,
    simulate_trace,
    simulate_unit,
)
from repro.uarch.profiles import core2, opteron
from repro.workloads import kernels

WORKLOADS = [
    ("fig1_nop", kernels.mcf_fig1(insert_nop=True, outer=12)),
    ("fig1_base", kernels.mcf_fig1(insert_nop=False, outer=12)),
    ("fig4_lsd", kernels.fig4_loop(shift_nops=6, iterations=300)),
    ("fig4_base", kernels.fig4_loop(shift_nops=0, iterations=300)),
    ("hash_fwd", kernels.hash_bench(trip=400)),
    ("hash_sched", kernels.hash_bench(scheduled=True, trip=400)),
    ("nested", kernels.nested_short_loops(outer=80)),
    ("eon", kernels.eon_loop(outer=40)),
]

MODELS = [core2, opteron]


def _ids(params):
    return [p[0] for p in params]


class TestBitIdenticalCounters:
    @pytest.mark.parametrize("name,source", WORKLOADS, ids=_ids(WORKLOADS))
    @pytest.mark.parametrize("make_model", MODELS,
                             ids=["core2", "opteron"])
    def test_materialized_trace(self, name, source, make_model):
        model = make_model()
        trace = run_unit(parse_unit(source), collect_trace=True).trace
        ref = simulate_reference(trace, model)
        fast = simulate_trace(trace, model, fast_forward=True)
        assert fast.counters == ref.counters

    @pytest.mark.parametrize("name,source", WORKLOADS, ids=_ids(WORKLOADS))
    @pytest.mark.parametrize("make_model", MODELS,
                             ids=["core2", "opteron"])
    def test_streaming_pipeline(self, name, source, make_model):
        model = make_model()
        trace = run_unit(parse_unit(source), collect_trace=True).trace
        ref = simulate_reference(trace, model)
        result, fast = simulate_unit(parse_unit(source), model)
        assert result.reason == "ret"
        assert fast.counters == ref.counters


class TestEngagement:
    def test_fast_forward_actually_skips(self):
        # The unshifted Fig. 4 loop is frontend-bound with an invariant
        # iteration signature: the engine must engage, not just validate.
        reset_fast_forward_stats()
        source = kernels.fig4_loop(shift_nops=0, iterations=600)
        run, stats = simulate_unit(parse_unit(source), core2())
        ff = fast_forward_stats()
        assert ff["loops_entered"] >= 1
        assert ff["iterations_fast_forwarded"] > 400
        assert ff["records_fast_forwarded"] > \
            0.9 * run.steps  # the walk skipped almost everything

    def test_refuses_drifting_backend_bound_loop(self):
        # The hash kernel's completion clocks fall further behind the
        # frontend every iteration; skipping it would be unsound and the
        # validator must keep refusing (while staying bit-identical,
        # which TestBitIdenticalCounters already pins).
        reset_fast_forward_stats()
        simulate_unit(parse_unit(kernels.hash_bench(trip=600)), core2())
        ff = fast_forward_stats()
        assert ff["records_fast_forwarded"] == 0
        assert ff["validation_failures"] > 0

    def test_exit_replays_partial_iteration_exactly(self):
        # Loop trip counts that are not multiples of the validation
        # period force the engine to drain a buffered partial iteration.
        model = core2()
        for trip in (97, 100, 103, 128):
            source = kernels.fig4_loop(shift_nops=0, iterations=trip)
            trace = run_unit(parse_unit(source), collect_trace=True).trace
            ref = simulate_reference(trace, model)
            fast = simulate_trace(trace, model, fast_forward=True)
            assert fast.counters == ref.counters, trip


class TestControls:
    def test_disabled_context_restores(self):
        assert pipeline_mod._FF_ENABLED
        with fast_forward_disabled():
            assert not pipeline_mod._FF_ENABLED
            assert not fast_forward_stats()["enabled"]
        assert pipeline_mod._FF_ENABLED

    def test_disabled_means_no_skipping(self):
        reset_fast_forward_stats()
        source = kernels.fig4_loop(shift_nops=0, iterations=300)
        with fast_forward_disabled():
            simulate_unit(parse_unit(source), core2())
        assert fast_forward_stats()["records_fast_forwarded"] == 0

    def test_engine_finish_equals_pipeline_finish(self):
        # An engine that never engages must be a transparent wrapper.
        model = core2()
        trace = run_unit(parse_unit(kernels.eon_loop(outer=4)),
                         collect_trace=True).trace
        pl = PipelineSimulator(model)
        for record in trace:
            pl.feed(record)
        ref = pl.finish()
        engine = FastForwardEngine(PipelineSimulator(model))
        for record in trace:
            engine.feed(record)
        assert engine.finish().counters == ref.counters
