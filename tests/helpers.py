"""Shared test utilities: assembling with the real GNU toolchain.

When binutils is available (``as`` + ``objcopy``), differential tests
compare PyMAO's encoder and relaxation output byte-for-byte against gas.
Tests using these helpers should be decorated with ``requires_binutils``.
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
import os

import pytest

HAVE_BINUTILS = (shutil.which("as") is not None
                 and shutil.which("objcopy") is not None)

requires_binutils = pytest.mark.skipif(
    not HAVE_BINUTILS, reason="GNU binutils (as/objcopy) not available")


def gas_assemble_text(asm_source: str) -> bytes:
    """Assemble with GNU as and return the raw .text section bytes."""
    with tempfile.TemporaryDirectory() as tmp:
        asm_path = os.path.join(tmp, "input.s")
        obj_path = os.path.join(tmp, "input.o")
        bin_path = os.path.join(tmp, "text.bin")
        with open(asm_path, "w") as handle:
            handle.write(asm_source)
        subprocess.run(["as", "--64", "-o", obj_path, asm_path],
                       check=True, capture_output=True)
        subprocess.run(["objcopy", "-O", "binary", "--only-section=.text",
                        obj_path, bin_path], check=True, capture_output=True)
        with open(bin_path, "rb") as handle:
            return handle.read()


def gas_encode_one(instruction_text: str) -> bytes:
    """Encoding gas produces for a single instruction."""
    return gas_assemble_text(".text\n\t%s\n" % instruction_text)


def gas_disassemble(obj_bytes_source: str) -> str:
    """Assemble source and return objdump -d output (for eyeballing)."""
    with tempfile.TemporaryDirectory() as tmp:
        asm_path = os.path.join(tmp, "input.s")
        obj_path = os.path.join(tmp, "input.o")
        with open(asm_path, "w") as handle:
            handle.write(obj_bytes_source)
        subprocess.run(["as", "--64", "-o", obj_path, asm_path],
                       check=True, capture_output=True)
        result = subprocess.run(["objdump", "-d", obj_path],
                                check=True, capture_output=True, text=True)
        return result.stdout


def mao_encode_one(instruction_text: str) -> bytes:
    """Encoding PyMAO produces for a single instruction."""
    from repro.x86.parser import parse_instruction, ParsedInstruction
    from repro.x86.encoder import encode_instruction

    parsed = parse_instruction(instruction_text)
    assert isinstance(parsed, ParsedInstruction), \
        "unparseable: %s" % instruction_text
    return encode_instruction(parsed.insn)


def mao_text_image(asm_source: str) -> bytes:
    """PyMAO's flat .text image after parsing + relaxation."""
    return mao_text_layout(asm_source).code_image()


def mao_text_layout(asm_source: str):
    from repro.ir import parse_unit
    from repro.analysis.relax import relax_section

    unit = parse_unit(asm_source)
    section = unit.get_section(".text")
    return relax_section(unit, section)


def masked(image: bytes, regions) -> bytes:
    """Zero out alignment-fill byte ranges so fill choice doesn't matter."""
    data = bytearray(image)
    for start, size in regions:
        for i in range(start, min(start + size, len(data))):
            data[i] = 0
    return bytes(data)
