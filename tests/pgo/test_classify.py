"""Hotness tiers: fraction-of-weight hot set, cold floor, caps."""

import pytest

from repro.pgo import PgoPolicy, ProfileEntry, classify, tier_for


def entry(digest_char, weight, epoch=1):
    return ProfileEntry(digest=digest_char * 64, epoch=epoch, weight=weight)


class TestTiers:
    def test_heaviest_prefix_is_hot_rest_is_warm(self):
        entries = [entry("a", 90.0), entry("b", 6.0), entry("c", 4.0)]
        decisions = classify(entries, PgoPolicy(hot_fraction=0.9))
        assert decisions["a" * 64].tier == "hot"
        assert decisions["b" * 64].tier == "warm"
        assert decisions["c" * 64].tier == "warm"

    def test_hot_fraction_one_makes_everything_profiled_hot(self):
        entries = [entry("a", 5.0), entry("b", 3.0)]
        decisions = classify(entries, PgoPolicy(hot_fraction=1.0))
        assert {d.tier for d in decisions.values()} == {"hot"}

    def test_zero_weight_is_cold_by_default(self):
        decisions = classify([entry("a", 10.0), entry("b", 0.0)])
        assert decisions["b" * 64].tier == "cold"

    def test_cold_weight_floor_applies(self):
        decisions = classify([entry("a", 10.0), entry("b", 2.0)],
                             PgoPolicy(cold_weight=3.0))
        assert decisions["a" * 64].tier == "hot"
        assert decisions["b" * 64].tier == "cold"

    def test_max_hot_caps_the_hot_set(self):
        entries = [entry("a", 50.0), entry("b", 40.0), entry("c", 9.0)]
        decisions = classify(entries,
                             PgoPolicy(hot_fraction=1.0, max_hot=1))
        tiers = {d.digest[0]: d.tier for d in decisions.values()}
        assert tiers == {"a": "hot", "b": "warm", "c": "warm"}

    def test_ties_break_by_digest_deterministically(self):
        entries = [entry("b", 10.0), entry("a", 10.0)]
        first = classify(entries, PgoPolicy(hot_fraction=0.5, max_hot=1))
        second = classify(list(reversed(entries)),
                          PgoPolicy(hot_fraction=0.5, max_hot=1))
        assert first == second
        assert first["a" * 64].tier == "hot"
        assert first["b" * 64].tier == "warm"

    def test_decision_carries_weight_and_epoch(self):
        decisions = classify([entry("a", 10.0, epoch=4)])
        decision = decisions["a" * 64]
        assert decision.weight == 10.0
        assert decision.epoch == 4


class TestTierFor:
    def test_unknown_digest_is_cold_epoch_zero(self):
        decision = tier_for("f" * 64, [entry("a", 10.0)])
        assert decision.tier == "cold"
        assert decision.epoch == 0
        assert decision.weight == 0.0

    def test_known_digest_matches_classify(self):
        entries = [entry("a", 10.0)]
        assert tier_for("a" * 64, entries) == classify(entries)["a" * 64]


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"hot_fraction": 0.0},
        {"hot_fraction": 1.5},
        {"cold_weight": -1.0},
        {"tune_budget": -1},
        {"tune_budget_per_input": 0},
    ])
    def test_bad_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PgoPolicy(**kwargs)
