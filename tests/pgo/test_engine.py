"""Re-optimization decisions and the profile-guided api surfaces."""

import pytest

from repro import api
from repro.batch.cache import ArtifactCache, source_sha256
from repro.pgo import (
    PgoPolicy,
    ProfileStore,
    build_profile,
    decide_many,
    decide_one,
)
from repro.workloads.kernels import eon_loop, fig4_loop, mcf_fig1

PERIOD = 101


@pytest.fixture()
def seeded(tmp_path):
    """A store with one heavy, one light, and one absent input."""
    store = ProfileStore(str(tmp_path / "profiles"))
    hot_src, warm_src = mcf_fig1(), eon_loop()
    store.ingest(build_profile(hot_src, period=PERIOD, weight=1000.0))
    store.ingest(build_profile(warm_src, period=PERIOD, weight=10.0))
    cache = ArtifactCache(str(tmp_path / "cache"), salt="engine-test")
    return store, cache, hot_src, warm_src


class TestDecisions:
    def test_tiers_map_to_origins(self, seeded):
        store, cache, hot_src, warm_src = seeded
        cold_src = ".text\n.globl main\nmain:\n  ret\n"
        decisions = decide_many(
            [("h", hot_src), ("w", warm_src), ("c", cold_src)],
            store=store, cache=cache,
            policy=PgoPolicy(tune_budget=64, tune_budget_per_input=8))
        hot = decisions[source_sha256(hot_src)]
        warm = decisions[source_sha256(warm_src)]
        cold = decisions[source_sha256(cold_src)]
        assert hot.tier == "hot" and hot.origin == "tune-winner"
        assert warm.tier == "warm" and warm.origin == "warm-default"
        assert warm.spec == "REDTEST:LOOP16"
        assert cold.tier == "cold" and cold.origin == "cold-baseline"
        assert cold.spec == "" and cold.spec_items == []
        assert cold.epoch == 0 and warm.epoch == 1

    def test_zero_budget_degrades_hot_to_warm_spec(self, seeded):
        store, cache, hot_src, _ = seeded
        decision = decide_one(hot_src, store=store, cache=cache,
                              policy=PgoPolicy(tune_budget=0))
        assert decision.tier == "hot"
        assert decision.origin == "budget-exhausted"
        assert decision.spec == "REDTEST:LOOP16"

    def test_duplicate_sources_share_one_decision(self, seeded):
        store, cache, hot_src, _ = seeded
        decisions = decide_many([("x", hot_src), ("y", hot_src)],
                                store=store, cache=cache,
                                policy=PgoPolicy(tune_budget=32,
                                                 tune_budget_per_input=8))
        assert len(decisions) == 1


class TestOptimizeProfileGuided:
    def test_decision_rides_on_the_result(self, seeded):
        store, cache, _, warm_src = seeded
        result = api.optimize(warm_src, profile_guided=True,
                              profile_dir=store.root, cache=cache)
        assert result.pgo["tier"] == "warm"
        assert result.pgo["spec"] == "REDTEST:LOOP16"
        assert result.to_dict()["pgo"] == result.pgo

    def test_round_trips_through_the_document(self, seeded):
        from repro.api import OptimizeResult

        store, cache, _, warm_src = seeded
        result = api.optimize(warm_src, profile_guided=True,
                              profile_dir=store.root, cache=cache)
        again = OptimizeResult.from_dict(result.to_dict())
        assert again.pgo == result.pgo

    def test_explicit_spec_conflicts(self, seeded):
        store, cache, _, warm_src = seeded
        with pytest.raises(ValueError):
            api.optimize(warm_src, "LOOP16", profile_guided=True,
                         profile_dir=store.root, cache=cache)

    def test_plain_optimize_has_no_pgo_doc(self):
        result = api.optimize(fig4_loop(), "LOOP16")
        assert result.pgo is None
        assert "pgo" not in result.to_dict()


class TestOptimizeManyProfileGuided:
    def test_items_carry_their_decisions_in_input_order(self, seeded):
        store, cache, hot_src, warm_src = seeded
        cold_src = ".text\n.globl main\nmain:\n  ret\n"
        result = api.optimize_many(
            [("h", hot_src), ("c", cold_src), ("w", warm_src)],
            profile_guided=True, cache=cache, profile_dir=store.root,
            pgo_policy=PgoPolicy(tune_budget=64, tune_budget_per_input=8))
        assert [item.name for item in result] == ["h", "c", "w"]
        assert result.spec == "<profile-guided>"
        tiers = [item.pgo["tier"] for item in result]
        assert tiers == ["hot", "cold", "warm"]
        assert all(item.ok for item in result)
        summary = result.to_dict()
        assert [row["pgo"]["tier"] for row in summary["files"]] == tiers

    def test_explicit_spec_conflicts(self, seeded):
        store, cache, _, warm_src = seeded
        with pytest.raises(ValueError):
            api.optimize_many([("w", warm_src)], "LOOP16",
                              profile_guided=True, cache=cache,
                              profile_dir=store.root)

    def test_unreadable_path_stays_an_error_item(self, seeded, tmp_path):
        store, cache, _, warm_src = seeded
        result = api.optimize_many(
            [("w", warm_src), str(tmp_path / "missing.s")],
            profile_guided=True, cache=cache, profile_dir=store.root)
        assert result.items[0].ok
        assert not result.items[1].ok
        assert result.items[1].pgo is None

    def test_second_run_hits_the_epoch_salted_cache(self, seeded):
        store, cache, _, warm_src = seeded
        inputs = [("w", warm_src)]
        first = api.optimize_many(inputs, profile_guided=True, cache=cache,
                                  profile_dir=store.root)
        second = api.optimize_many(inputs, profile_guided=True, cache=cache,
                                   profile_dir=store.root)
        assert first.items[0].cache == "miss"
        assert second.items[0].cache == "hit"

    def test_guided_emission_matches_static_default_for_warm(self, seeded):
        """A warm input's guided output is byte-identical to optimizing
        it with the default spec directly."""
        store, cache, _, warm_src = seeded
        guided = api.optimize_many([("w", warm_src)], profile_guided=True,
                                   cache=cache, profile_dir=store.root)
        static = api.optimize(warm_src, "REDTEST:LOOP16")
        assert guided.items[0].asm == static.unit.to_asm()
