"""Profile-epoch cache-salt injectivity and targeted invalidation.

The epoch-salting contract: folding an input's profile epoch into the
artifact-cache salt must (a) never collide across distinct ``(digest,
epoch, spec)`` triples, and (b) invalidate exactly the re-profiled
input's cached entries on an epoch bump — never the whole store.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.cache import ArtifactCache
from repro.pgo import ProfileStore, build_profile, pgo_cache_salt

SOURCES = st.text(min_size=1, max_size=40)
EPOCHS = st.integers(min_value=0, max_value=10_000)
SPECS = st.text(alphabet="ABCDEF:16", min_size=0, max_size=12)


def cache_key(base_salt, epoch, source, spec_encoding):
    # key_for never touches the disk, so a dummy root is fine here.
    cache = ArtifactCache("/nonexistent",
                          salt=pgo_cache_salt(base_salt, epoch))
    return cache.key_for(source, spec_encoding)


class TestSaltInjectivity:
    def test_salt_is_injective_in_the_epoch(self):
        salts = {pgo_cache_salt("base", epoch) for epoch in range(1000)}
        assert len(salts) == 1000

    def test_epoch_salt_never_collides_with_an_unsalted_epoch_suffix(self):
        # "base|pgo-epoch=1" under epoch 2 vs "base" under... there is no
        # way to confuse the two while the base salt is fixed: a decimal
        # suffix cannot contain '|pgo-epoch=' again.
        assert pgo_cache_salt("base", 12) != pgo_cache_salt("base|pgo-epoch=1", 2)

    @settings(max_examples=200, deadline=None)
    @given(a=st.tuples(SOURCES, EPOCHS, SPECS),
           b=st.tuples(SOURCES, EPOCHS, SPECS))
    def test_distinct_triples_never_share_a_key(self, a, b):
        if a == b:
            return
        key_a = cache_key("base", a[1], a[0], a[2])
        key_b = cache_key("base", b[1], b[0], b[2])
        assert key_a != key_b

    def test_key_depends_on_each_component(self):
        base = cache_key("base", 1, "src", "SPEC")
        assert cache_key("base", 2, "src", "SPEC") != base
        assert cache_key("base", 1, "src2", "SPEC") != base
        assert cache_key("base", 1, "src", "SPEC2") != base


class TestTargetedInvalidation:
    def test_epoch_bump_misses_exactly_the_reprofiled_input(self, tmp_path):
        """Two profiled inputs, one gets a new profile: the other's
        profile-guided cache entries must keep hitting."""
        from repro import api
        from repro.workloads.kernels import eon_loop, fig4_loop

        store = ProfileStore(str(tmp_path / "profiles"))
        cache = ArtifactCache(str(tmp_path / "cache"), salt="inv-test")
        src_a, src_b = fig4_loop(), eon_loop()
        store.ingest(build_profile(src_a, period=101, weight=50.0))
        store.ingest(build_profile(src_b, period=101, weight=40.0))

        def run():
            result = api.optimize_many(
                [("a", src_a), ("b", src_b)], profile_guided=True,
                cache=cache, profile_dir=str(tmp_path / "profiles"))
            return {item.name: item.cache for item in result}

        assert run() == {"a": "miss", "b": "miss"}
        assert run() == {"a": "hit", "b": "hit"}

        # Re-profile input a with a different weight: its epoch bumps.
        store.ingest(build_profile(src_a, period=101, weight=75.0))
        assert run() == {"a": "miss", "b": "hit"}
        assert run() == {"a": "hit", "b": "hit"}

    def test_identical_reingest_invalidates_nothing(self, tmp_path):
        from repro import api
        from repro.workloads.kernels import fig4_loop

        store = ProfileStore(str(tmp_path / "profiles"))
        cache = ArtifactCache(str(tmp_path / "cache"), salt="noop-test")
        source = fig4_loop()
        document = build_profile(source, period=101, weight=50.0)
        store.ingest(document)

        def run():
            result = api.optimize_many(
                [("k", source)], profile_guided=True, cache=cache,
                profile_dir=str(tmp_path / "profiles"))
            return result.items[0].cache

        assert run() == "miss"
        store.ingest(document)     # same weight: no epoch bump
        assert run() == "hit"

    def test_profile_store_never_shares_the_cache_root(self, tmp_path):
        """An eviction sweep of the artifact cache walks every *.json
        under its root and unlinks them — the profile store must live
        elsewhere or profiles evaporate under cache pressure."""
        store = ProfileStore(str(tmp_path / "profiles"))
        cache = ArtifactCache(str(tmp_path / "cache"), salt="roots",
                              max_bytes=1)   # evict everything on put
        digest = hashlib.sha256(b"x").hexdigest()
        store.ingest({"digest": digest, "weight": 9.0})
        cache.put(cache.key_for("src", "SPEC"), ".text\n", {"schema": "x"})
        assert store.get(digest) is not None
