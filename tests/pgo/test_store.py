"""ProfileStore: atomic publish, epoch semantics, corruption tolerance."""

import json
import os

import pytest

from repro.pgo import (
    PROFILE_SCHEMA,
    ProfileStore,
    build_profile,
    default_profile_dir,
    validate_profile,
)

DIGEST_A = "a" * 64
DIGEST_B = "b" * 64


def doc(digest=DIGEST_A, weight=100.0, **extra):
    base = {"schema": PROFILE_SCHEMA, "digest": digest, "weight": weight,
            "samples": 10, "steps": 1000, "period": 100, "seed": 7}
    base.update(extra)
    return base


class TestIngestAndEpochs:
    def test_new_entry_starts_at_epoch_one(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        entry = store.ingest(doc())
        assert entry.epoch == 1
        assert entry.weight == 100.0
        assert store.epoch(DIGEST_A) == 1

    def test_identical_reingest_is_idempotent(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc())
        entry = store.ingest(doc())
        assert entry.epoch == 1

    def test_weight_change_bumps_epoch(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc(weight=100.0))
        entry = store.ingest(doc(weight=250.0))
        assert entry.epoch == 2
        assert store.get(DIGEST_A).weight == 250.0

    def test_unknown_digest_is_epoch_zero(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        assert store.epoch(DIGEST_B) == 0
        assert store.get(DIGEST_B) is None

    def test_client_supplied_epoch_is_ignored(self, tmp_path):
        """Epochs belong to the store, not the sender — a forged epoch in
        the ingested document must not leak into versioning."""
        store = ProfileStore(str(tmp_path))
        entry = store.ingest(doc(epoch=99))
        assert entry.epoch == 1

    def test_entries_sorted_by_digest_and_total_weight(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc(digest=DIGEST_B, weight=5.0))
        store.ingest(doc(digest=DIGEST_A, weight=7.0))
        entries = store.entries()
        assert [e.digest for e in entries] == [DIGEST_A, DIGEST_B]
        assert store.total_weight() == 12.0


class TestRobustness:
    def test_publish_leaves_no_temp_files(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc())
        leftovers = [name for _, _, names in os.walk(str(tmp_path))
                     for name in names if name.startswith(".tmp-")]
        assert leftovers == []

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc())
        path = os.path.join(str(tmp_path), DIGEST_A[:2],
                            DIGEST_A + ".json")
        with open(path, "w") as handle:
            handle.write("{ torn")
        assert store.get(DIGEST_A) is None
        assert not os.path.exists(path)

    def test_wrong_digest_inside_entry_is_a_miss(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc())
        path = os.path.join(str(tmp_path), DIGEST_A[:2],
                            DIGEST_A + ".json")
        with open(path, "w") as handle:
            json.dump(doc(digest=DIGEST_B), handle)
        assert store.get(DIGEST_A) is None

    def test_corrupt_entries_are_skipped_by_entries_walk(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.ingest(doc(digest=DIGEST_A))
        store.ingest(doc(digest=DIGEST_B))
        path = os.path.join(str(tmp_path), DIGEST_A[:2],
                            DIGEST_A + ".json")
        with open(path, "w") as handle:
            handle.write("not json")
        assert [e.digest for e in store.entries()] == [DIGEST_B]


class TestValidation:
    @pytest.mark.parametrize("bad", [
        None, [], "x",
        {"schema": "pymao.other/1", "digest": DIGEST_A, "weight": 1},
        {"schema": PROFILE_SCHEMA, "digest": "short", "weight": 1},
        {"schema": PROFILE_SCHEMA, "digest": "Z" * 64, "weight": 1},
        {"schema": PROFILE_SCHEMA, "digest": DIGEST_A, "weight": "heavy"},
        {"schema": PROFILE_SCHEMA, "digest": DIGEST_A, "weight": -1},
        {"schema": PROFILE_SCHEMA, "digest": DIGEST_A, "weight": True},
        {"schema": PROFILE_SCHEMA, "digest": DIGEST_A, "weight": 1,
         "samples": -2},
        {"schema": PROFILE_SCHEMA, "digest": DIGEST_A, "weight": 1,
         "seed": "lucky"},
    ])
    def test_bad_documents_are_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_profile(bad)

    def test_schema_defaults_when_absent(self):
        entry = validate_profile({"digest": DIGEST_A, "weight": 3})
        assert entry.weight == 3.0

    def test_env_override_picks_the_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("PYMAO_PROFILE_DIR", str(tmp_path / "pp"))
        assert default_profile_dir() == str(tmp_path / "pp")


class TestBuildProfile:
    def test_document_matches_schema_and_digest(self):
        from repro.batch.cache import source_sha256
        from repro.workloads.kernels import fig4_loop

        source = fig4_loop()
        document = build_profile(source, period=50, seed=3)
        assert document["schema"] == PROFILE_SCHEMA
        assert document["digest"] == source_sha256(source)
        assert document["steps"] > 0
        assert document["weight"] == float(document["steps"])
        assert document["samples"] > 0
        validate_profile(document)

    def test_explicit_weight_overrides_steps(self):
        from repro.workloads.kernels import fig4_loop

        document = build_profile(fig4_loop(), period=50, weight=123.5)
        assert document["weight"] == 123.5
