"""Every transforming pass must preserve architectural semantics.

This substitutes (and strengthens) the paper's §III.A correctness check:
instead of comparing disassembly of untransformed files, we *execute* each
program before and after every optimization pass and compare final
registers and memory.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import run_unit

TRANSFORM_SPECS = [
    "REDZEE",
    "REDTEST",
    "REDMOV",
    "ADDADD",
    "LOOP16",
    "LSDFIT",
    "BRALIGN",
    "NOPIN=seed[5]+density[0.3]",
    "NOPKILL",
    "INSTRUMENT",
    "UNREACH",
    "CONSTFOLD",
    "SCHED",
    # The full combined pipeline.
    "REDZEE:REDTEST:REDMOV:ADDADD:CONSTFOLD:SCHED:LOOP16:NOPKILL",
]

COMPARE_GROUPS = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi",
                  "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]


def _data_bytes(memory):
    """{address: byte} for the static-data window.

    The code image and the stack are excluded: passes legitimately change
    .text bytes, and stack slots hold return addresses that move with the
    code layout."""
    from repro.sim.loader import DATA_BASE

    snapshot = {}
    for address, data in memory.nonzero_ranges():
        for i, byte in enumerate(data):
            a = address + i
            if DATA_BASE <= a < 0x10000000:
                snapshot[a] = byte
    return snapshot


def run_with_delta(source, max_steps):
    """Run a program; returns (result, execution-written data delta).

    Loader-materialized contents (e.g. jump tables of code addresses,
    which move with layout) are subtracted out: only bytes the *program*
    wrote count."""
    from repro.sim import Interpreter, load_unit

    unit = parse_unit(source)
    program = load_unit(unit)
    initial = _data_bytes(program.memory)
    interp = Interpreter(program, max_steps=max_steps)
    result = interp.run()
    final = _data_bytes(program.memory)
    delta = {a: b for a, b in final.items() if initial.get(a, 0) != b}
    delta.update({a: 0 for a in initial if a not in final})
    return result, delta


def check_equivalence(source, spec, max_steps=300_000,
                      compare_groups=COMPARE_GROUPS):
    before, before_delta = run_with_delta(source, max_steps)
    assert before.reason == "ret", "baseline must terminate"
    unit = parse_unit(source)
    run_passes(unit, spec)
    after, after_delta = run_with_delta(unit.to_asm(), max_steps)
    assert after.reason == "ret", "%s broke termination" % spec
    from repro.sim.loader import DATA_BASE, TEXT_BASE

    def is_code_address(value):
        return TEXT_BASE <= value < DATA_BASE

    for group in compare_groups:
        a, b = before.state.gp[group], after.state.gp[group]
        if is_code_address(a) and is_code_address(b):
            # Registers holding code pointers (jump-table entries, lea'd
            # labels) legitimately change when a pass moves code.
            continue
        assert a == b, "%s changed %%%s" % (spec, group)
    assert before_delta == after_delta, "%s changed memory" % spec


MIXED_PROGRAM = """
.text
.globl main
.type main, @function
main:
    push %rbp
    push %rbx
    leaq buffer(%rip), %rdi
    movl $12, %ecx
    xorq %rbx, %rbx
.Lfill:
    movl %ecx, -4(%rdi,%rcx,4)
    subl $1, %ecx
    jne .Lfill
    # Patterns for every peephole pass.
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    je .Lskip1
    addq $1, %rbx
.Lskip1:
    movq 24(%rsp), %rdx
    movq 24(%rsp), %rcx
    addq $3, %rsi
    addq $4, %rsi
    movl $5, %r9d
    addl $3, %r9d
    # Short loop for alignment passes.
    movl $80, %ecx
.Lhot:
    movl (%rdi,%rbx,4), %eax
    addl %eax, %r10d
    subl $1, %ecx
    jne .Lhot
    # Unreachable tail.
    jmp .Lend
    movl $777, %r11d
.Lend:
    call helper
    pop %rbx
    pop %rbp
    ret
.type helper, @function
helper:
    movl $2, %eax
    imull $21, %eax, %eax
    ret
.section .bss
.align 16
buffer:
    .zero 256
"""


@pytest.mark.parametrize("spec", TRANSFORM_SPECS)
def test_passes_preserve_mixed_program(spec):
    check_equivalence(MIXED_PROGRAM, spec)


@pytest.mark.parametrize("spec", ["REDZEE:REDTEST:REDMOV:ADDADD",
                                  "SCHED", "CONSTFOLD:UNREACH"])
def test_passes_preserve_corpus_functions(spec):
    """Corpus functions are analysis fodder; build a runnable main that
    calls a few of them after seeding registers."""
    from repro.workloads.corpus import CorpusConfig, generate_corpus_text

    corpus = generate_corpus_text(CorpusConfig(seed=9, scale=0.002))
    driver = """
.text
.globl main
.type main, @function
main:
    movq $1000, %rax
    movq $2000, %rbx
    call corpus_fn_000
    call corpus_fn_001
    ret
"""
    # Corpus code materializes jump-table pointers and derives scratch
    # values from them, so most registers are layout-dependent by
    # construction; the seeded accumulators and data memory must match.
    check_equivalence(driver + corpus, spec,
                      compare_groups=["rax", "rbx"])


@pytest.mark.parametrize("name", ["252.eon", "454.calculix", "429.mcf"])
def test_passes_preserve_spec_benchmarks(name):
    from repro.workloads.spec import build_benchmark

    program = build_benchmark(name)
    check_equivalence(program.source,
                      "LOOP16:NOPIN=seed[1]:REDMOV:REDTEST:SCHED",
                      max_steps=program.max_steps)


# ---------------------------------------------------------------------------
# Property-based: random programs, every pass.
# ---------------------------------------------------------------------------

@st.composite
def random_program(draw):
    """Small programs with data flow, branches, and pattern-pass bait."""
    lines = ["    movl $%d, %%eax" % draw(st.integers(0, 1000)),
             "    movl $%d, %%ebx" % draw(st.integers(0, 1000))]
    n_chunks = draw(st.integers(2, 6))
    for i in range(n_chunks):
        kind = draw(st.sampled_from(
            ["arith", "zext", "redtest", "redmov", "addadd", "branch",
             "loop"]))
        if kind == "arith":
            op = draw(st.sampled_from(["addl", "subl", "xorl", "andl"]))
            lines.append("    %s $%d, %%e%s"
                         % (op, draw(st.integers(0, 127)),
                            draw(st.sampled_from(["ax", "bx", "cx", "dx"]))))
        elif kind == "zext":
            lines += ["    andl $255, %eax", "    mov %eax, %eax"]
        elif kind == "redtest":
            lines += ["    subl $%d, %%ebx" % draw(st.integers(1, 50)),
                      "    testl %ebx, %ebx",
                      "    je .Lt%d" % i,
                      "    addl $1, %ecx",
                      ".Lt%d:" % i]
        elif kind == "redmov":
            lines += ["    movq 32(%rsp), %rdx", "    movq 32(%rsp), %rsi"]
        elif kind == "addadd":
            lines += ["    addq $%d, %%r8" % draw(st.integers(1, 40)),
                      "    addq $%d, %%r8" % draw(st.integers(1, 40))]
        elif kind == "branch":
            lines += ["    cmpl $%d, %%eax" % draw(st.integers(0, 500)),
                      "    jg .Lb%d" % i,
                      "    addl $2, %edx",
                      ".Lb%d:" % i]
        else:  # loop
            trips = draw(st.integers(1, 12))
            lines += ["    movl $%d, %%ecx" % trips,
                      ".Ll%d:" % i,
                      "    addl $1, %edi",
                      "    subl $1, %ecx",
                      "    jne .Ll%d" % i]
    return ".text\n.globl main\n.type main, @function\nmain:\n" \
        + "\n".join(lines) + "\n    ret\n"


@given(random_program(),
       st.sampled_from(["REDZEE:REDTEST:REDMOV:ADDADD",
                        "CONSTFOLD:UNREACH:SCHED",
                        "LOOP16:NOPKILL",
                        "NOPIN=seed[2]+density[0.2]"]))
@settings(max_examples=40, deadline=None)
def test_random_programs_equivalent_under_passes(source, spec):
    check_equivalence(source, spec, max_steps=50_000)
