"""Tests for the §V.A `as`-replacement integration script."""

import os
import subprocess

import pytest

import sys
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from helpers import HAVE_BINUTILS, requires_binutils  # noqa: E402

SCRIPT = os.path.join(os.path.dirname(__file__), "..", "..",
                      "scripts", "mao-as")

SOURCE = """
.text
.globl f
.type f, @function
f:
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""


@pytest.fixture
def asm(tmp_path):
    path = tmp_path / "in.s"
    path.write_text(SOURCE)
    return path


@requires_binutils
class TestAsReplacement:
    def test_optimizes_then_assembles(self, asm, tmp_path):
        obj = tmp_path / "out.o"
        subprocess.run([SCRIPT, "--mao=REDTEST", "--64",
                        "-o", str(obj), str(asm)], check=True)
        disasm = subprocess.run(["objdump", "-d", str(obj)],
                                capture_output=True, text=True,
                                check=True).stdout
        body = disasm.split("<f>:")[1]
        assert "sub" in body
        assert "\ttest" not in body    # REDTEST removed it

    def test_passthrough_without_mao_options(self, asm, tmp_path):
        """Without --mao= the script behaves like plain `as`."""
        obj = tmp_path / "out.o"
        subprocess.run([SCRIPT, "--64", "-o", str(obj), str(asm)],
                       check=True)
        disasm = subprocess.run(["objdump", "-d", str(obj)],
                                capture_output=True, text=True,
                                check=True).stdout
        body = disasm.split("<f>:")[1]
        assert "\ttest" in body        # untouched

    def test_multiple_passes(self, asm, tmp_path):
        obj = tmp_path / "out.o"
        subprocess.run([SCRIPT, "--mao=REDTEST:LOOP16", "--64",
                        "-o", str(obj), str(asm)], check=True)
        assert obj.exists()
