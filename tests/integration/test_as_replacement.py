"""Tests for the §V.A `as`-replacement integration script."""

import os
import subprocess

import pytest

import sys
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from helpers import HAVE_BINUTILS, requires_binutils  # noqa: E402

SCRIPT = os.path.join(os.path.dirname(__file__), "..", "..",
                      "scripts", "mao-as")


def mao_as_cmd(*args):
    """Command line for mao-as, robust to a lost executable bit.

    The script is plain Python, so when the checkout dropped its exec bit
    (archive round-trips do this) we can still run it via the interpreter.
    """
    if os.access(SCRIPT, os.X_OK):
        return [SCRIPT, *args]
    return [sys.executable, SCRIPT, *args]

SOURCE = """
.text
.globl f
.type f, @function
f:
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""


@pytest.fixture
def asm(tmp_path):
    path = tmp_path / "in.s"
    path.write_text(SOURCE)
    return path


@requires_binutils
class TestAsReplacement:
    def test_optimizes_then_assembles(self, asm, tmp_path):
        obj = tmp_path / "out.o"
        subprocess.run(mao_as_cmd("--mao=REDTEST", "--64",
                                   "-o", str(obj), str(asm)), check=True)
        disasm = subprocess.run(["objdump", "-d", str(obj)],
                                capture_output=True, text=True,
                                check=True).stdout
        body = disasm.split("<f>:")[1]
        assert "sub" in body
        assert "\ttest" not in body    # REDTEST removed it

    def test_passthrough_without_mao_options(self, asm, tmp_path):
        """Without --mao= the script behaves like plain `as`."""
        obj = tmp_path / "out.o"
        subprocess.run(mao_as_cmd("--64", "-o", str(obj), str(asm)),
                       check=True)
        disasm = subprocess.run(["objdump", "-d", str(obj)],
                                capture_output=True, text=True,
                                check=True).stdout
        body = disasm.split("<f>:")[1]
        assert "\ttest" in body        # untouched

    def test_multiple_passes(self, asm, tmp_path):
        obj = tmp_path / "out.o"
        subprocess.run(mao_as_cmd("--mao=REDTEST:LOOP16", "--64",
                                   "-o", str(obj), str(asm)), check=True)
        assert obj.exists()
