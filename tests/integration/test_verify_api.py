"""§III.A disassemble-and-compare, wired through the public API surface.

``api.verify`` accepts both raw source and an ``api.optimize`` result:
either way the O1/O2 round trip (assemble → re-parse + analyses →
re-emit → re-assemble → disassemble both) must come back textually
identical.  These are the acceptance examples: the tracked example
input, and an inline kernel that actually gets transformed first.
"""

import os

from repro import api, obs
from repro.obs.metrics import Registry
from repro.verify import VerifyResult

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "examples")

INLINE_SOURCE = """
.text
.globl hash_step
.type hash_step, @function
hash_step:
    andl $255, %eax
    mov %eax, %eax
    imull $31, %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""


class TestVerifySource:
    def test_example_input_round_trips(self):
        with open(os.path.join(EXAMPLES, "hot_loop.s")) as handle:
            source = handle.read()
        result = api.verify(source)
        assert isinstance(result, VerifyResult)
        assert result.identical
        assert result.first_diff is None

    def test_inline_source_round_trips(self):
        result = api.verify(INLINE_SOURCE)
        assert result.identical


class TestVerifyOptimizeResult:
    def test_optimized_output_survives_round_trip(self):
        """The paper's actual use: verify what the passes *emitted*."""
        optimized = api.optimize(INLINE_SOURCE,
                                 "REDZEE:REDTEST:REDMOV:ADDADD")
        # The passes really changed the unit — this is not a no-op check.
        assert "testl" not in optimized.to_asm()
        assert api.verify(optimized).identical

    def test_optimized_example_survives_round_trip(self):
        with open(os.path.join(EXAMPLES, "hot_loop.s")) as handle:
            source = handle.read()
        optimized = api.optimize(source, "REDTEST:LOOP16")
        assert api.verify(optimized).identical

    def test_verify_emits_span(self):
        """The facade participates in observability like every other
        api entry point."""
        obs.reset_tracer()
        obs.set_enabled(True)
        try:
            api.verify(INLINE_SOURCE)
            spans = obs.finish_spans()
        finally:
            obs.set_enabled(False)
            obs.reset_tracer()
        names = [span.name for span in spans]
        assert "verify" in names
        verify_span = spans[names.index("verify")]
        assert verify_span.attrs.get("identical") is True
