"""Tests for the `mao` command-line driver."""

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.cli import build_arg_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

SOURCE = """
.text
.globl f
.type f, @function
f:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "in.s"
    path.write_text(SOURCE)
    return path


class TestDriver:
    def test_list_passes(self, capsys):
        assert main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "REDTEST" in out
        assert "ASM" in out

    def test_analysis_only_run(self, asm_file):
        """Without an ASM pass nothing is emitted (matching MAO)."""
        assert main(["--mao=LFIND", str(asm_file)]) == 0

    def test_paper_command_line(self, asm_file, capsys):
        """The §III.A example: --mao=LFIND=trace[0]:ASM=o[/dev/null]."""
        assert main(["--mao=LFIND=trace[0]:ASM=o[/dev/null]",
                     str(asm_file)]) == 0

    def test_optimize_and_emit(self, asm_file, tmp_path):
        out = tmp_path / "out.s"
        assert main(["--mao=REDZEE:REDTEST:ASM=o[%s]" % out,
                     str(asm_file)]) == 0
        text = out.read_text()
        assert "testl" not in text
        assert "mov %eax, %eax" not in text

    def test_dash_o_shorthand(self, asm_file, tmp_path):
        out = tmp_path / "out.s"
        assert main(["--mao=REDTEST", "-o", str(out),
                     str(asm_file)]) == 0
        assert "f:" in out.read_text()

    def test_stats_flag(self, asm_file, capsys):
        assert main(["--mao=REDTEST", "--stats", str(asm_file)]) == 0
        err = capsys.readouterr().err
        assert "REDTEST" in err
        assert "removed=1" in err

    def test_time_flag(self, asm_file, capsys):
        assert main(["--mao=REDTEST", "--time", str(asm_file)]) == 0
        err = capsys.readouterr().err
        assert "parse:" in err and "passes:" in err

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["--mao=REDTEST"])

    def test_pass_order_from_spec(self):
        parser = build_arg_parser()
        args = parser.parse_args(["--mao=A:B", "--mao=C", "in.s"])
        assert args.mao == ["A:B", "C"]

    def test_module_entry_point(self, asm_file, tmp_path):
        out = tmp_path / "out.s"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli",
             "--mao=REDZEE:ASM=o[%s]" % out, str(asm_file)],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert out.exists()


BAD_SOURCE = """
.text
h:
    movq (((, %rax
"""


class TestBatchMode:
    """More than one input switches the driver to the corpus engine."""

    @pytest.fixture
    def corpus_dir(self, tmp_path):
        directory = tmp_path / "corpus"
        directory.mkdir()
        (directory / "a.s").write_text(SOURCE)
        (directory / "b.s").write_text(SOURCE.replace("f", "g"))
        return directory

    def test_multi_file_writes_output_dir(self, corpus_dir, tmp_path):
        out = tmp_path / "out"
        assert main(["--mao=REDTEST", "--no-cache", "-o", str(out),
                     str(corpus_dir / "a.s"),
                     str(corpus_dir / "b.s")]) == 0
        assert (out / "a.s").exists() and (out / "b.s").exists()
        assert "testl" not in (out / "a.s").read_text()

    def test_colliding_basenames_mirror_input_tree(self, tmp_path):
        """a/foo.s and b/foo.s must both survive -o DIR: the flat layout
        used to let the second silently overwrite the first."""
        for sub, body in (("a", SOURCE), ("b", SOURCE.replace("f", "g"))):
            directory = tmp_path / "tree" / sub
            directory.mkdir(parents=True)
            (directory / "foo.s").write_text(body)
        out = tmp_path / "out"
        assert main(["--mao=REDTEST", "--no-cache", "-o", str(out),
                     str(tmp_path / "tree" / "a" / "foo.s"),
                     str(tmp_path / "tree" / "b" / "foo.s")]) == 0
        assert (out / "a" / "foo.s").exists()
        assert (out / "b" / "foo.s").exists()
        assert (out / "a" / "foo.s").read_text() \
            != (out / "b" / "foo.s").read_text()

    def test_glob_expansion(self, corpus_dir, tmp_path):
        out = tmp_path / "out"
        assert main(["--mao=REDTEST", "--no-cache", "-o", str(out),
                     str(corpus_dir / "*.s")]) == 0
        assert sorted(p.name for p in out.iterdir()) == ["a.s", "b.s"]

    def test_parse_failure_keeps_going_and_exits_nonzero(
            self, corpus_dir, tmp_path, capsys):
        """One bad file must not abort the batch: the good files are
        still emitted, the failure is reported at the end, and the exit
        status is non-zero."""
        (corpus_dir / "bad.s").write_text(BAD_SOURCE)
        out = tmp_path / "out"
        status = main(["--mao=REDTEST", "--no-cache", "-o", str(out),
                       str(corpus_dir / "a.s"), str(corpus_dir / "bad.s"),
                       str(corpus_dir / "b.s")])
        assert status == 1
        assert (out / "a.s").exists() and (out / "b.s").exists()
        assert not (out / "bad.s").exists()
        err = capsys.readouterr().err
        assert "bad.s" in err and "ParseError" in err

    def test_unreadable_file_keeps_going(self, corpus_dir, tmp_path,
                                         capsys):
        status = main(["--mao=REDTEST", "--no-cache",
                       str(corpus_dir / "a.s"),
                       str(corpus_dir / "missing.s")])
        assert status == 1
        assert "missing.s" in capsys.readouterr().err

    def test_warm_run_hits_and_outputs_identical(self, corpus_dir,
                                                 tmp_path, capsys):
        cache = tmp_path / "cache"
        out1, out2 = tmp_path / "o1", tmp_path / "o2"
        argv = ["--mao=REDZEE:REDTEST", "--cache-dir", str(cache),
                "--time", str(corpus_dir / "a.s"), str(corpus_dir / "b.s")]
        assert main(argv + ["-o", str(out1)]) == 0
        first = capsys.readouterr().err
        assert "misses=2" in first
        assert main(argv + ["-o", str(out2)]) == 0
        second = capsys.readouterr().err
        assert "hits=2" in second
        for name in ("a.s", "b.s"):
            assert (out1 / name).read_text() == (out2 / name).read_text()

    def test_batch_summary_file(self, corpus_dir, tmp_path):
        summary = tmp_path / "batch.json"
        assert main(["--mao=REDTEST", "--no-cache", "--batch-summary",
                     str(summary), str(corpus_dir / "a.s"),
                     str(corpus_dir / "b.s")]) == 0
        data = json.loads(summary.read_text())
        assert data["schema"] == "pymao.batch/1"
        assert data["totals"]["files"] == 2

    def test_batch_stats_rows_carry_filename(self, corpus_dir, capsys):
        assert main(["--mao=REDTEST", "--no-cache", "--stats",
                     str(corpus_dir / "a.s"),
                     str(corpus_dir / "b.s")]) == 0
        err = capsys.readouterr().err
        rows = [line for line in err.splitlines() if "REDTEST" in line]
        assert len(rows) == 2
        assert "a.s" in rows[0] and "b.s" in rows[1]

    def test_sim_rejected_in_batch_mode(self, corpus_dir):
        with pytest.raises(SystemExit):
            main(["--mao=REDTEST", "--no-cache", "--sim", "core2",
                  str(corpus_dir / "a.s"), str(corpus_dir / "b.s")])


LOOP_SOURCE = """
.text
.globl main
main:
    movl $100, %ecx
.Lloop:
    addl $1, %r8d
    imull $3, %r9d, %r9d
    subl $1, %ecx
    jne .Lloop
    ret
"""


class TestPredictMode:
    """The `mao predict` verb and the driver's --predict flag."""

    @pytest.fixture
    def loop_file(self, tmp_path):
        path = tmp_path / "loop.s"
        path.write_text(LOOP_SOURCE)
        return path

    def test_predict_verb_summary_line(self, loop_file, capsys):
        assert main(["predict", "--core", "core2", str(loop_file)]) == 0
        out = capsys.readouterr().out
        assert "cycles/iteration" in out
        assert "loop=.Lloop" in out

    def test_predict_verb_json_document(self, loop_file, capsys):
        assert main(["predict", "--json", str(loop_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "pymao.predict/1"
        assert doc["loop"] == ".Lloop"
        assert doc["cycles"] == max(doc["bounds"].values())

    def test_predict_verb_explain(self, loop_file, capsys):
        assert main(["predict", "--explain", "--core", "opteron",
                     str(loop_file)]) == 0
        out = capsys.readouterr().out
        assert "port pressure" in out
        assert "bottleneck" in out

    def test_predict_verb_applies_pass_spec_first(self, loop_file):
        assert main(["predict", "--mao=REDTEST", str(loop_file)]) == 0

    def test_predict_verb_missing_file(self, tmp_path, capsys):
        assert main(["predict", str(tmp_path / "nope.s")]) == 1
        assert "mao predict:" in capsys.readouterr().err

    def test_predict_verb_bad_loop_label(self, loop_file, capsys):
        assert main(["predict", "--loop", ".Lzz", str(loop_file)]) == 1
        assert "mao predict:" in capsys.readouterr().err

    def test_driver_predict_flag_single_input(self, loop_file, capsys):
        assert main(["--mao=REDTEST", "--predict", "core2",
                     str(loop_file)]) == 0
        err = capsys.readouterr().err
        assert "predict[core2]:" in err
        assert "cycles/iter" in err

    def test_driver_predict_flag_ranks_batch(self, tmp_path, capsys):
        fast, slow = tmp_path / "fast.s", tmp_path / "slow.s"
        fast.write_text(LOOP_SOURCE)
        slow.write_text(LOOP_SOURCE.replace(
            "imull $3, %r9d, %r9d",
            "imull $3, %r9d, %r9d\n    imull $3, %r9d, %r9d"))
        assert main(["--mao=REDTEST", "--no-cache", "--predict", "core2",
                     str(fast), str(slow)]) == 0
        lines = [line for line in capsys.readouterr().err.splitlines()
                 if line.startswith("predict[core2]:")]
        assert len(lines) == 2
        # Ranked output: the shorter dependency chain wins.
        assert "fast.s" in lines[0] and "slow.s" in lines[1]


class TestTuneMode:
    """The `mao tune` verb."""

    @pytest.fixture
    def loop_file(self, tmp_path):
        path = tmp_path / "loop.s"
        path.write_text(LOOP_SOURCE)
        return path

    def test_tune_verb_summary_line(self, loop_file, capsys):
        assert main(["tune", "--core", "core2", "--no-cache",
                     str(loop_file)]) == 0
        out = capsys.readouterr().out
        assert "winner --mao=" in out
        assert "cycles/iteration" in out
        assert "stop=" in out

    def test_tune_verb_json_document(self, loop_file, capsys):
        assert main(["tune", "--json", "--no-cache",
                     str(loop_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "pymao.tune/1"
        assert doc["model"] == "core2"
        assert doc["winner"]["cycles"] \
            == doc["leaderboard"][0]["cycles"]

    def test_tune_verb_accepts_kernel_name(self, capsys):
        assert main(["tune", "--json", "--no-cache", "--budget", "4",
                     "fig4_loop"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pass_runs"]["executed"] <= 4

    def test_tune_verb_explain(self, loop_file, capsys):
        assert main(["tune", "--explain", "--no-cache",
                     str(loop_file)]) == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "candidates" in out

    def test_tune_verb_writes_winner_asm(self, loop_file, tmp_path,
                                         capsys):
        out_path = tmp_path / "tuned.s"
        assert main(["tune", "--no-cache", "-o", str(out_path),
                     str(loop_file)]) == 0
        from repro import api
        tuned = api.predict(out_path.read_text(), "core2").cycles
        default = api.predict(
            api.optimize(LOOP_SOURCE, "REDTEST:LOOP16").unit,
            "core2").cycles
        assert tuned <= default + 1e-9

    def test_tune_verb_cache_dir_warm_rerun(self, loop_file, tmp_path,
                                            capsys):
        argv = ["tune", "--json", "--cache-dir",
                str(tmp_path / "cache"), str(loop_file)]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["pass_runs"]["executed"] == 0
        assert warm["winner"] == cold["winner"]

    def test_tune_verb_missing_file(self, tmp_path, capsys):
        assert main(["tune", str(tmp_path / "nope.s")]) == 1
        assert "mao tune:" in capsys.readouterr().err

    def test_tune_verb_bad_budget(self, loop_file, capsys):
        assert main(["tune", "--budget", "-2", "--no-cache",
                     str(loop_file)]) == 1
        assert "mao tune:" in capsys.readouterr().err


class TestCacheStats:
    def test_cache_stats_format_pinned(self, asm_file, capsys):
        """Regression: the exact bytes --cache-stats writes (the
        --stats / --sim-stats fixed-format convention)."""
        obs.REGISTRY.reset()
        assert main(["--mao=REDTEST", "--cache-stats",
                     str(asm_file)]) == 0
        err = capsys.readouterr().err
        assert err == ("artifact-cache: hits=0 misses=0 stores=0 "
                       "evictions=0 hit-rate=0.0%\n"
                       "batch: files=0 errors=0\n")

    def test_cache_stats_counts_batch_traffic(self, tmp_path, capsys):
        src_a, src_b = tmp_path / "a.s", tmp_path / "b.s"
        src_a.write_text(SOURCE)
        src_b.write_text(SOURCE.replace("f", "g"))
        obs.REGISTRY.reset()
        argv = ["--mao=REDTEST", "--cache-dir", str(tmp_path / "cache"),
                "--cache-stats", str(src_a), str(src_b)]
        assert main(argv) == 0
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "artifact-cache: hits=2 misses=2 stores=2 evictions=0 " \
               "hit-rate=50.0%" in err
        assert "batch: files=4 errors=0" in err


class TestObservabilityFlags:
    """The api/obs redesign must not change what the old flags print."""

    def test_stats_output_byte_identical_to_pre_redesign(self, asm_file,
                                                         capsys):
        """Regression: the exact bytes the pre-``repro.obs`` driver
        wrote for this fixed input."""
        assert main(["--mao=REDZEE:REDTEST", "--stats",
                     str(asm_file)]) == 0
        err = capsys.readouterr().err
        assert err == ("REDZEE       f                        "
                       "candidates=1 removed=1\n"
                       "REDTEST      f                        "
                       "removed=1 tests=1\n")

    def test_sim_flag_reports_cycles(self, asm_file, capsys):
        assert main(["--mao=REDTEST", "--sim", "core2",
                     str(asm_file)]) == 0
        err = capsys.readouterr().err
        assert err.startswith("sim[core2]: cycles=")
        assert "ipc=" in err

    def test_sim_stats_format(self, asm_file, capsys):
        assert main(["--mao=REDTEST", "--sim", "core2", "--sim-stats",
                     str(asm_file)]) == 0
        err = capsys.readouterr().err
        assert "encoding-cache: hits=" in err
        assert "block-cache: compiled=" in err
        assert "fast-forward: loops=" in err

    def test_trace_out_writes_valid_nested_jsonl(self, asm_file,
                                                 tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["--mao=REDZEE:REDTEST", "--sim", "core2", "--jobs",
                     "2", "--trace-out", str(trace),
                     str(asm_file)]) == 0
        events = [json.loads(line)
                  for line in trace.read_text().splitlines()]
        assert events[0]["type"] == "meta"
        assert all(e["schema"] == "pymao.trace/1" for e in events)
        spans = [obs.Span.from_dict(e) for e in events
                 if e["type"] == "span"]
        optimize = next(s for s in spans if s.name == "optimize")
        assert optimize.find("parse") is not None
        assert optimize.find("pass:REDZEE") is not None
        assert optimize.find("pass:REDTEST") is not None
        assert optimize.find("fn:f") is not None
        simulate = next((s.find("simulate") for s in spans
                         if s.find("simulate")), None)
        assert simulate is not None
        assert "cycles" in simulate.attrs
        (metrics,) = [e for e in events if e["type"] == "metrics"]
        assert metrics["values"]["pass.REDTEST.removed"] >= 1

    def test_trace_out_leaves_tracing_disabled_after(self, asm_file,
                                                     tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.reset_tracer()
        assert main(["--mao=REDTEST", "--trace-out", str(trace),
                     str(asm_file)]) == 0
        assert not obs.enabled()
        obs.reset_tracer()


class TestVersion:
    def test_version_prints_package_and_schema_versions(self, capsys):
        """One flag answers "what will this binary emit": the package
        version plus every pinned report schema version."""
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("mao (PyMAO) ")
        assert "schema pipeline      pymao.pipeline/1" in out
        assert "schema batch         pymao.batch/1" in out
        assert "schema trace         pymao.trace/1" in out
        assert "schema artifact      pymao.artifact/1" in out
        assert "schema predict       pymao.predict/1" in out
        assert "schema bench-predict mao-bench-predict/1" in out

    def test_version_lists_the_full_registry_sorted(self, capsys):
        """Every result/report schema the binary can emit appears, from
        the one registry, sorted by label."""
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        for label, schema in (("optimize", "pymao.optimize/1"),
                              ("sim", "pymao.sim/1"),
                              ("tune", "pymao.tune/1"),
                              ("server", "pymao.server/1"),
                              ("fleet", "pymao.fleet/1"),
                              ("bench-tune", "mao-bench-tune/1")):
            assert "schema %-13s %s" % (label, schema) in out
        labels = [line.split()[1] for line in out.splitlines()
                  if line.startswith("schema ")]
        assert labels == sorted(labels)

    def test_version_wins_over_other_arguments(self, capsys):
        """--version short-circuits: no inputs required, nothing run."""
        assert main(["--version", "--mao=REDTEST"]) == 0
        assert "mao (PyMAO)" in capsys.readouterr().out

    def test_version_via_subprocess(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--version"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        assert result.returncode == 0
        assert "pymao.pipeline/1" in result.stdout
