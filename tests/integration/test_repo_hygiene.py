"""Repository hygiene: no compiled artifacts may ever be tracked.

``src/repro/uarch/__pycache__`` once risked riding into the index; the
``.gitignore`` patterns plus this test (and the matching
``make check-tracked-artifacts`` CI step) keep every ``__pycache__``
directory and ``*.pyc`` byte-code file out of version control for good.
"""

import os
import re
import subprocess

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

_ARTIFACT = re.compile(r"(^|/)__pycache__(/|$)|\.py[cod]$")


def _git(*args):
    return subprocess.run(["git"] + list(args), cwd=REPO_ROOT,
                          capture_output=True, text=True)


@pytest.mark.skipif(not os.path.isdir(os.path.join(REPO_ROOT, ".git")),
                    reason="not a git checkout")
def test_no_tracked_compiled_artifacts():
    proc = _git("ls-files")
    assert proc.returncode == 0, proc.stderr
    bad = [line for line in proc.stdout.splitlines()
           if _ARTIFACT.search(line)]
    assert not bad, "compiled artifacts tracked: %s" % bad


@pytest.mark.skipif(not os.path.isdir(os.path.join(REPO_ROOT, ".git")),
                    reason="not a git checkout")
def test_gitignore_covers_bytecode():
    proc = _git("check-ignore", "src/repro/uarch/__pycache__/model.cpython-312.pyc")
    assert proc.returncode == 0, "gitignore no longer covers __pycache__"
