"""The README's code snippets must actually work."""

import pytest


def test_api_quickstart_snippet(tmp_path):
    from repro import api

    hot = tmp_path / "hot.s"
    hot.write_text("""
.text
.globl main
.type main, @function
main:
    movl $100, %ecx
.Lloop:
    subl $16, %r15d
    testl %r15d, %r15d
    subl $1, %ecx
    jne .Lloop
    mov %eax, %eax
    ret
""")
    result = api.optimize(hot.read_text(),
                          "REDZEE:REDTEST:REDMOV:ADDADD:LOOP16")
    stats = result.stats_for("REDTEST")
    assert stats["tests"] == 1 and stats["removed"] == 1
    out = tmp_path / "hot.opt.s"
    out.write_text(result.to_asm())
    assert "testl" not in out.read_text()

    sim = api.simulate(result.unit, "core2")
    assert sim.cycles > 0
    assert sim["BR_MISP"] >= 0


def test_quickstart_snippet(tmp_path):
    from repro.ir import parse_unit
    from repro.passes import run_passes

    hot = tmp_path / "hot.s"
    hot.write_text("""
.text
.globl f
.type f, @function
f:
    subl $16, %r15d
    testl %r15d, %r15d
    andl $255, %eax
    mov %eax, %eax
    ret
""")
    unit = parse_unit(hot.read_text())
    result = run_passes(unit, "REDZEE:REDTEST:REDMOV:ADDADD:LOOP16")
    stats = result.stats_for("REDTEST")
    assert stats["tests"] == 1 and stats["removed"] == 1
    out = tmp_path / "hot.opt.s"
    out.write_text(unit.to_asm())
    assert "testl" not in out.read_text()


def test_measurement_snippet():
    from repro.ir import parse_unit
    from repro.sim import run_unit
    from repro.uarch import core2, simulate_trace

    unit = parse_unit("""
.text
.globl main
main:
    movq $100, %rbp
.Lloop:
    addq $1, %rax
    subq $1, %rbp
    jne .Lloop
    ret
""")
    trace = run_unit(unit, collect_trace=True).trace
    stats = simulate_trace(trace, core2())
    assert stats.cycles > 0
    assert stats["BR_MISP"] >= 0
    assert stats["LSD_UOPS"] >= 0


def test_detection_snippet():
    from repro.mbench import Processor, detect
    from repro.uarch.profiles import blinded_profile

    proc = Processor(blinded_profile(seed=7))
    latency = detect.InstructionLatency(proc, "imulq %r, %r",
                                        trip_count=300)
    assert latency == blinded_profile(seed=7).latency["mul"]
    line = detect.DetectDecodeLineSize(proc)
    assert line in (16, 32)


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert repro.__version__


def test_custom_pass_snippet():
    from repro.ir import parse_unit
    from repro.passes import MaoFunctionPass, run_passes
    from repro.passes.manager import register_func_pass

    @register_func_pass("README_DEMO")
    class MyPass(MaoFunctionPass):
        OPTIONS = {"aggressive": False}

        def Go(self) -> bool:
            self.Trace(3, "Func: %s", self.function.name)
            self.bump("seen")
            return True

    unit = parse_unit(".text\nf:\n    ret\n")
    result = run_passes(unit, "README_DEMO=aggressive[1]")
    assert result.total("README_DEMO", "seen") == 1


def test_predict_snippet():
    from repro import api
    from repro.workloads import kernels

    p = api.predict(kernels.hash_bench(), "core2")
    assert p.cycles > 0
    assert p.bottleneck in ("ports", "latency", "frontend")
    assert "port pressure" in p.explain()

    batch = api.optimize_many([("k.s", kernels.hash_bench())], "REDTEST",
                              predict_core="core2", cache=False)
    ranked = batch.ranked_by_prediction()
    assert ranked and ranked[0].prediction["schema"] == "pymao.predict/1"
