"""Smoke tests for the runnable examples (fast ones only)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout)


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "before: 13 instructions" in proc.stdout
    assert "after:  10 instructions" in proc.stdout
    assert "testl" not in proc.stdout.split("optimized assembly")[1]


def test_write_a_pass():
    proc = run_example("write_a_pass.py")
    assert proc.returncode == 0, proc.stderr
    assert "rewritten: 2" in proc.stdout
    assert "xorl %eax, %eax" in proc.stdout
    # The flag-guarded site must keep its mov.
    assert "movl $0, %esi" in proc.stdout


def test_alignment_cliffs():
    proc = run_example("alignment_cliffs.py")
    assert proc.returncode == 0, proc.stderr
    assert "after LOOP16" in proc.stdout
    assert "after LSDFIT" in proc.stdout
