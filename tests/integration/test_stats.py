"""Tests for the statistical-validation helpers (§V.B)."""

import pytest

from repro.stats import (
    layout_distribution,
    significant_speedup,
    summarize,
)
from repro.uarch.profiles import core2


class TestSummarize:
    def test_mean_and_ci(self):
        summary = summarize([10, 12, 11, 13, 9])
        assert summary.mean == 11
        assert summary.ci_low < 11 < summary.ci_high

    def test_single_sample(self):
        summary = summarize([5])
        assert summary.mean == 5
        assert summary.ci_low == summary.ci_high == 5

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_tighter_ci_with_more_samples(self):
        narrow = summarize([10, 11] * 20)
        wide = summarize([10, 11] * 2)
        assert (narrow.ci_high - narrow.ci_low) \
            < (wide.ci_high - wide.ci_low)


class TestSignificance:
    def test_clear_improvement_is_significant(self):
        result = significant_speedup([100, 102, 98, 101, 99],
                                     [90, 91, 89, 92, 88])
        assert result.significant
        assert result.speedup > 0.08

    def test_noise_is_not_significant(self):
        result = significant_speedup([100, 110, 90, 105, 95],
                                     [101, 108, 92, 104, 96])
        assert not result.significant

    def test_identical_distributions(self):
        result = significant_speedup([100, 100], [100, 100])
        assert not result.significant
        assert result.speedup == 0.0

    def test_str_rendering(self):
        result = significant_speedup([100, 101], [90, 91])
        assert "speedup" in str(result)


class TestLayoutDistribution:
    SOURCE = """
.text
.globl main
main:
    movl $200, %ecx
.Lloop:
    movss %xmm0,(%rdi,%rax,4)
    addl $1, %eax
    andl $7, %eax
    subl $1, %ecx
    jne .Lloop
    ret
"""

    def test_produces_varied_layouts(self):
        cycles = layout_distribution(self.SOURCE, core2(),
                                     seeds=range(6), density=0.15,
                                     max_steps=200_000)
        assert len(cycles) == 6
        assert len(set(cycles)) > 1, \
            "layout perturbation must change timing"

    def test_pass_effect_over_distribution(self):
        """LOOP16's effect should be judged against layout noise — the
        §V.B methodology."""
        base = layout_distribution(self.SOURCE, core2(),
                                   seeds=range(6), density=0.15,
                                   max_steps=200_000)
        optimized = layout_distribution(self.SOURCE, core2(),
                                        spec="LOOP16",
                                        seeds=range(6), density=0.15,
                                        max_steps=200_000)
        result = significant_speedup(base, optimized)
        # LOOP16 pins the hot loop to an aligned boundary, collapsing the
        # layout sensitivity: the optimized variance must not exceed it.
        assert result.variant.mean <= result.baseline.mean * 1.02
