"""Tests for the register model: widths, aliasing, encoding numbers."""

import pytest

from repro.x86.registers import (
    CALLEE_SAVED,
    CALLER_SAVED,
    GP_GROUPS,
    alias_group,
    get_register,
    gp_register,
    is_register_name,
    parse_width_suffix,
    registers_in_group,
    suffix_for_width,
    widen,
)


class TestLookup:
    def test_basic_lookup(self):
        rax = get_register("rax")
        assert rax.width == 64
        assert rax.number == 0
        assert rax.group == "rax"

    def test_lookup_is_case_insensitive(self):
        assert get_register("RAX") is get_register("rax")

    def test_unknown_register_raises(self):
        with pytest.raises(KeyError):
            get_register("zax")

    def test_is_register_name(self):
        assert is_register_name("r8d")
        assert not is_register_name("r8e")

    @pytest.mark.parametrize("name,width", [
        ("rax", 64), ("eax", 32), ("ax", 16), ("al", 8), ("ah", 8),
        ("r15", 64), ("r15d", 32), ("r15w", 16), ("r15b", 8),
        ("xmm0", 128), ("xmm15", 128),
    ])
    def test_widths(self, name, width):
        assert get_register(name).width == width

    @pytest.mark.parametrize("name,number", [
        ("rax", 0), ("rcx", 1), ("rdx", 2), ("rbx", 3),
        ("rsp", 4), ("rbp", 5), ("rsi", 6), ("rdi", 7),
        ("r8", 8), ("r15", 15), ("xmm9", 9),
    ])
    def test_hardware_numbers(self, name, number):
        assert get_register(name).number == number


class TestAliasing:
    @pytest.mark.parametrize("name,group", [
        ("eax", "rax"), ("ax", "rax"), ("al", "rax"), ("ah", "rax"),
        ("r8d", "r8"), ("r8b", "r8"), ("sil", "rsi"), ("bpl", "rbp"),
    ])
    def test_alias_groups(self, name, group):
        assert alias_group(name) == group

    def test_group_members(self):
        names = {r.name for r in registers_in_group("rax")}
        assert names == {"rax", "eax", "ax", "al", "ah"}

    def test_high8_flag(self):
        assert get_register("ah").high8
        assert not get_register("al").high8
        assert not get_register("spl").high8

    def test_new_low8_need_rex(self):
        for name in ("spl", "bpl", "sil", "dil"):
            assert get_register(name).is_new_low8
        assert not get_register("al").is_new_low8


class TestWiden:
    def test_widen_up(self):
        assert widen(get_register("al"), 64).name == "rax"
        assert widen(get_register("r9b"), 32).name == "r9d"

    def test_widen_down(self):
        assert widen(get_register("rdi"), 8).name == "dil"

    def test_widen_high8(self):
        # ah widens to the full rax register, not something exotic.
        assert widen(get_register("ah"), 64).name == "rax"

    def test_widen_xmm_rejected(self):
        with pytest.raises(ValueError):
            widen(get_register("xmm1"), 64)

    def test_gp_register_lookup(self):
        assert gp_register(4, 8).name == "spl"
        assert gp_register(12, 16).name == "r12w"


class TestMetadata:
    def test_groups_cover_16_registers(self):
        assert len(GP_GROUPS) == 16

    def test_calling_convention_sets_disjoint(self):
        assert not (CALLEE_SAVED & CALLER_SAVED)

    def test_suffixes(self):
        assert parse_width_suffix("q") == 64
        assert parse_width_suffix("x") is None
        assert suffix_for_width(32) == "l"
