"""Tests for the side-effect DSL, generator, and query layer."""

import pytest

from repro.x86 import sideeffects
from repro.x86.parser import parse_instruction
from repro.x86.sideeffects_dsl import SpecError, parse_builtin_spec, parse_spec
from repro.x86.sideeffects_gen import render_tables


def insn(text):
    return parse_instruction(text).insn


class TestDsl:
    def test_builtin_spec_parses(self):
        specs = parse_builtin_spec()
        assert len(specs) > 60
        bases = {s.base for s in specs}
        assert {"add", "mov", "test", "cmp", "imul", "call"} <= bases

    def test_arity_variants(self):
        specs = {(s.base, s.arity) for s in parse_builtin_spec()}
        assert ("imul", 1) in specs
        assert ("imul", 2) in specs
        assert ("imul", 3) in specs

    def test_bad_flag_name_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("insn foo flags(w=QF)")

    def test_bad_item_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("insn foo use(bogus!)")

    def test_generated_tables_are_stable(self):
        """The checked-in tables must match regeneration from the DSL."""
        import os
        import repro.x86._sideeffects_tables as tables_mod

        expected = render_tables(parse_builtin_spec())
        with open(tables_mod.__file__.rstrip("c")) as handle:
            assert handle.read() == expected


class TestRegUses:
    def test_alu_uses_both(self):
        assert sideeffects.reg_uses(insn("addl %eax, %ebx")) \
            == {"rax", "rbx"}

    def test_mov_uses_source_only(self):
        assert sideeffects.reg_uses(insn("movl %eax, %ebx")) == {"rax"}

    def test_memory_address_registers_are_uses(self):
        uses = sideeffects.reg_uses(insn("movl %ecx, 8(%rax,%rbx,2)"))
        assert {"rcx", "rax", "rbx"} <= uses

    def test_shift_by_cl(self):
        assert "rcx" in sideeffects.reg_uses(insn("shll %cl, %edx"))

    def test_implicit_uses_of_division(self):
        uses = sideeffects.reg_uses(insn("idivl %esi"))
        assert {"rax", "rdx", "rsi"} <= uses

    def test_push_uses_rsp(self):
        assert {"rax", "rsp"} <= sideeffects.reg_uses(insn("push %rax"))


class TestRegDefs:
    def test_alu_defines_dest(self):
        assert sideeffects.reg_defs(insn("addl %eax, %ebx")) == {"rbx"}

    def test_cmp_defines_nothing(self):
        assert sideeffects.reg_defs(insn("cmpl %eax, %ebx")) == set()

    def test_store_defines_no_register(self):
        assert sideeffects.reg_defs(insn("movl %eax, (%rbx)")) == set()

    def test_one_operand_imul_defines_rax_rdx(self):
        assert sideeffects.reg_defs(insn("imull %ecx")) == {"rax", "rdx"}

    def test_call_clobbers_caller_saved(self):
        defs = sideeffects.reg_defs(insn("call f"))
        assert {"rax", "rcx", "rdx", "r11"} <= defs
        assert "rbx" not in defs

    def test_pop_defines_dest_and_rsp(self):
        assert sideeffects.reg_defs(insn("pop %rbx")) == {"rbx", "rsp"}


class TestFlags:
    def test_add_writes_all(self):
        assert sideeffects.flags_written(insn("addl $1, %eax")) \
            == {"CF", "PF", "AF", "ZF", "SF", "OF"}

    def test_mov_writes_none(self):
        assert sideeffects.flags_written(insn("movl $1, %eax")) == frozenset()

    def test_inc_preserves_cf(self):
        assert "CF" not in sideeffects.flags_written(insn("incl %eax"))

    def test_logic_clears_cf_of(self):
        assert sideeffects.flags_cleared(insn("andl $1, %eax")) \
            == {"CF", "OF"}

    def test_result_flags(self):
        assert sideeffects.flags_result(insn("subl $1, %eax")) \
            == {"ZF", "SF", "PF"}
        assert sideeffects.flags_result(insn("movl $1, %eax")) == frozenset()

    def test_jcc_reads_resolved_cc(self):
        assert sideeffects.flags_read(insn("jg .L")) == {"ZF", "SF", "OF"}
        assert sideeffects.flags_read(insn("je .L")) == {"ZF"}

    def test_cmov_reads_cc(self):
        assert sideeffects.flags_read(insn("cmovel %eax, %ebx")) == {"ZF"}

    def test_adc_reads_cf(self):
        assert sideeffects.flags_read(insn("adcl $0, %eax")) == {"CF"}

    def test_imul_leaves_zf_undefined(self):
        assert "ZF" in sideeffects.flags_undefined(insn("imull %ecx, %eax"))


class TestBarriers:
    @pytest.mark.parametrize("text", ["call f", "ret", "syscall", "ud2"])
    def test_barriers(self, text):
        assert sideeffects.is_barrier(insn(text))

    @pytest.mark.parametrize("text", ["addl $1, %eax", "jmp .L", "nop"])
    def test_non_barriers(self, text):
        assert not sideeffects.is_barrier(insn(text))

    def test_unknown_instruction_raises(self):
        from repro.x86.instruction import Instruction
        bogus = Instruction("rep")      # parseable but has no table entry
        with pytest.raises(sideeffects.UnknownSideEffects):
            sideeffects.reg_uses(bogus)
        assert not sideeffects.has_side_effect_entry(bogus)
        # Unknown side effects are conservatively treated as barriers.
        assert sideeffects.is_barrier(bogus)
