"""Tests for the decoder: encode/decode round trips and §III.A verify."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.verify import disassemble_compare
from repro.x86.decoder import DecodeError, decode_all, decode_one, disassemble
from repro.x86.encoder import encode_instruction
from repro.x86.parser import parse_instruction


def roundtrip(text: str) -> str:
    """encode -> decode -> canonical text."""
    insn = parse_instruction(text).insn
    data = encode_instruction(insn)
    decoded = decode_one(data)
    assert decoded.length == len(data), text
    return str(decoded.insn)


def reencode(text: str) -> None:
    """encode -> decode -> re-encode must reproduce the exact bytes."""
    insn = parse_instruction(text).insn
    data = encode_instruction(insn)
    decoded = decode_one(data)
    again = encode_instruction(decoded.insn)
    assert again == data, "%s: %s != %s" % (text, again.hex(), data.hex())


NONBRANCH = [
    "mov %rsp, %rbp", "movl %eax, %ebx", "movb %ah, %bh",
    "movq $5, %rax", "movl $5, -4(%rbp)", "movq 24(%rsp), %rdx",
    "movl 8(%rax,%rbx,4), %edx", "movl (,%rbx,8), %eax",
    "movabsq $0x1122334455667788, %rdx",
    "movzbl (%rdi), %eax", "movsbl 1(%rdi,%r8,4), %edx",
    "movslq %eax, %rdx",
    "addq $1, %r8", "addl $200, %ebx", "addl $200, %eax",
    "andl $255, %eax", "subl $16, %r15d", "cmpl %r8d, %r9d",
    "testl %r15d, %r15d", "testb $1, %al", "testl $256, %edx",
    "leaq 2(%rdx), %r8", "leal (%rax,%rax,4), %eax",
    "incl %eax", "decq %r9", "negl %edx", "notq %rcx",
    "shrl $12, %edi", "sarl %ecx", "shlq $3, %rax", "shrl %cl, %edx",
    "imull %ebx, %eax", "imull $100, %ecx, %edx", "mull %ecx",
    "idivl %esi",
    "push %rbp", "pushq %r12", "pop %rbp", "pushq $5",
    "sete %al", "setg %cl", "cmovel %edx, %eax", "cmovgq %r8, %r9",
    "xchgl %ebx, %ecx", "bswapq %r9",
    "cltq", "cltd", "cqto", "cwtl", "nop", "leave", "ret", "ud2",
    "hlt", "int3", "rdtsc", "cpuid", "mfence", "lfence", "sfence",
    "prefetchnta (%rdi)", "prefetcht0 0x40(%rsi)",
    "movss %xmm0,(%rdi,%rax,4)", "movss (%rdi), %xmm1",
    "movsd %xmm0, %xmm1", "addsd %xmm9, %xmm10",
    "mulsd (%rdi), %xmm3", "divss %xmm1, %xmm0",
    "xorps %xmm0, %xmm0", "pxor %xmm2, %xmm2",
    "ucomiss %xmm1, %xmm0", "movaps %xmm0, %xmm1",
    "cvtsi2sd %eax, %xmm0", "cvttsd2siq %xmm0, %rax",
    "cvtss2sd %xmm1, %xmm2",
    "movd %eax, %xmm0", "movq %rax, %xmm0", "movq %xmm0, %rax",
    "movq %xmm1, %xmm2",
    "jmp *%rax", "jmp *(%rax,%rbx,8)", "call *%rdx",
    "movb %sil, %dil", "addw %ax, %bx",
    "nopl 64(%rax,%rax,1)",
]


@pytest.mark.parametrize("text", NONBRANCH)
def test_reencode_identity(text):
    reencode(text)


class TestBranches:
    def test_short_jmp_target(self):
        insn = parse_instruction("jmp .t").insn
        data = encode_instruction(insn, symtab={".t": 0x20}, address=0x10)
        decoded = decode_one(data, address=0x10)
        assert decoded.branch_target == 0x20

    def test_long_jcc_target(self):
        insn = parse_instruction("jne .t").insn
        data = encode_instruction(insn, symtab={".t": 0x400}, address=0)
        decoded = decode_one(data, address=0)
        assert decoded.branch_target == 0x400
        assert decoded.insn.cond == "ne"

    def test_backward_branch(self):
        insn = parse_instruction("jg .t").insn
        data = encode_instruction(insn, symtab={".t": 0x5}, address=0x50)
        decoded = decode_one(data, address=0x50)
        assert decoded.branch_target == 0x5

    def test_call_target(self):
        insn = parse_instruction("call f").insn
        data = encode_instruction(insn, symtab={"f": 0x100}, address=0)
        decoded = decode_one(data, address=0)
        assert decoded.branch_target == 0x100


class TestImageDecoding:
    def image(self, source):
        from repro.analysis.relax import relax_section
        from repro.ir import parse_unit

        unit = parse_unit(source)
        return relax_section(unit, unit.get_section(".text")).code_image()

    def test_decode_whole_program(self):
        image = self.image("""
.text
f:
    push %rbp
    movl $5, %eax
.Ltop:
    subl $1, %eax
    jne .Ltop
    pop %rbp
    ret
""")
        decoded = decode_all(image)
        bases = [d.insn.base for d in decoded]
        assert bases == ["push", "mov", "sub", "j", "pop", "ret"]

    def test_disassembly_reassembles(self):
        image = self.image("""
.text
f:
    movl $3, %ecx
.Ltop:
    addl $2, %eax
    subl $1, %ecx
    jne .Ltop
    ret
""")
        text = disassemble(image)
        assert ".Laddr_" in text
        reassembled = self.image(text)
        assert reassembled == image

    def test_bad_bytes_rejected(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x0f\xff\xff")

    def test_truncated_rejected(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x48")


class TestPaperVerifyFlow:
    """§III.A: disassemble O1/O2 and verify textual identity."""

    def test_roundtrip_program_verifies(self):
        source = """
.text
.globl main
.type main, @function
main:
    push %rbp
    mov %rsp, %rbp
    movl $100, %ecx
.Lloop:
    addl $1, %eax
    imull $3, %eax, %eax
    subl $1, %ecx
    jne .Lloop
    leave
    ret
"""
        result = disassemble_compare(source)
        assert result.identical, result.first_diff

    def test_corpus_verifies(self):
        from repro.workloads.corpus import CorpusConfig, generate_corpus_text

        source = generate_corpus_text(CorpusConfig(seed=11, scale=0.002))
        result = disassemble_compare(source)
        assert result.identical, result.first_diff

    def test_kernels_verify(self):
        from repro.workloads import kernels

        for source in (kernels.hash_bench(), kernels.fig4_loop(),
                       kernels.eon_loop()):
            result = disassemble_compare(source)
            assert result.identical, result.first_diff


# ---------------------------------------------------------------------------
# Property: random instructions re-encode identically after decoding.
# ---------------------------------------------------------------------------

_REGS64 = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp",
           "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]


@st.composite
def random_encodable(draw):
    kind = draw(st.sampled_from(
        ["alu", "mov_rm", "mov_mr", "mov_imm", "lea", "shift", "unary",
         "push", "setcc", "cmov", "sse"]))
    r1 = draw(st.sampled_from(_REGS64))
    r2 = draw(st.sampled_from(_REGS64))
    disp = draw(st.integers(-512, 512))
    imm = draw(st.integers(-2 ** 31, 2 ** 31 - 1))
    op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "cmp"]))
    if kind == "alu":
        return "%sq %%%s, %%%s" % (op, r1, r2)
    if kind == "mov_rm":
        return "movq %%%s, %d(%%%s)" % (r1, disp, r2)
    if kind == "mov_mr":
        return "movq %d(%%%s), %%%s" % (disp, r1, r2)
    if kind == "mov_imm":
        return "movl $%d, %%%sd" % (imm, "r8")
    if kind == "lea":
        scale = draw(st.sampled_from([1, 2, 4, 8]))
        if r2 == "rsp":
            r2 = "rbx"
        return "leaq %d(%%%s,%%%s,%d), %%%s" % (disp, r1, r2, scale, r1)
    if kind == "shift":
        return "s%sq $%d, %%%s" % (draw(st.sampled_from(["hl", "hr", "ar"])),
                                   draw(st.integers(1, 63)), r1)
    if kind == "unary":
        return "%sq %%%s" % (draw(st.sampled_from(["neg", "not", "inc",
                                                   "dec"])), r1)
    if kind == "push":
        return "%s %%%s" % (draw(st.sampled_from(["push", "pop"])), r1)
    if kind == "setcc":
        return "set%s %%al" % draw(st.sampled_from(
            ["e", "ne", "l", "g", "a", "b", "s", "ns"]))
    if kind == "cmov":
        return "cmov%sq %%%s, %%%s" % (
            draw(st.sampled_from(["e", "ne", "l", "g"])), r1, r2)
    xmm1 = "xmm%d" % draw(st.integers(0, 15))
    xmm2 = "xmm%d" % draw(st.integers(0, 15))
    return "%s %%%s, %%%s" % (
        draw(st.sampled_from(["addsd", "mulss", "movsd", "xorps"])),
        xmm1, xmm2)


@given(random_encodable())
@settings(max_examples=150, deadline=None)
def test_decoder_roundtrip_property(text):
    reencode(text)
