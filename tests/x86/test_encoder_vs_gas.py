"""Differential encoder tests: every encoding must match GNU gas exactly."""

import pytest

import sys
import os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from helpers import (  # noqa: E402
    gas_assemble_text,
    gas_encode_one,
    mao_encode_one,
    mao_text_image,
    mao_text_layout,
    masked,
    requires_binutils,
)

SINGLE_INSTRUCTIONS = [
    # moves
    "mov %rsp, %rbp",
    "movq %rax, %rbx",
    "movl %eax, %ebx",
    "movw %ax, %bx",
    "movb %al, %bl",
    "movb %ah, %bh",
    "mov %r8, %r15",
    "movl %r9d, %r10d",
    "movq $5, %rax",
    "movl $5, %eax",
    "movl $-1, %edx",
    "movb $7, %cl",
    "movq $0x123456789a, %rax",
    "movabsq $0x1122334455667788, %rdx",
    "movl $5, -4(%rbp)",
    "movq 24(%rsp), %rdx",
    "movq %rdx, 24(%rsp)",
    "movl (%rax), %ecx",
    "movl %ecx, (%rax)",
    "movl 8(%rax,%rbx,4), %edx",
    "movl %edx, (%rsi,%r8,4)",
    "movb 1(%rdi,%r8,4), %dl",
    "movq (%rsp), %rax",
    "movq (%r12), %rax",
    "movq 0(%rbp), %rax",
    "movq (%r13), %rax",
    "movl 0x12345678(%rax), %ebx",
    "movl (,%rbx,8), %eax",
    "movzbl (%rdi), %eax",
    "movsbl 1(%rdi,%r8,4), %edx",
    "movsbq %al, %rbx",
    "movswl %cx, %edx",
    "movzwl %cx, %edx",
    "movslq %eax, %rdx",
    "movsbl %dil, %eax",
    # ALU
    "addq $1, %r8",
    "addl $1, -4(%rbp)",
    "subl $1, -4(%rbp)",
    "addl %eax, %ebx",
    "addq %rax, (%rbx)",
    "addl (%rbx), %eax",
    "addl $200, %eax",
    "addl $200, %ebx",
    "addb $5, %al",
    "addw $5, %cx",
    "andl $255, %eax",
    "subl $16, %r15d",
    "xorl %edi, %ebx",
    "xorq %rax, %rax",
    "orl %esi, %edi",
    "cmpl $0, -4(%rbp)",
    "cmpl %r8d, %r9d",
    "cmpq $0x12345678, %rax",
    "cmpb $0, (%rdi)",
    "adcl $0, %eax",
    "sbbq %rax, %rbx",
    # test
    "testl %r15d, %r15d",
    "testq %rax, %rax",
    "testb $1, %al",
    "testl $256, %edx",
    "testb $1, (%rax)",
    # lea
    "leal (%r8,%rdi), %ebx",
    "leaq 2(%rdx), %r8",
    "leaq 0x10(%rsp), %rdi",
    "leal (%rax,%rax,4), %eax",
    # inc/dec/neg/not
    "incl %eax",
    "decq %r9",
    "incb (%rax)",
    "negl %edx",
    "notq %rcx",
    # shifts
    "shrl $12, %edi",
    "sarl %ecx",
    "sarl $1, %ecx",
    "shlq $3, %rax",
    "shrl %cl, %edx",
    "sarq $63, %rdx",
    # mul/div
    "imull %ebx, %eax",
    "imulq %rdx, %rax",
    "imull $100, %ecx, %edx",
    "imull $5, %eax, %eax",
    "imulq (%rdi), %rax",
    "mull %ecx",
    "idivl %esi",
    "divq %r10",
    # stack
    "push %rbp",
    "pushq %r12",
    "pop %rbp",
    "popq %r13",
    "pushq $5",
    "pushq $0x12345",
    "pushq (%rax)",
    # condition ops
    "sete %al",
    "setne %dl",
    "setg %cl",
    "setbe (%rdi)",
    "cmovel %edx, %eax",
    "cmovgq %r8, %r9",
    # misc
    "xchgl %eax, %edx",
    "xchgl %ebx, %ecx",
    "xchgq %rax, %r15",
    "bswapl %eax",
    "bswapq %r9",
    "cltq",
    "cltd",
    "cqto",
    "nop",
    "leave",
    "ret",
    "ud2",
    "pause",
    "mfence",
    "lfence",
    "sfence",
    "rdtsc",
    "cpuid",
    # prefetch
    "prefetchnta (%rdi)",
    "prefetcht0 0x40(%rsi)",
    "prefetcht1 (%rax,%rbx,2)",
    "prefetcht2 (%r8)",
    # SSE
    "movss %xmm0, (%rdi,%rax,4)",
    "movss (%rdi), %xmm1",
    "movss %xmm3, %xmm4",
    "movsd %xmm0, %xmm1",
    "movsd (%rsp), %xmm2",
    "movsd %xmm8, 8(%rsp)",
    "addss %xmm1, %xmm0",
    "addsd %xmm9, %xmm10",
    "mulsd (%rdi), %xmm3",
    "subss %xmm2, %xmm2",
    "divsd %xmm1, %xmm0",
    "xorps %xmm0, %xmm0",
    "xorpd %xmm1, %xmm1",
    "pxor %xmm2, %xmm2",
    "ucomiss %xmm1, %xmm0",
    "ucomisd (%rax), %xmm5",
    "movaps %xmm0, %xmm1",
    "movups (%rdi), %xmm2",
    "cvtsi2sd %eax, %xmm0",
    "cvtsi2sdq %rax, %xmm0",
    "cvtsi2ss %edx, %xmm7",
    "cvttsd2si %xmm0, %eax",
    "cvttsd2siq %xmm0, %rax",
    "cvtss2sd %xmm1, %xmm2",
    "cvtsd2ss %xmm2, %xmm1",
    "movd %eax, %xmm0",
    "movd %xmm0, %eax",
    "movq %rax, %xmm0",
    "movq %xmm0, %rax",
    "movq %xmm1, %xmm2",
    # indirect branches
    "jmp *%rax",
    "jmp *(%rax)",
    "jmp *(%rax,%rbx,8)",
    "call *%rdx",
    "call *(%r11)",
    # new 8-bit registers needing bare REX
    "movb %sil, %dil",
    "addb %bpl, %spl",
    "cmpb %r14b, %r15b",
    # 16 bit
    "addw %ax, %bx",
    "movw $0x1234, %dx",
    "cmpw (%rdi), %si",
]


@requires_binutils
@pytest.mark.parametrize("text", SINGLE_INSTRUCTIONS)
def test_single_instruction_matches_gas(text):
    assert mao_encode_one(text).hex() == gas_encode_one(text).hex(), text


# Full-program differential tests exercise branch relaxation and alignment.
PROGRAMS = {
    "paper_fig_relax_short": """
.text
main:
    push %rbp
    mov %rsp,%rbp
    movl $0x5,-0x4(%rbp)
    jmp .L2
.L1:
    addl $0x1,-0x4(%rbp)
    subl $0x1,-0x4(%rbp)
.L2:
    cmpl $0x0,-0x4(%rbp)
    jne .L1
    leave
    ret
""",
    "forward_long_branch": """
.text
f:
    jmp .Lfar
""" + "".join("    addl $1, %%eax  # %d\n" % i for i in range(64)) + """
.Lfar:
    ret
""",
    "backward_short_branch": """
.text
f:
.Ltop:
    addl $1, %eax
    cmpl $10, %eax
    jne .Ltop
    ret
""",
    "alignment_p2align": """
.text
f:
    xorl %eax, %eax
    .p2align 4
.Lloop:
    addl $1, %eax
    cmpl $100, %eax
    jne .Lloop
    ret
""",
    "alignment_with_max_skip": """
.text
f:
    xorl %eax, %eax
    .p2align 4,,7
.Lloop:
    addl $1, %eax
    cmpl $100, %eax
    jne .Lloop
    ret
""",
    "cascading_relaxation": """
.text
f:
    jmp .La
""" + "".join("    addl $1, %%ebx  # %d\n" % i for i in range(60)) + """
.La:
    jmp .Lb
""" + "".join("    addl $2, %%ecx  # %d\n" % i for i in range(60)) + """
.Lb:
    ret
""",
    "calls_and_labels": """
.text
.globl f
.type f, @function
f:
    push %rbp
    call g
    pop %rbp
    ret
.type g, @function
g:
    xorl %eax, %eax
    ret
""",
}


@requires_binutils
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_image_matches_gas(name):
    source = PROGRAMS[name]
    layout = mao_text_layout(source)
    mao_image = layout.code_image()
    gas_image = gas_assemble_text(source)
    regions = layout.fill_regions()
    # Same layout (lengths/addresses) and same bytes outside alignment fill;
    # the fill NOP encodings legitimately differ from gas's patterns.
    assert len(mao_image) == len(gas_image), name
    assert masked(mao_image, regions).hex() == masked(gas_image, regions).hex()
