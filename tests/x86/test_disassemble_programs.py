"""Whole-program disassembly round trips over the workload suite."""

import pytest

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.verify import disassemble_compare
from repro.x86.decoder import decode_all
from repro.workloads import kernels
from repro.workloads.spec import build_benchmark


def text_image(source):
    unit = parse_unit(source)
    return relax_section(unit, unit.get_section(".text")).code_image()


ALL_KERNELS = {
    "fig1": lambda: kernels.mcf_fig1(True, pad=5),
    "fig4": lambda: kernels.fig4_loop(6),
    "eon": lambda: kernels.eon_loop(aligned=True),
    "hash": lambda: kernels.hash_bench(True),
    "nested": lambda: kernels.nested_short_loops(True),
}


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_kernel_images_fully_decodable(name):
    image = text_image(ALL_KERNELS[name]())
    decoded = decode_all(image)
    assert sum(d.length for d in decoded) == len(image)
    # Every decoded instruction carries its encoding slice.
    offset = 0
    for item in decoded:
        assert item.insn.encoding == image[offset:offset + item.length]
        offset += item.length


@pytest.mark.parametrize("name", ["175.vpr", "447.dealII", "256.bzip2"])
def test_spec_benchmarks_verify_via_disassembly(name):
    """§III.A applied to the evaluation suite itself."""
    program = build_benchmark(name)
    result = disassemble_compare(program.source)
    assert result.identical, result.first_diff


def test_branch_targets_decode_to_label_addresses():
    source = kernels.eon_loop()
    unit = parse_unit(source)
    layout = relax_section(unit, unit.get_section(".text"))
    image = layout.code_image()
    decoded = decode_all(image)
    label_addresses = set(layout.symtab.values())
    for item in decoded:
        if item.branch_target is not None:
            assert item.branch_target in label_addresses
