"""Tests for the encoding cache (fast-path engine).

The cache is only sound for address-independent instructions: anything
referencing a symbol (LabelRef operands, symbolic Memory/Immediate) must
bypass it, because its bytes depend on where the instruction lands.  The
tests here pin down that soundness contract:

* a differential test encodes the whole workload corpus with the cache
  enabled and disabled and requires byte-identical section images;
* a property test generates symbol-dependent instructions and asserts
  they never produce a cache hit (bypass counter only);
* counter tests check the hit/miss bookkeeping the perf harness reports.
"""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.relax import relax_unit
from repro.ir import parse_unit
from repro.workloads.corpus import CorpusConfig, generate_corpus_text
from repro.x86 import encoder
from repro.x86.encoder import (
    encode_instruction,
    encoding_cache_disabled,
    encoding_cache_stats,
    reset_encoding_cache,
    symbol_dependent,
)
from repro.x86.instruction import imm, label, make, mem, reg
from repro.x86.operands import Immediate


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_encoding_cache()
    yield
    reset_encoding_cache()


def _unit_images(text):
    unit = parse_unit(text)
    layouts = relax_unit(unit)
    return {name: layout.code_image() for name, layout in layouts.items()}


class TestDifferential:
    def test_corpus_byte_identical_with_and_without_cache(self):
        text = generate_corpus_text(CorpusConfig(seed=7, scale=0.01))
        with encoding_cache_disabled():
            cold = _unit_images(text)
        reset_encoding_cache()
        warm_first = _unit_images(text)    # populates the cache
        warm_second = _unit_images(text)   # served from the cache
        assert encoding_cache_stats()["hits"] > 0
        assert cold == warm_first == warm_second

    def test_disabled_cache_does_not_record_stats(self):
        insn = make("addl", imm(1), reg("eax"))
        with encoding_cache_disabled():
            encode_instruction(insn, symtab=None)
        stats = encoding_cache_stats()
        assert stats["hits"] == stats["misses"] == 0


class TestCounters:
    def test_miss_then_hit_for_repeated_instruction(self):
        # Two distinct objects with the same canonical form: the second
        # lookup must be served from the process-wide cache.
        encode_instruction(make("addl", imm(1), reg("eax")), symtab=None)
        encode_instruction(make("addl", imm(1), reg("eax")), symtab=None)
        stats = encoding_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_object_pin_hit_on_reencode(self):
        # Re-encoding the *same object* hits the per-object pin.
        insn = make("subq", imm(8), reg("rsp"))
        first = encode_instruction(insn, symtab=None)
        second = encode_instruction(insn, symtab=None)
        assert first == second
        assert encoding_cache_stats()["hits"] == 1

    def test_distinct_forms_do_not_collide(self):
        a = encode_instruction(make("addl", imm(1), reg("eax")), symtab=None)
        b = encode_instruction(make("addl", imm(2), reg("eax")), symtab=None)
        assert a != b
        assert encoding_cache_stats()["entries"] == 2


# Strategies producing *symbol-dependent* instructions: label-target
# branches, symbolic memory references, and symbolic immediates.
_names = st.sampled_from([".L1", ".Ltarget", "ext_func", "table"])

_symdep_insns = st.one_of(
    _names.map(lambda n: make("jmp", label(n))),
    _names.map(lambda n: make("je", label(n))),
    _names.map(lambda n: make("call", label(n))),
    st.tuples(_names, st.sampled_from(["rip", "rax", "rbx"])).map(
        lambda t: make("movq", mem(symbol=t[0], base=t[1]), reg("rcx"))),
    _names.map(lambda n: make("movl", Immediate(0, symbol=n), reg("eax"))),
)


class TestSymbolDependence:
    @given(_symdep_insns)
    def test_symbol_dependent_forms_never_hit_the_cache(self, insn):
        assert symbol_dependent(insn)
        reset_encoding_cache()
        symtab = {name: 0x1000 for name in
                  (".L1", ".Ltarget", "ext_func", "table")}
        for _ in range(3):
            try:
                encode_instruction(insn.clone(), symtab=symtab)
            except encoder.EncodeError:
                pass  # encodability isn't the property under test
        stats = encoding_cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["bypasses"] > 0
        assert stats["entries"] == 0

    def test_address_independent_forms_are_not_symbol_dependent(self):
        for insn in (make("addl", imm(1), reg("eax")),
                     make("movq", reg("rax"), reg("rbx")),
                     make("movl", mem(disp=8, base="rbp"), reg("ecx")),
                     make("ret")):
            assert not symbol_dependent(insn)

    def test_verdict_is_memoized_per_object(self):
        insn = make("jmp", label(".L9"))
        assert symbol_dependent(insn)
        assert insn._symdep is True
        plain = make("nop")
        assert not symbol_dependent(plain)
        assert plain._symdep is False
