"""Differential fuzzing: random instructions vs GNU gas, byte-for-byte."""

import os
import sys

import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from helpers import (  # noqa: E402
    HAVE_BINUTILS,
    gas_encode_one,
    mao_encode_one,
    requires_binutils,
)

_REGS64 = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp",
           "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]
_REGS32 = ["eax", "ebx", "ecx", "edx", "esi", "edi",
           "r8d", "r9d", "r12d", "r15d"]
_REGS8 = ["al", "bl", "cl", "dl", "sil", "dil", "r8b", "r14b"]


@st.composite
def fuzz_instruction(draw):
    kind = draw(st.sampled_from(
        ["alu64", "alu32", "alu8", "alu_imm", "alu_mem",
         "mov_imm", "mov_mem", "lea", "shift", "unary", "movx",
         "imul3", "test", "sse"]))
    r64a = draw(st.sampled_from(_REGS64))
    r64b = draw(st.sampled_from(_REGS64))
    r32 = draw(st.sampled_from(_REGS32))
    r8 = draw(st.sampled_from(_REGS8))
    disp = draw(st.integers(-(1 << 20), 1 << 20))
    imm32 = draw(st.integers(-(1 << 31), (1 << 31) - 1))
    op = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                               "cmp", "adc", "sbb"]))
    if kind == "alu64":
        return "%sq %%%s, %%%s" % (op, r64a, r64b)
    if kind == "alu32":
        return "%sl %%%s, %%%s" % (op, r32,
                                   draw(st.sampled_from(_REGS32)))
    if kind == "alu8":
        return "%sb %%%s, %%%s" % (op, r8,
                                   draw(st.sampled_from(_REGS8)))
    if kind == "alu_imm":
        return "%sl $%d, %%%s" % (op, imm32, r32)
    if kind == "alu_mem":
        return "%sq %%%s, %d(%%%s)" % (op, r64a, disp, r64b)
    if kind == "mov_imm":
        return "movq $%d, %%%s" % (imm32, r64a)
    if kind == "mov_mem":
        scale = draw(st.sampled_from([1, 2, 4, 8]))
        index = draw(st.sampled_from([r for r in _REGS64
                                      if r != "rsp"]))
        return "movq %d(%%%s,%%%s,%d), %%%s" % (disp, r64a, index,
                                                scale, r64b)
    if kind == "lea":
        return "leaq %d(%%%s), %%%s" % (disp, r64a, r64b)
    if kind == "shift":
        return "%sq $%d, %%%s" % (
            draw(st.sampled_from(["shl", "shr", "sar", "rol", "ror"])),
            draw(st.integers(1, 63)), r64a)
    if kind == "unary":
        return "%sl %%%s" % (draw(st.sampled_from(
            ["neg", "not", "inc", "dec", "mul", "idiv"])), r32)
    if kind == "movx":
        return "%s %%%s, %%%s" % (
            draw(st.sampled_from(["movzbl", "movsbl"])), r8, r32)
    if kind == "imul3":
        return "imull $%d, %%%s, %%%s" % (
            draw(st.integers(-(1 << 15), 1 << 15)), r32,
            draw(st.sampled_from(_REGS32)))
    if kind == "test":
        return "testq %%%s, %%%s" % (r64a, r64b)
    xmm1 = "xmm%d" % draw(st.integers(0, 15))
    xmm2 = "xmm%d" % draw(st.integers(0, 15))
    return "%s %%%s, %%%s" % (
        draw(st.sampled_from(["addss", "addsd", "mulsd", "subss",
                              "movss", "movsd", "ucomisd", "pxor"])),
        xmm1, xmm2)


@requires_binutils
@given(fuzz_instruction())
@settings(max_examples=200, deadline=None)
def test_fuzzed_encoding_matches_gas(text):
    assert mao_encode_one(text).hex() == gas_encode_one(text).hex(), text
