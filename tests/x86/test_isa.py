"""Tests for mnemonic decomposition."""

import pytest

from repro.x86.isa import MnemonicInfo, UnknownMnemonic, split_mnemonic


class TestSuffixed:
    @pytest.mark.parametrize("mnemonic,base,width", [
        ("addl", "add", 32), ("addq", "add", 64),
        ("addw", "add", 16), ("addb", "add", 8),
        ("movq", "mov", 64), ("cmpl", "cmp", 32),
        ("testb", "test", 8), ("leaq", "lea", 64),
        ("imulq", "imul", 64), ("mull", "mul", 32),
        ("incl", "inc", 32), ("notq", "not", 64),
        ("pushq", "push", 64), ("popq", "pop", 64),
        ("xchgl", "xchg", 32), ("movabsq", "movabs", 64),
    ])
    def test_suffix_split(self, mnemonic, base, width):
        info = split_mnemonic(mnemonic)
        assert (info.base, info.width) == (base, width)

    def test_unsuffixed_alu(self):
        info = split_mnemonic("add")
        assert info.base == "add"
        assert info.width is None

    def test_mul_is_not_m_plus_ul(self):
        # "mul" ends in 'l' but is a base mnemonic, not "mu" + "l".
        assert split_mnemonic("mul").base == "mul"
        assert split_mnemonic("mul").width is None


class TestAliases:
    @pytest.mark.parametrize("alias,base", [
        ("sall", "shl"), ("salq", "shl"),
        ("cdqe", "cltq"), ("cqo", "cqto"), ("cdq", "cltd"),
    ])
    def test_aliases(self, alias, base):
        assert split_mnemonic(alias).base == base

    @pytest.mark.parametrize("alias,cond", [
        ("jz", "e"), ("jnz", "ne"), ("jc", "b"), ("jnc", "ae"),
    ])
    def test_jcc_aliases(self, alias, cond):
        info = split_mnemonic(alias)
        assert info.base == "j"
        assert info.cond == cond


class TestConditionFamilies:
    @pytest.mark.parametrize("mnemonic,base,cond", [
        ("je", "j", "e"), ("jg", "j", "g"), ("jae", "j", "ae"),
        ("sete", "set", "e"), ("setg", "set", "g"),
        ("cmove", "cmov", "e"), ("cmovle", "cmov", "le"),
    ])
    def test_cc_split(self, mnemonic, base, cond):
        info = split_mnemonic(mnemonic)
        assert (info.base, info.cond) == (base, cond)

    def test_cmov_with_size_suffix(self):
        info = split_mnemonic("cmovel")
        assert info.base == "cmov"
        assert info.cond == "e"
        assert info.width == 32

    def test_jmp_is_not_conditional(self):
        info = split_mnemonic("jmp")
        assert info.base == "jmp"
        assert info.cond is None

    def test_jmpq_callq_retq(self):
        assert split_mnemonic("jmpq").base == "jmp"
        assert split_mnemonic("callq").base == "call"
        assert split_mnemonic("retq").base == "ret"


class TestExtendMoves:
    @pytest.mark.parametrize("mnemonic,base,extend", [
        ("movsbl", "movsx", (8, 32)), ("movsbq", "movsx", (8, 64)),
        ("movswl", "movsx", (16, 32)), ("movslq", "movsx", (32, 64)),
        ("movzbl", "movzx", (8, 32)), ("movzwq", "movzx", (16, 64)),
    ])
    def test_extend(self, mnemonic, base, extend):
        info = split_mnemonic(mnemonic)
        assert info.base == base
        assert info.extend == extend

    def test_sse_movsd_is_not_string_move(self):
        assert split_mnemonic("movsd").base == "movsd"

    def test_movss(self):
        assert split_mnemonic("movss").base == "movss"


class TestUnknown:
    @pytest.mark.parametrize("mnemonic", ["frobnicate", "vaddps", "lodsb"])
    def test_unknown_raises(self, mnemonic):
        with pytest.raises(UnknownMnemonic):
            split_mnemonic(mnemonic)

    def test_multibyte_nop_spellings(self):
        assert split_mnemonic("nopl").base == "nop"
        assert split_mnemonic("nopw").base == "nop"
