"""Tests for the AT&T assembly parser."""

import pytest

from repro.x86.operands import Immediate, LabelRef, Memory, RegisterOperand
from repro.x86.parser import (
    ParseError,
    ParsedDirective,
    ParsedInstruction,
    ParsedLabel,
    ParsedOpaque,
    parse_asm_text,
    parse_instruction,
    parse_operand,
)


class TestOperands:
    def test_register(self):
        op = parse_operand("%rax")
        assert isinstance(op, RegisterOperand)
        assert op.reg.name == "rax"

    def test_immediate(self):
        assert parse_operand("$42") == Immediate(42)
        assert parse_operand("$-7") == Immediate(-7)
        assert parse_operand("$0x10") == Immediate(16)

    def test_symbolic_immediate(self):
        op = parse_operand("$.LC0")
        assert isinstance(op, Immediate)
        assert op.symbol == ".LC0"

    def test_symbolic_immediate_with_offset(self):
        op = parse_operand("$table+8")
        assert op.symbol == "table"
        assert op.value == 8

    def test_memory_base_only(self):
        op = parse_operand("(%rax)")
        assert isinstance(op, Memory)
        assert op.base.name == "rax"
        assert op.index is None
        assert op.disp == 0

    def test_memory_full_form(self):
        op = parse_operand("8(%rax,%rbx,4)")
        assert op.disp == 8
        assert op.base.name == "rax"
        assert op.index.name == "rbx"
        assert op.scale == 4

    def test_memory_negative_disp(self):
        op = parse_operand("-0x4(%rbp)")
        assert op.disp == -4

    def test_memory_index_only(self):
        op = parse_operand("(,%rbx,8)")
        assert op.base is None
        assert op.index.name == "rbx"
        assert op.scale == 8

    def test_memory_rip_relative(self):
        op = parse_operand("counter(%rip)")
        assert op.symbol == "counter"
        assert op.is_rip_relative

    def test_memory_symbol_plus_offset(self):
        op = parse_operand("table+16(%rip)")
        assert op.symbol == "table"
        assert op.disp == 16

    def test_bare_symbol_is_memory_for_data_ops(self):
        op = parse_operand("counter", is_branch=False)
        assert isinstance(op, Memory)
        assert op.symbol == "counter"

    def test_bare_symbol_is_label_for_branches(self):
        op = parse_operand(".L5", is_branch=True)
        assert op == LabelRef(".L5")

    def test_indirect_register(self):
        op = parse_operand("*%rax")
        assert isinstance(op, RegisterOperand)
        assert op.indirect

    def test_indirect_memory(self):
        op = parse_operand("*(%rax,%rbx,8)")
        assert isinstance(op, Memory)
        assert op.indirect

    def test_indirect_symbol(self):
        op = parse_operand("*table(,%rax,8)", is_branch=True)
        assert isinstance(op, Memory)
        assert op.symbol == "table"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ParseError):
            parse_operand("(%rax,%rbx,3)")

    def test_rsp_as_index_rejected(self):
        with pytest.raises(ParseError):
            parse_operand("(%rax,%rsp,2)")

    def test_unknown_register_rejected(self):
        with pytest.raises(ParseError):
            parse_operand("%qax")


class TestInstructions:
    def test_two_operand(self):
        parsed = parse_instruction("movl $5, %eax")
        assert isinstance(parsed, ParsedInstruction)
        insn = parsed.insn
        assert insn.base == "mov"
        assert insn.operands == [Immediate(5),
                                 parse_operand("%eax")]

    def test_no_operand(self):
        parsed = parse_instruction("ret")
        assert parsed.insn.base == "ret"
        assert parsed.insn.operands == []

    def test_prefixes(self):
        parsed = parse_instruction("lock addl $1, (%rax)")
        assert parsed.insn.prefixes == ["lock"]
        assert parsed.insn.base == "add"

    def test_rep_prefix_with_unknown_becomes_opaque(self):
        parsed = parse_instruction("rep movsb")
        assert isinstance(parsed, ParsedOpaque)
        assert parsed.text == "rep movsb"

    def test_unknown_mnemonic_is_opaque(self):
        parsed = parse_instruction("vaddps %ymm0, %ymm1, %ymm2")
        assert isinstance(parsed, ParsedOpaque)

    def test_branch_target(self):
        parsed = parse_instruction("jne .L1")
        assert parsed.insn.branch_target_label() == ".L1"

    def test_paper_instruction(self):
        parsed = parse_instruction("movsbl 1(%rdi,%r8,4),%edx")
        insn = parsed.insn
        assert insn.base == "movsx"
        mem = insn.operands[0]
        assert (mem.disp, mem.base.name, mem.index.name, mem.scale) \
            == (1, "rdi", "r8", 4)


class TestFullText:
    def test_labels_and_sections(self):
        statements = parse_asm_text("""
.text
main:
    nop
.L1: .L2:
    ret
""")
        kinds = [type(s).__name__ for s in statements]
        assert kinds == ["ParsedDirective", "ParsedLabel",
                         "ParsedInstruction", "ParsedLabel", "ParsedLabel",
                         "ParsedInstruction"]

    def test_comments_stripped(self):
        statements = parse_asm_text("nop # comment with ; and : inside\n")
        assert len(statements) == 1

    def test_hash_inside_string_preserved(self):
        statements = parse_asm_text('.ascii "a#b"\n')
        directive = statements[0]
        assert isinstance(directive, ParsedDirective)
        assert '"a#b"' in directive.args

    def test_semicolon_separates_statements(self):
        statements = parse_asm_text("nop; nop; ret\n")
        assert len(statements) == 3

    def test_block_comments(self):
        statements = parse_asm_text("nop /* multi\nline */ \nret\n")
        bases = [s.insn.base for s in statements
                 if isinstance(s, ParsedInstruction)]
        assert bases == ["nop", "ret"]

    def test_directive_args_preserved(self):
        statements = parse_asm_text(".p2align 4,,10\n")
        assert statements[0].name == "p2align"
        assert statements[0].args == "4,,10"

    def test_empty_input(self):
        assert parse_asm_text("") == []

    def test_line_numbers(self):
        statements = parse_asm_text("\n\nnop\n")
        assert statements[0].lineno == 3
