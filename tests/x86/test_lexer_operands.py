"""Tests for the lexer and operand value objects."""

import pytest

from repro.x86.lexer import (
    LexError,
    logical_lines,
    parse_integer,
    split_operands,
    tokenize_operand,
)
from repro.x86.operands import Immediate, LabelRef, Memory, RegisterOperand
from repro.x86.registers import get_register


class TestLogicalLines:
    def test_comment_stripping(self):
        lines = list(logical_lines("nop # c\n  ret  \n"))
        assert [l.text for l in lines] == ["nop", "ret"]

    def test_string_protects_hash(self):
        lines = list(logical_lines('.ascii "x#y" # real comment\n'))
        assert lines[0].text == '.ascii "x#y"'

    def test_semicolons(self):
        lines = list(logical_lines("nop;ret\n"))
        assert [l.text for l in lines] == ["nop", "ret"]

    def test_semicolon_in_string(self):
        lines = list(logical_lines('.ascii "a;b"\n'))
        assert len(lines) == 1

    def test_block_comment_spans_lines(self):
        lines = list(logical_lines("nop /* x\ny */ ret\n"))
        assert [l.text for l in lines] == ["nop", "ret"]

    def test_empty_lines_skipped(self):
        assert list(logical_lines("\n\n  \n")) == []

    def test_linenos(self):
        lines = list(logical_lines("nop\n\nret\n"))
        assert [(l.text, l.lineno) for l in lines] \
            == [("nop", 1), ("ret", 3)]


class TestTokenizer:
    def test_register_token(self):
        assert tokenize_operand("%rax") == [("REG", "%rax")]

    def test_immediate_tokens(self):
        assert tokenize_operand("$42")[0] == ("DOLLAR", "$")

    def test_memory_tokens(self):
        kinds = [k for k, _ in tokenize_operand("-8(%rbp,%rax,4)")]
        assert kinds == ["NUMBER", "LPAREN", "REG", "COMMA", "REG",
                         "COMMA", "NUMBER", "RPAREN"]

    def test_hex_numbers(self):
        assert tokenize_operand("0x10") == [("NUMBER", "0x10")]
        assert tokenize_operand("-0xFF") == [("NUMBER", "-0xFF")]

    def test_symbols_with_dots(self):
        assert tokenize_operand(".L5") == [("IDENT", ".L5")]

    def test_garbage_rejected(self):
        with pytest.raises(LexError):
            tokenize_operand("%rax ` %rbx")


class TestSplitOperands:
    def test_simple(self):
        assert split_operands("%rax, %rbx") == ["%rax", "%rbx"]

    def test_memory_commas_protected(self):
        assert split_operands("8(%rax,%rbx,4), %rdx") \
            == ["8(%rax,%rbx,4)", "%rdx"]

    def test_empty(self):
        assert split_operands("") == []

    def test_parse_integer(self):
        assert parse_integer("10") == 10
        assert parse_integer("0x10") == 16
        assert parse_integer("-5") == -5


class TestOperandObjects:
    def test_immediate_str(self):
        assert str(Immediate(5)) == "$5"
        assert str(Immediate(-5)) == "$-5"
        assert str(Immediate(4, symbol="tab")) == "$tab+4"
        assert str(Immediate(0, symbol="tab")) == "$tab"

    def test_immediate_ranges(self):
        assert Immediate(127).fits_signed(8)
        assert not Immediate(128).fits_signed(8)
        assert Immediate(255).fits_unsigned(8)
        assert not Immediate(-1).fits_unsigned(8)

    def test_memory_str_forms(self):
        rax = get_register("rax")
        rbx = get_register("rbx")
        assert str(Memory(base=rax)) == "(%rax)"
        assert str(Memory(disp=-8, base=rax)) == "-8(%rax)"
        assert str(Memory(disp=8, base=rax, index=rbx, scale=4)) \
            == "8(%rax,%rbx,4)"
        assert str(Memory(symbol="x", base=get_register("rip"))) \
            == "x(%rip)"

    def test_memory_validation(self):
        with pytest.raises(ValueError):
            Memory(scale=3)
        with pytest.raises(ValueError):
            Memory(index=get_register("rsp"))

    def test_register_operand_str(self):
        op = RegisterOperand(get_register("rax"))
        assert str(op) == "%rax"
        assert str(RegisterOperand(get_register("rax"),
                                   indirect=True)) == "*%rax"

    def test_label_ref(self):
        assert str(LabelRef(".L5")) == ".L5"

    def test_memory_flags(self):
        rip = get_register("rip")
        assert Memory(symbol="x", base=rip).is_rip_relative
        assert Memory(disp=4).is_absolute
        assert not Memory(base=get_register("rax")).is_absolute


class TestTokenInterning:
    """Corpus parsing must not allocate duplicate tokens per line."""

    def test_two_parses_share_register_tokens(self):
        first = tokenize_operand("8(%rax,%rbx,4)")
        second = tokenize_operand("8(%rax,%rbx,4)")
        assert first == second
        regs_first = [t for t in first if t[0] == "REG"]
        regs_second = [t for t in second if t[0] == "REG"]
        assert regs_first and all(
            a is b for a, b in zip(regs_first, regs_second))

    def test_all_tokens_shared_across_parses(self):
        first = tokenize_operand("-16(%rsp)")
        second = tokenize_operand("-16(%rsp)")
        for a, b in zip(first, second):
            assert a is b

    def test_same_register_in_different_operands_shared(self):
        (reg_a,) = [t for t in tokenize_operand("%rdi") if t[0] == "REG"]
        reg_b = [t for t in tokenize_operand("8(%rdi)")
                 if t[0] == "REG"][0]
        assert reg_a is reg_b

    def test_mnemonics_interned_across_instructions(self):
        from repro.x86.parser import parse_instruction
        one = parse_instruction("movq %rax, %rbx")
        two = parse_instruction("movq %rcx, %rdx")
        assert one.insn.mnemonic is two.insn.mnemonic
