"""Round-trip identity tests (the paper's §III.A verification method).

"For each source file we take the compiler generated assembly file A1 ...
Then we run MAO on A1 ... and generate an assembly file A2 ... and verify
that both disassembled files are textually identical.  Since MAO didn't
perform any transformations, the disassembled files must match."

Here: parse -> IR -> emit -> re-parse -> relax must give byte-identical
code images.  A hypothesis property extends this over generated programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.workloads.corpus import CorpusConfig, generate_corpus_text


def image_of(source: str) -> bytes:
    unit = parse_unit(source)
    return relax_section(unit, unit.get_section(".text")).code_image()


def roundtrip(source: str) -> str:
    return parse_unit(source).to_asm()


FIXED_PROGRAMS = [
    """
.text
main:
    push %rbp
    mov %rsp,%rbp
    movl $0x5,-0x4(%rbp)
    jmp .L2
.L1:
    addl $0x1,-0x4(%rbp)
.L2:
    cmpl $0x0,-0x4(%rbp)
    jne .L1
    leave
    ret
""",
    """
.text
f:
    movsbl 1(%rdi,%r8,4),%edx
    movss %xmm0,(%rdi,%rax,4)
    leaq table(%rip), %rcx
    jmp *(%rcx,%rax,8)
.Lc:
    ret
.section .rodata
table:
    .quad .Lc
""",
]


@pytest.mark.parametrize("source", FIXED_PROGRAMS)
def test_roundtrip_identity_fixed(source):
    once = roundtrip(source)
    twice = roundtrip(once)
    assert once == twice
    assert image_of(source) == image_of(once)


def test_roundtrip_identity_on_corpus():
    source = generate_corpus_text(CorpusConfig(seed=3, scale=0.002))
    once = roundtrip(source)
    assert image_of(source) == image_of(once)
    assert roundtrip(once) == once


# ---------------------------------------------------------------------------
# Property: random straight-line programs round-trip byte-identically.
# ---------------------------------------------------------------------------

_REGS64 = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi",
           "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]
_REGS32 = ["eax", "ebx", "ecx", "edx", "esi", "edi",
           "r8d", "r9d", "r10d", "r11d"]


@st.composite
def random_instruction(draw):
    kind = draw(st.sampled_from(
        ["alu_rr", "alu_ri", "mov_rm", "mov_mr", "lea", "shift",
         "test", "inc", "push_pop", "setcc", "nop"]))
    r1 = draw(st.sampled_from(_REGS64))
    r2 = draw(st.sampled_from(_REGS64))
    e1 = draw(st.sampled_from(_REGS32))
    e2 = draw(st.sampled_from(_REGS32))
    imm = draw(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    disp = draw(st.integers(min_value=-256, max_value=256))
    op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "cmp"]))
    if kind == "alu_rr":
        return "%sq %%%s, %%%s" % (op, r1, r2)
    if kind == "alu_ri":
        return "%sl $%d, %%%s" % (op, imm, e1)
    if kind == "mov_rm":
        return "movq %%%s, %d(%%%s)" % (r1, disp, r2)
    if kind == "mov_mr":
        return "movl %d(%%%s), %%%s" % (disp, r1, e2)
    if kind == "lea":
        scale = draw(st.sampled_from([1, 2, 4, 8]))
        if r2 == "rsp":
            r2 = "rbx"
        return "leaq %d(%%%s,%%%s,%d), %%%s" % (disp, r1, r2, scale, r1)
    if kind == "shift":
        count = draw(st.integers(min_value=1, max_value=63))
        return "shrq $%d, %%%s" % (count, r1)
    if kind == "test":
        return "testl %%%s, %%%s" % (e1, e2)
    if kind == "inc":
        return "incq %%%s" % r1
    if kind == "push_pop":
        return "%s %%%s" % (draw(st.sampled_from(["push", "pop"])), r1)
    if kind == "setcc":
        cc = draw(st.sampled_from(["e", "ne", "l", "g", "be", "s"]))
        return "set%s %%al" % cc
    return "nop"


@given(st.lists(random_instruction(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(instructions):
    source = ".text\nf:\n" + "\n".join(
        "    " + text for text in instructions) + "\n    ret\n"
    once = roundtrip(source)
    assert roundtrip(once) == once
    assert image_of(source) == image_of(once)
