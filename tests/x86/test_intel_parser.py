"""Tests for the Intel-syntax front end (paper: gas accepts both)."""

import pytest

from repro.ir import parse_unit
from repro.sim import run_unit
from repro.x86.intel_parser import (
    IntelSyntaxError,
    _translate_memory,
    translate_instruction,
)


class TestTranslation:
    @pytest.mark.parametrize("intel,att", [
        ("mov eax, 5", "mov $5, %eax"),
        ("mov rax, rbx", "mov %rbx, %rax"),
        ("add eax, 3", "add $3, %eax"),
        ("ret", "ret"),
        ("jmp target", "jmp target"),
        ("jne target", "jne target"),
        ("call rax", "call *%rax"),
        ("push rbp", "push %rbp"),
        ("mov eax, dword ptr [rsp]", "movl (%rsp), %eax"),
        ("mov dword ptr [rbp-4], 5", "movl $5, -4(%rbp)"),
        ("mov rdx, qword ptr [rax+rbx*4+8]",
         "movq 8(%rax,%rbx,4), %rdx"),
        ("lea rcx, [rsp+16]", "lea 16(%rsp), %rcx"),
        ("mov al, byte ptr [rdi]", "movb (%rdi), %al"),
        ("cmp rax, 7", "cmp $7, %rax"),
        ("imul eax, ecx", "imul %ecx, %eax"),
    ])
    def test_translation(self, intel, att):
        assert translate_instruction(intel) == att

    def test_symbol_memory_is_rip_relative(self):
        assert _translate_memory("counter") == "counter(%rip)"

    def test_symbol_plus_register(self):
        assert _translate_memory("table+rax*8") == "table(,%rax,8)"

    def test_too_many_registers_rejected(self):
        with pytest.raises(IntelSyntaxError):
            _translate_memory("rax+rbx+rcx")


class TestEndToEnd:
    SOURCE = """
.text
main:
    mov eax, 5
    add eax, 3
    mov dword ptr [rsp-16], eax
    mov ebx, dword ptr [rsp-16]
    cmp ebx, 8
    jne skip
    add ebx, 100
skip:
    ret
"""

    def test_parses_into_unit(self):
        unit = parse_unit(self.SOURCE, syntax="intel")
        assert unit.instruction_count() == 8
        # Without .type directives the function heuristic also counts the
        # bare "skip" label; "main" must come first.
        assert unit.functions[0].name == "main"

    def test_executes_correctly(self):
        result = run_unit(parse_unit(self.SOURCE, syntax="intel"))
        assert result.state.gp["rbx"] == 108

    def test_equivalent_to_att(self):
        att = """
.text
main:
    movl $5, %eax
    addl $3, %eax
    movl %eax, -16(%rsp)
    movl -16(%rsp), %ebx
    cmpl $8, %ebx
    jne skip
    addl $100, %ebx
skip:
    ret
"""
        intel_run = run_unit(parse_unit(self.SOURCE, syntax="intel"))
        att_run = run_unit(parse_unit(att))
        assert intel_run.state.gp["rbx"] == att_run.state.gp["rbx"]

    def test_passes_work_on_intel_input(self):
        source = """
.text
main:
    sub r15d, 16
    test r15d, r15d
    je done
    add rsi, 3
    add rsi, 4
done:
    ret
"""
        from repro.passes import run_passes
        unit = parse_unit(source, syntax="intel")
        result = run_passes(unit, "REDTEST:ADDADD")
        assert result.total("REDTEST", "removed") == 1
        assert result.total("ADDADD", "folded") == 1

    def test_unknown_syntax_rejected(self):
        with pytest.raises(ValueError):
            parse_unit("nop", syntax="masm")
