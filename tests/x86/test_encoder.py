"""Unit tests for the encoder, pinned to the paper's own listings."""

import pytest

from repro.x86.encoder import (
    EncodeError,
    encode_instruction,
    instruction_length,
    nop_sequence,
)
from repro.x86.parser import parse_instruction


def enc(text, symtab=None, address=None):
    insn = parse_instruction(text).insn
    return encode_instruction(insn, symtab=symtab, address=address)


class TestPaperListings:
    """The exact encodings from the relaxation example in §II."""

    @pytest.mark.parametrize("text,expected", [
        ("push %rbp", "55"),
        ("mov %rsp,%rbp", "4889e5"),
        ("movl $0x5,-0x4(%rbp)", "c745fc05000000"),
        ("addl $0x1,-0x4(%rbp)", "8345fc01"),
        ("subl $0x1,-0x4(%rbp)", "836dfc01"),
        ("cmpl $0x0,-0x4(%rbp)", "837dfc00"),
        ("nop", "90"),
    ])
    def test_section2_listing(self, text, expected):
        assert enc(text).hex() == expected

    def test_short_jmp_from_listing(self):
        # "b: eb 7f  jmp 8c" — target 0x8c from address 0xb.
        assert enc("jmp .target", symtab={".target": 0x8C},
                   address=0xB).hex() == "eb7f"

    def test_long_jmp_after_growth(self):
        # "b: e9 80 00 00 00  jmpq 90" — rel8 no longer fits.
        assert enc("jmp .target", symtab={".target": 0x90},
                   address=0xB).hex() == "e980000000"

    def test_backward_jne_long(self):
        # The paper lists "90: 0f 85 7a ff ff ff  jne d", but the correct
        # displacement to 0xd from the instruction end (0x96) is -137 =
        # 0xffffff77 (the listing's 0x7a is a typo; its own second listing
        # computes the analogous displacement correctly).
        assert enc("jne .target", symtab={".target": 0xD},
                   address=0x90).hex() == "0f8577ffffff"


class TestImmediateSelection:
    def test_imm8_sign_extended_form(self):
        assert enc("addl $1, %ebx").hex() == "83c301"

    def test_imm32_form(self):
        assert enc("addl $1000, %ebx").hex() == "81c3e8030000"

    def test_accumulator_shortcut(self):
        assert enc("addl $1000, %eax").hex() == "05e8030000"

    def test_mov_imm64_uses_movabs_form(self):
        encoding = enc("movq $0x1122334455667788, %rax")
        assert encoding.hex() == "48b88877665544332211"

    def test_mov_imm32_sign_extended(self):
        assert enc("movq $-1, %rax").hex() == "48c7c0ffffffff"

    def test_immediate_out_of_range(self):
        with pytest.raises(EncodeError):
            enc("addl $0x1ffffffff, %eax")


class TestModRM:
    def test_rsp_base_needs_sib(self):
        assert enc("movq (%rsp), %rax").hex() == "488b0424"

    def test_r12_base_needs_sib(self):
        assert enc("movq (%r12), %rax").hex() == "498b0424"

    def test_rbp_base_needs_disp8(self):
        assert enc("movq (%rbp), %rax").hex() == "488b4500"

    def test_r13_base_needs_disp8(self):
        assert enc("movq (%r13), %rax").hex() == "498b4500"

    def test_disp32_when_large(self):
        assert enc("movl 0x200(%rax), %ebx").hex() == "8b9800020000"

    def test_rip_relative_placeholder(self):
        # Unresolved symbol -> zero displacement.
        assert enc("leaq sym(%rip), %rdx").hex() == "488d150000000"[:14] \
            or enc("leaq sym(%rip), %rdx").hex() == "488d1500000000"

    def test_rip_relative_resolved(self):
        encoding = enc("leaq sym(%rip), %rdx",
                       symtab={"sym": 0x100}, address=0x80)
        # rel = 0x100 - (0x80 + 7) = 0x79
        assert encoding.hex() == "488d1579000000"


class TestRexHandling:
    def test_no_rex_for_legacy_32bit(self):
        assert enc("movl %eax, %ebx").hex() == "89c3"

    def test_rex_w_for_64bit(self):
        assert enc("movq %rax, %rbx").hex() == "4889c3"

    def test_rex_b_for_extended_dest(self):
        assert enc("movl %eax, %r8d").hex() == "4189c0"

    def test_rex_r_for_extended_src(self):
        assert enc("movl %r9d, %eax").hex() == "4489c8"

    def test_bare_rex_for_new_low8(self):
        assert enc("movb %sil, %al").hex() == "4088f0"

    def test_high8_with_rex_rejected(self):
        with pytest.raises(EncodeError):
            enc("movb %ah, %sil")

    def test_high8_without_rex_ok(self):
        assert enc("movb %ah, %bh").hex() == "88e7"


class TestBranches:
    def test_unresolved_branch_is_long(self):
        assert len(enc("jmp nowhere")) == 5
        assert len(enc("je nowhere")) == 6

    def test_call_is_always_rel32(self):
        assert len(enc("call f", symtab={"f": 10}, address=0)) == 5

    def test_indirect_jump(self):
        assert enc("jmp *%rax").hex() == "ffe0"
        assert enc("call *%rdx").hex() == "ffd2"


class TestMultibyteNops:
    def test_nop_sequence_lengths(self):
        for total in range(0, 40):
            chunks = nop_sequence(total)
            assert sum(len(c) for c in chunks) == total

    def test_nop_sequence_rejects_negative(self):
        with pytest.raises(ValueError):
            nop_sequence(-1)

    def test_five_byte_nop_instruction(self):
        from repro.passes.util import make_nop5
        from repro.x86.encoder import encode_instruction
        assert len(encode_instruction(make_nop5())) == 5

    def test_multibyte_nop_disp8_form(self):
        assert enc("nopl 64(%rax,%rax,1)").hex() == "0f1f440040"

    def test_nopw(self):
        assert enc("nopw 64(%rax,%rax,1)").hex() == "660f1f440040"


class TestLengths:
    @pytest.mark.parametrize("text,length", [
        ("nop", 1), ("ret", 1), ("leave", 1),
        ("push %rbp", 1), ("push %r12", 2),
        ("mov %rsp,%rbp", 3),
        ("movss %xmm0,(%rdi,%rax,4)", 5),
        ("movsbl 1(%rdi,%r8,4),%edx", 6),
    ])
    def test_lengths(self, text, length):
        insn = parse_instruction(text).insn
        assert instruction_length(insn) == length

    def test_encoding_cached_on_instruction(self):
        insn = parse_instruction("nop").insn
        encode_instruction(insn)
        assert insn.encoding == b"\x90"
