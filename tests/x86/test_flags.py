"""Tests for condition-code modelling."""

import pytest

from repro.x86.flags import (
    CC_CANONICAL,
    cc_encoding,
    cc_flags_read,
    cc_negate,
    is_cc_suffix,
    parity,
    split_cc_mnemonic,
)


class TestEncodings:
    @pytest.mark.parametrize("cond,code", [
        ("o", 0x0), ("no", 0x1), ("b", 0x2), ("ae", 0x3),
        ("e", 0x4), ("ne", 0x5), ("be", 0x6), ("a", 0x7),
        ("s", 0x8), ("ns", 0x9), ("p", 0xA), ("np", 0xB),
        ("l", 0xC), ("ge", 0xD), ("le", 0xE), ("g", 0xF),
    ])
    def test_primary_encodings(self, cond, code):
        assert cc_encoding(cond) == code

    @pytest.mark.parametrize("alias,canonical", [
        ("z", "e"), ("nz", "ne"), ("c", "b"), ("nc", "ae"),
        ("nae", "b"), ("nbe", "a"), ("pe", "p"), ("po", "np"),
        ("nge", "l"), ("nle", "g"),
    ])
    def test_alias_encodings(self, alias, canonical):
        assert cc_encoding(alias) == cc_encoding(canonical)

    def test_canonical_table_is_complete(self):
        assert sorted(CC_CANONICAL) == list(range(16))


class TestFlagsRead:
    @pytest.mark.parametrize("cond,flags", [
        ("e", {"ZF"}), ("ne", {"ZF"}),
        ("b", {"CF"}), ("ae", {"CF"}),
        ("be", {"CF", "ZF"}), ("a", {"CF", "ZF"}),
        ("s", {"SF"}), ("ns", {"SF"}),
        ("l", {"SF", "OF"}), ("ge", {"SF", "OF"}),
        ("le", {"ZF", "SF", "OF"}), ("g", {"ZF", "SF", "OF"}),
        ("o", {"OF"}), ("p", {"PF"}),
    ])
    def test_read_sets(self, cond, flags):
        assert cc_flags_read(cond) == frozenset(flags)


class TestNegation:
    @pytest.mark.parametrize("cond,neg", [
        ("e", "ne"), ("ne", "e"), ("l", "ge"), ("g", "le"),
        ("b", "ae"), ("a", "be"), ("s", "ns"), ("o", "no"),
    ])
    def test_negate(self, cond, neg):
        assert cc_negate(cond) == neg

    def test_double_negation_is_identity(self):
        for cond in CC_CANONICAL.values():
            assert cc_negate(cc_negate(cond)) == cond


class TestMnemonicSplit:
    @pytest.mark.parametrize("mnemonic,prefix,cond", [
        ("je", "j", "e"), ("jne", "j", "ne"), ("jg", "j", "g"),
        ("sete", "set", "e"), ("setnbe", "set", "nbe"),
        ("cmovle", "cmov", "le"),
    ])
    def test_split(self, mnemonic, prefix, cond):
        assert split_cc_mnemonic(mnemonic) == (prefix, cond)

    @pytest.mark.parametrize("mnemonic", ["jmp", "mov", "add", "not"])
    def test_non_cc_mnemonics_raise(self, mnemonic):
        with pytest.raises(ValueError):
            split_cc_mnemonic(mnemonic)

    def test_is_cc_suffix(self):
        assert is_cc_suffix("ne")
        assert not is_cc_suffix("mp")


class TestParity:
    def test_even_parity(self):
        assert parity(0x00)       # zero bits set -> even
        assert parity(0x03)
        assert parity(0xFF)

    def test_odd_parity(self):
        assert not parity(0x01)
        assert not parity(0x07)

    def test_only_low_byte_counts(self):
        assert parity(0x100) == parity(0x00)
        assert parity(0x101) == parity(0x01)
