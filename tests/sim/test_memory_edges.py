"""Edge-case tests for the sparse memory image.

The block-cached interpreter leans on SparseMemory for every load/store
and on ``clone()`` for program reuse across sweeps, so the page-boundary
arithmetic has to be exact: cross-page accesses, unaligned widths, and
partial overwrites all round-trip bit-exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.memory import _PAGE_SIZE, SparseMemory

PAGE = _PAGE_SIZE


class TestCrossPage:
    def test_write_read_straddles_page_boundary(self):
        mem = SparseMemory()
        mem.write(PAGE - 4, 0x1122334455667788, 8)
        assert mem.read(PAGE - 4, 8) == 0x1122334455667788
        # Both halves land on the right pages (little-endian).
        assert mem.read(PAGE - 4, 4) == 0x55667788
        assert mem.read(PAGE, 4) == 0x11223344

    def test_bytes_roundtrip_across_pages(self):
        mem = SparseMemory()
        data = bytes(range(1, 17))
        mem.write_bytes(2 * PAGE - 8, data)
        assert mem.read_bytes(2 * PAGE - 8, 16) == data
        assert mem.read_bytes(2 * PAGE - 8, 8) == data[:8]
        assert mem.read_bytes(2 * PAGE, 8) == data[8:]

    def test_unmapped_reads_are_zero(self):
        mem = SparseMemory()
        assert mem.read(123456, 8) == 0
        assert mem.read_bytes(PAGE - 2, 4) == b"\x00" * 4

    def test_write_spanning_three_pages(self):
        mem = SparseMemory()
        data = bytes((i * 7 + 3) & 0xFF for i in range(2 * PAGE + 10))
        mem.write_bytes(PAGE - 5, data)
        assert mem.read_bytes(PAGE - 5, len(data)) == data


class TestUnaligned:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    @pytest.mark.parametrize("offset", [-8, -7, -3, -1, 0, 1, 5])
    def test_each_width_at_page_edge(self, size, offset):
        mem = SparseMemory()
        address = PAGE + offset
        value = 0xA5C3F1E2D4B69788 & ((1 << (8 * size)) - 1)
        mem.write(address, value, size)
        assert mem.read(address, size) == value

    def test_value_is_masked_to_width(self):
        mem = SparseMemory()
        mem.write(100, 0x1FF, 1)
        assert mem.read(100, 1) == 0xFF
        assert mem.read(101, 1) == 0  # no spill into the next byte


class TestPartialOverwrite:
    def test_read_after_partial_write(self):
        mem = SparseMemory()
        mem.write(64, 0x1111111111111111, 8)
        mem.write(66, 0xABCD, 2)
        assert mem.read(64, 8) == 0x1111ABCD1111 | (0x1111 << 48)
        assert mem.read(66, 2) == 0xABCD
        assert mem.read(64, 2) == 0x1111

    def test_partial_write_across_page_edge(self):
        mem = SparseMemory()
        mem.write(PAGE - 4, 0xFFFFFFFFFFFFFFFF, 8)
        mem.write(PAGE - 1, 0x00, 1)
        assert mem.read(PAGE - 4, 8) == 0xFFFFFFFF00FFFFFF


class TestClone:
    def test_clone_is_deep(self):
        mem = SparseMemory()
        mem.write(PAGE - 2, 0xBEEF, 2)
        dup = mem.clone()
        dup.write(PAGE - 2, 0xDEAD, 2)
        dup.write(5 * PAGE, 0x42, 1)
        assert mem.read(PAGE - 2, 2) == 0xBEEF
        assert mem.read(5 * PAGE, 1) == 0
        assert dup.read(PAGE - 2, 2) == 0xDEAD

    def test_clone_hash_matches_until_divergence(self):
        mem = SparseMemory()
        mem.write_bytes(10, b"hello world")
        dup = mem.clone()
        assert dup.snapshot_hash() == mem.snapshot_hash()
        dup.write(10, ord("H"), 1)
        assert dup.snapshot_hash() != mem.snapshot_hash()


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(address=st.integers(min_value=0, max_value=4 * PAGE),
           size=st.sampled_from([1, 2, 4, 8]),
           value=st.integers(min_value=0))
    def test_write_then_read_roundtrip(self, address, size, value):
        mem = SparseMemory()
        masked = value & ((1 << (8 * size)) - 1)
        mem.write(address, value, size)
        assert mem.read(address, size) == masked

    @settings(max_examples=100, deadline=None)
    @given(address=st.integers(min_value=0, max_value=3 * PAGE),
           data=st.binary(min_size=1, max_size=64))
    def test_bytes_roundtrip(self, address, data):
        mem = SparseMemory()
        mem.write_bytes(address, data)
        assert mem.read_bytes(address, len(data)) == data

    @settings(max_examples=100, deadline=None)
    @given(writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2 * PAGE),
                  st.sampled_from([1, 2, 4, 8]),
                  st.integers(min_value=0, max_value=2 ** 64 - 1)),
        min_size=1, max_size=16))
    def test_overlapping_writes_match_flat_model(self, writes):
        mem = SparseMemory()
        flat = bytearray(3 * PAGE)
        for address, size, value in writes:
            mem.write(address, value, size)
            flat[address:address + size] = \
                (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        for address, size, _ in writes:
            assert mem.read_bytes(address, size) == \
                bytes(flat[address:address + size])
