"""Tests for SparseMemory, MachineState, and the program loader."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_unit
from repro.sim.loader import DATA_BASE, TEXT_BASE, load_unit
from repro.sim.memory import SparseMemory
from repro.sim.state import MachineState
from repro.x86.registers import get_register


class TestSparseMemory:
    def test_read_unmapped_is_zero(self):
        memory = SparseMemory()
        assert memory.read(0x123456, 8) == 0

    def test_write_read_roundtrip(self):
        memory = SparseMemory()
        memory.write(0x1000, 0x1122334455667788, 8)
        assert memory.read(0x1000, 8) == 0x1122334455667788
        assert memory.read(0x1000, 4) == 0x55667788
        assert memory.read(0x1004, 4) == 0x11223344

    def test_little_endian(self):
        memory = SparseMemory()
        memory.write(0, 0x0102, 2)
        assert memory.read(0, 1) == 0x02
        assert memory.read(1, 1) == 0x01

    def test_cross_page_access(self):
        memory = SparseMemory()
        memory.write(0xFFF, 0xAABB, 2)       # straddles a 4K page
        assert memory.read(0xFFF, 2) == 0xAABB
        assert memory.touched_pages() == 2

    def test_bytes_interface(self):
        memory = SparseMemory()
        memory.write_bytes(0x40, b"hello")
        assert memory.read_bytes(0x40, 5) == b"hello"

    def test_nonzero_ranges(self):
        memory = SparseMemory()
        memory.write_bytes(0x10, b"ab")
        memory.write_bytes(0x20, b"c")
        ranges = list(memory.nonzero_ranges())
        assert (0x10, b"ab") in ranges
        assert (0x20, b"c") in ranges

    @given(st.integers(0, 2 ** 30), st.integers(0, 2 ** 64 - 1),
           st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, address, value, size):
        memory = SparseMemory()
        memory.write(address, value, size)
        assert memory.read(address, size) == value & ((1 << (8 * size)) - 1)


class TestMachineState:
    def test_width_views(self):
        state = MachineState()
        state.write_reg(get_register("rax"), 0x1122334455667788)
        assert state.read_reg(get_register("eax")) == 0x55667788
        assert state.read_reg(get_register("ax")) == 0x7788
        assert state.read_reg(get_register("al")) == 0x88
        assert state.read_reg(get_register("ah")) == 0x77

    def test_32bit_write_zero_extends(self):
        state = MachineState()
        state.write_reg(get_register("rax"), -1 & (2 ** 64 - 1))
        state.write_reg(get_register("eax"), 5)
        assert state.gp["rax"] == 5

    def test_16_and_8bit_writes_merge(self):
        state = MachineState()
        state.write_reg(get_register("rax"), 0xFFFFFFFFFFFFFFFF)
        state.write_reg(get_register("ax"), 0)
        assert state.gp["rax"] == 0xFFFFFFFFFFFF0000
        state.write_reg(get_register("ah"), 0x12)
        assert state.gp["rax"] == 0xFFFFFFFFFFFF1200

    def test_xmm(self):
        state = MachineState()
        state.write_reg(get_register("xmm3"), 1 << 100)
        assert state.read_reg(get_register("xmm3")) == 1 << 100

    def test_snapshot_contains_everything(self):
        snapshot = MachineState().snapshot()
        assert "rax" in snapshot and "xmm15" in snapshot \
            and "rip" in snapshot

    def test_diff(self):
        a, b = MachineState(), MachineState()
        a.gp["rbx"] = 7
        assert a.diff(b) == {"rbx": (7, 0)}
        assert a.diff(b, ignore={"rbx"}) == {}


class TestLoader:
    SOURCE = """
.text
.globl main
main:
    movq counter(%rip), %rax
    ret
.section .data
counter:
    .quad 42
message:
    .asciz "hi"
.section .rodata
.align 8
table:
    .quad main
    .quad 0x1234
"""

    def test_section_bases(self):
        program = load_unit(parse_unit(self.SOURCE))
        assert program.symtab["main"] >= TEXT_BASE
        assert program.symtab["counter"] >= DATA_BASE

    def test_data_materialized(self):
        program = load_unit(parse_unit(self.SOURCE))
        assert program.memory.read(program.symtab["counter"], 8) == 42
        assert program.memory.read_bytes(program.symtab["message"], 3) \
            == b"hi\x00"

    def test_symbolic_quad_resolves_to_code(self):
        program = load_unit(parse_unit(self.SOURCE))
        table = program.symtab["table"]
        assert program.memory.read(table, 8) == program.symtab["main"]
        assert program.memory.read(table + 8, 8) == 0x1234

    def test_code_image_in_memory(self):
        program = load_unit(parse_unit(self.SOURCE))
        main = program.symtab["main"]
        # movq counter(%rip), %rax = 48 8b 05 <rel32>.
        assert program.memory.read_bytes(main, 3) == b"\x48\x8b\x05"

    def test_code_index(self):
        program = load_unit(parse_unit(self.SOURCE))
        entry = program.code_index[program.symtab["main"]]
        assert entry.insn.base == "mov"

    def test_entry_point(self):
        program = load_unit(parse_unit(self.SOURCE))
        assert program.entry_point == program.symtab["main"]

    def test_next_instruction_address(self):
        program = load_unit(parse_unit(self.SOURCE))
        main = program.symtab["main"]
        assert program.next_instruction_address(main) == main + 7
