"""Tests for the architectural interpreter."""

import pytest

from repro.ir import parse_unit
from repro.sim import SimError, run_unit
from repro.sim.loader import load_unit


def run(body, args=None, data="", max_steps=100_000, collect_trace=False):
    source = ".text\n.globl main\nmain:\n%s\n    ret\n%s" % (body, data)
    return run_unit(parse_unit(source), args=args, max_steps=max_steps,
                    collect_trace=collect_trace)


class TestArithmetic:
    def test_mov_add(self):
        r = run("    movl $5, %eax\n    addl $3, %eax")
        assert r.state.gp["rax"] == 8

    def test_32bit_write_zero_extends(self):
        r = run("    movq $-1, %rax\n    movl $1, %eax")
        assert r.state.gp["rax"] == 1

    def test_16bit_write_merges(self):
        r = run("    movq $-1, %rax\n    movw $0, %ax")
        assert r.state.gp["rax"] == 0xFFFFFFFFFFFF0000

    def test_high8_write(self):
        r = run("    movq $0, %rax\n    movb $0x7f, %ah")
        assert r.state.gp["rax"] == 0x7F00

    def test_sub_borrow_flags(self):
        r = run("    movl $1, %eax\n    subl $2, %eax\n    setb %cl")
        assert r.state.gp["rax"] == 0xFFFFFFFF
        assert r.state.gp["rcx"] & 0xFF == 1

    def test_imul(self):
        r = run("    movl $7, %eax\n    imull $-3, %eax, %ebx")
        assert r.state.read_reg(
            __import__("repro.x86.registers", fromlist=["get_register"])
            .get_register("ebx")) == (-21) & 0xFFFFFFFF

    def test_widening_mul(self):
        r = run("    movq $-1, %rax\n    movq $2, %rcx\n    mulq %rcx")
        assert r.state.gp["rax"] == 0xFFFFFFFFFFFFFFFE
        assert r.state.gp["rdx"] == 1

    def test_idiv(self):
        r = run("""
    movl $-7, %eax
    cltd
    movl $2, %ecx
    idivl %ecx
""")
        assert r.state.gp["rax"] & 0xFFFFFFFF == (-3) & 0xFFFFFFFF
        assert r.state.gp["rdx"] & 0xFFFFFFFF == (-1) & 0xFFFFFFFF

    def test_division_by_zero_raises(self):
        with pytest.raises(SimError):
            run("    xorl %ecx, %ecx\n    movl $1, %eax\n    divl %ecx")

    def test_shifts(self):
        r = run("    movl $1, %eax\n    shll $4, %eax")
        assert r.state.gp["rax"] == 16
        r = run("    movl $-16, %eax\n    sarl $2, %eax")
        assert r.state.gp["rax"] & 0xFFFFFFFF == (-4) & 0xFFFFFFFF

    def test_shift_implicit_one(self):
        r = run("    movl $8, %ecx\n    sarl %ecx")
        assert r.state.gp["rcx"] == 4

    def test_lea(self):
        r = run("""
    movq $100, %rax
    movq $3, %rbx
    leaq 7(%rax,%rbx,4), %rcx
""")
        assert r.state.gp["rcx"] == 119

    def test_neg_not(self):
        r = run("    movl $5, %eax\n    negl %eax\n    notl %eax")
        assert r.state.gp["rax"] == 4

    def test_inc_preserves_cf(self):
        r = run("""
    movl $-1, %eax
    addl $1, %eax        # sets CF
    incl %eax            # must preserve CF
    setc %bl
""")
        assert r.state.gp["rbx"] & 0xFF == 1

    def test_movsx_movzx(self):
        r = run("    movl $0xFF, %ecx\n    movsbl %cl, %eax\n"
                "    movzbl %cl, %ebx")
        assert r.state.gp["rax"] == 0xFFFFFFFF
        assert r.state.gp["rbx"] == 0xFF

    def test_cmov(self):
        r = run("""
    movl $1, %eax
    movl $5, %ebx
    movl $9, %ecx
    testl %eax, %eax
    cmovel %ebx, %ecx     # not taken
    cmovnel %ebx, %edx    # taken
""")
        assert r.state.gp["rcx"] == 9
        assert r.state.gp["rdx"] == 5

    def test_bswap(self):
        r = run("    movl $0x11223344, %eax\n    bswapl %eax")
        assert r.state.gp["rax"] == 0x44332211

    def test_xchg(self):
        r = run("    movl $1, %eax\n    movl $2, %ebx\n"
                "    xchgl %eax, %ebx")
        assert (r.state.gp["rax"], r.state.gp["rbx"]) == (2, 1)


class TestControlFlow:
    def test_loop(self):
        r = run("""
    xorl %eax, %eax
    movl $10, %ecx
.Ltop:
    addl $2, %eax
    subl $1, %ecx
    jne .Ltop
""")
        assert r.state.gp["rax"] == 20

    def test_call_ret(self):
        source = """
.text
.globl main
main:
    call helper
    addl $1, %eax
    ret
.type helper, @function
helper:
    movl $41, %eax
    ret
"""
        r = run_unit(parse_unit(source))
        assert r.state.gp["rax"] == 42
        assert r.reason == "ret"

    def test_push_pop(self):
        r = run("    movq $123, %rax\n    push %rax\n    pop %rbx")
        assert r.state.gp["rbx"] == 123

    def test_leave_frame(self):
        r = run("""
    push %rbp
    mov %rsp, %rbp
    subq $32, %rsp
    movq $9, -8(%rbp)
    movq -8(%rbp), %rdx
    leave
""")
        assert r.state.gp["rdx"] == 9

    def test_hlt_stops(self):
        r = run("    movl $1, %eax\n    hlt\n    movl $2, %eax")
        assert r.reason == "hlt"
        assert r.state.gp["rax"] == 1

    def test_max_steps(self):
        r = run(".Lspin:\n    jmp .Lspin", max_steps=100)
        assert r.reason == "max-steps"
        assert r.steps == 100

    def test_args_seed_registers(self):
        r = run("    movq %rdi, %rax\n    addq %rsi, %rax",
                args=[40, 2])
        assert r.state.gp["rax"] == 42

    def test_bad_jump_raises(self):
        with pytest.raises(SimError):
            run("    movq $0x1234, %rax\n    jmp *%rax")


class TestMemory:
    def test_data_section(self):
        r = run("    movq value(%rip), %rax",
                data=".section .data\nvalue:\n    .quad 77\n")
        assert r.state.gp["rax"] == 77

    def test_store_load(self):
        r = run("""
    leaq buf(%rip), %rdi
    movl $0xabcd, (%rdi)
    movl (%rdi), %ebx
""", data=".section .bss\nbuf:\n    .zero 64\n")
        assert r.state.gp["rbx"] == 0xABCD

    def test_byte_granularity(self):
        r = run("""
    leaq buf(%rip), %rdi
    movl $0x11223344, (%rdi)
    movb 2(%rdi), %al
""", data=".section .bss\nbuf:\n    .zero 8\n")
        assert r.state.gp["rax"] & 0xFF == 0x22

    def test_string_data(self):
        r = run("    movzbl msg+1(%rip), %eax",
                data='.section .rodata\nmsg:\n    .asciz "Hi"\n')
        assert r.state.gp["rax"] == ord("i")

    def test_jump_table_dispatch(self):
        source = """
.text
.globl main
main:
    movl $1, %eax
    jmp *.Ltab(,%rax,8)
.Lc0:
    movl $100, %ebx
    ret
.Lc1:
    movl $200, %ebx
    ret
.section .rodata
.Ltab:
    .quad .Lc0
    .quad .Lc1
"""
        r = run_unit(parse_unit(source))
        assert r.state.gp["rbx"] == 200


class TestSse:
    def test_double_arithmetic(self):
        r = run("""
    movsd .Lx(%rip), %xmm0
    movsd .Ly(%rip), %xmm1
    addsd %xmm1, %xmm0
    mulsd %xmm1, %xmm0
    cvttsd2si %xmm0, %eax
""", data="""
.section .rodata
.Lx:
    .quad 0x4008000000000000    # 3.0
.Ly:
    .quad 0x4000000000000000    # 2.0
""")
        assert r.state.gp["rax"] == 10    # (3+2)*2

    def test_float_single(self):
        r = run("""
    movl $7, %eax
    cvtsi2ss %eax, %xmm2
    addss %xmm2, %xmm2
    cvttss2si %xmm2, %ebx
""")
        assert r.state.gp["rbx"] == 14

    def test_xorps_zero_idiom(self):
        r = run("    xorps %xmm0, %xmm0\n    cvttsd2si %xmm0, %eax")
        assert r.state.gp["rax"] == 0

    def test_ucomisd_sets_flags(self):
        r = run("""
    movsd .Lx(%rip), %xmm0
    xorps %xmm1, %xmm1
    ucomisd %xmm1, %xmm0     # 3.0 vs 0.0 -> above
    seta %cl
""", data=".section .rodata\n.Lx:\n    .quad 0x4008000000000000\n")
        assert r.state.gp["rcx"] & 0xFF == 1

    def test_movq_gp_xmm_roundtrip(self):
        r = run("    movq $0x1234, %rax\n    movq %rax, %xmm3\n"
                "    movq %xmm3, %rbx")
        assert r.state.gp["rbx"] == 0x1234


class TestTracing:
    def test_trace_collected(self):
        r = run("    movl $1, %eax\n    nop", collect_trace=True)
        bases = [rec.insn.base for rec in r.trace]
        assert bases == ["mov", "nop", "ret"]

    def test_branch_taken_flags(self):
        r = run("""
    movl $2, %ecx
.Ltop:
    subl $1, %ecx
    jne .Ltop
""", collect_trace=True)
        branch_records = [rec for rec in r.trace if rec.insn.base == "j"]
        assert [rec.taken for rec in branch_records] == [True, False]

    def test_sampling(self):
        source = ".text\n.globl main\nmain:\n" \
            + "    addl $1, %eax\n" * 20 + "    ret\n"
        r = run_unit(parse_unit(source), sample_period=5)
        assert len(r.samples) == 4
        address, snapshot = r.samples[0]
        assert "rax" in snapshot and "rip" in snapshot
