"""Differential tests for the trace-compiled basic-block engine.

The block cache may only change *speed*: every run must produce the same
steps, reason, architectural state, memory image, and (when traced) the
same ExecRecord stream as the per-instruction reference loop.  The cache
is sound because the code image is immutable after load, so these tests
pin that contract on the paper's kernels plus the awkward shapes —
padding gaps, faults mid-block, max-steps cut-offs, rdtsc blocks.
"""

import pytest

from repro.ir import parse_unit
from repro.sim import interp
from repro.sim.interp import (
    ExecRecord,
    Interpreter,
    SimError,
    block_cache_disabled,
    block_cache_stats,
    reset_block_cache_stats,
    run_unit,
)
from repro.sim.loader import load_unit
from repro.workloads import kernels


def _fingerprint(result):
    return (result.steps, result.reason,
            tuple(sorted(result.state.gp.items())),
            tuple(sorted(result.state.flags.snapshot().items())),
            result.state.rip,
            result.memory.snapshot_hash() if result.memory else None)


def _trace_sig(result):
    return [(r.address, r.taken, r.ea) for r in result.trace]


def run_both(source, collect_trace=True, max_steps=100_000, args=None):
    """One reference (cache-disabled) run and one block-cached run."""
    with block_cache_disabled():
        ref = run_unit(parse_unit(source), collect_trace=collect_trace,
                       max_steps=max_steps, args=args)
    fast = run_unit(parse_unit(source), collect_trace=collect_trace,
                    max_steps=max_steps, args=args)
    return ref, fast


class TestDifferential:
    @pytest.mark.parametrize("name,source", [
        ("fig1", kernels.mcf_fig1(insert_nop=True, outer=4)),
        ("fig4", kernels.fig4_loop(iterations=40)),
        ("hash", kernels.hash_bench(trip=60)),
        ("nested", kernels.nested_short_loops(outer=12)),
        ("eon", kernels.eon_loop(outer=6)),
    ])
    def test_kernels_identical(self, name, source):
        ref, fast = run_both(source)
        assert _fingerprint(ref) == _fingerprint(fast)
        assert _trace_sig(ref) == _trace_sig(fast)

    def test_max_steps_cut_mid_block_identical(self):
        source = kernels.fig4_loop(iterations=500)
        for max_steps in (1, 7, 100, 1001):
            ref, fast = run_both(source, max_steps=max_steps)
            assert _fingerprint(ref) == _fingerprint(fast)
            assert ref.reason == "max-steps"

    def test_handler_fault_mid_block_preserves_partial_state(self):
        # The instructions before the faulting divide must have executed.
        source = (".text\n.globl main\nmain:\n"
                  "    movl $7, %r8d\n"
                  "    movl $9, %r9d\n"
                  "    xorq %rcx, %rcx\n"
                  "    movq $1, %rax\n"
                  "    divq %rcx\n"
                  "    ret\n")
        states = []
        for disabled in (True, False):
            interp_ctx = block_cache_disabled() if disabled else _null_ctx()
            program = load_unit(parse_unit(source), "main")
            machine = Interpreter(program)
            with interp_ctx:
                with pytest.raises(SimError, match="division"):
                    machine.run()
            states.append((machine.state.gp["r8"],
                           machine.state.gp["r9"]))
        assert states[0] == states[1] == (7, 9)

    def test_no_semantics_fault_matches_reference(self, monkeypatch):
        # A decodable instruction without semantics faults after the
        # earlier block steps committed, same as the reference loop.
        monkeypatch.delitem(interp._DISPATCH, "bswap")
        source = (".text\n.globl main\nmain:\n"
                  "    movl $5, %r10d\n"
                  "    bswap %rax\n"
                  "    ret\n")
        states = []
        for disabled in (True, False):
            interp_ctx = block_cache_disabled() if disabled else _null_ctx()
            program = load_unit(parse_unit(source), "main")
            machine = Interpreter(program)
            with interp_ctx:
                with pytest.raises(SimError, match="no semantics"):
                    machine.run()
            states.append(machine.state.gp["r10"])
        assert states[0] == states[1] == 5

    def test_fall_off_code_matches_reference(self):
        # A block that runs past the last encoded instruction must fault
        # exactly like the reference loop (after the same step count).
        source = (".text\n.globl main\nmain:\n"
                  "    movl $1, %eax\n"
                  "    jmp done\n"
                  "done:\n"
                  "    nop\n")  # no ret: execution falls off after nop
        for ctx in (block_cache_disabled(), _null_ctx()):
            program = load_unit(parse_unit(source), "main")
            machine = Interpreter(program)
            with ctx:
                with pytest.raises(SimError, match="fell off"):
                    machine.run()

    def test_rdtsc_block_identical(self):
        source = (".text\n.globl main\nmain:\n"
                  "    movq $3, %rcx\n"
                  ".Lloop:\n"
                  "    rdtsc\n"
                  "    addq %rax, %rbx\n"
                  "    subq $1, %rcx\n"
                  "    jne .Lloop\n"
                  "    ret\n")
        ref, fast = run_both(source)
        assert _fingerprint(ref) == _fingerprint(fast)

    def test_sampled_run_identical(self):
        source = kernels.hash_bench(trip=50)
        with block_cache_disabled():
            ref = run_unit(parse_unit(source), sample_period=16)
        fast = run_unit(parse_unit(source), sample_period=16)
        assert ref.samples == fast.samples


class TestCacheBehaviour:
    def test_blocks_compiled_once_and_hit(self):
        reset_block_cache_stats()
        source = kernels.fig4_loop(iterations=50)
        run_unit(parse_unit(source))
        stats = block_cache_stats()
        assert stats["blocks_compiled"] >= 1
        assert stats["block_hits"] > stats["blocks_compiled"]
        assert 0.0 < stats["hit_rate"] <= 1.0

    def test_cache_lives_on_the_program(self):
        # Two interpreters over one LoadedProgram share compiled blocks.
        program = load_unit(parse_unit(kernels.fig4_loop(iterations=20)),
                            "main")
        Interpreter(program, private_memory=True).run()
        assert program.block_cache
        reset_block_cache_stats()
        Interpreter(program, private_memory=True).run()
        assert block_cache_stats()["blocks_compiled"] == 0
        assert block_cache_stats()["block_hits"] > 0

    def test_disabled_context_restores(self):
        assert interp._BLOCK_CACHE_ENABLED
        with block_cache_disabled():
            assert not interp._BLOCK_CACHE_ENABLED
            assert not block_cache_stats()["enabled"]
        assert interp._BLOCK_CACHE_ENABLED


class TestNoRecordsUntraced:
    def test_untraced_run_allocates_no_exec_records(self, monkeypatch):
        # Static facts (ea mode, memory operand) live on the compiled
        # block; an untraced run must not materialize a single record.
        created = []

        class CountingRecord(ExecRecord):
            def __init__(self, *args, **kwargs):
                created.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(interp, "ExecRecord", CountingRecord)
        source = kernels.hash_bench(trip=40)
        result = run_unit(parse_unit(source))
        assert result.reason == "ret"
        assert result.trace is None
        assert not created

    def test_traced_run_does_allocate(self, monkeypatch):
        created = []

        class CountingRecord(ExecRecord):
            def __init__(self, *args, **kwargs):
                created.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(interp, "ExecRecord", CountingRecord)
        result = run_unit(parse_unit(kernels.hash_bench(trip=5)),
                          collect_trace=True)
        assert len(created) == len(result.trace) == result.steps


def _null_ctx():
    from contextlib import nullcontext
    return nullcontext()
