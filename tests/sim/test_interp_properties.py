"""Property-based interpreter checks against a Python oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_unit
from repro.sim import run_unit

MASK32 = 0xFFFFFFFF
MASK64 = (1 << 64) - 1


@st.composite
def arithmetic_trace(draw):
    """A random straight-line computation plus its Python oracle."""
    ops = []
    n = draw(st.integers(3, 15))
    for _ in range(n):
        ops.append((draw(st.sampled_from(
            ["add", "sub", "and", "or", "xor", "imul", "shl", "shr"])),
            draw(st.integers(0, 100))))
    start = draw(st.integers(0, 2 ** 31 - 1))
    return start, ops


def oracle(start, ops):
    value = start & MASK32
    for name, operand in ops:
        if name == "add":
            value = (value + operand) & MASK32
        elif name == "sub":
            value = (value - operand) & MASK32
        elif name == "and":
            value &= operand
        elif name == "or":
            value |= operand
        elif name == "xor":
            value ^= operand
        elif name == "imul":
            value = (value * operand) & MASK32
        elif name == "shl":
            value = (value << (operand & 31)) & MASK32
        elif name == "shr":
            value = value >> (operand & 31)
    return value


def program(start, ops):
    lines = [".text", ".globl main", "main:",
             "    movl $%d, %%eax" % (start - (1 << 32)
                                      if start >= 1 << 31 else start)]
    for name, operand in ops:
        if name == "imul":
            lines.append("    imull $%d, %%eax, %%eax" % operand)
        elif name in ("shl", "shr"):
            lines.append("    %sl $%d, %%eax" % (name, operand & 31))
        else:
            lines.append("    %sl $%d, %%eax" % (name, operand))
    lines.append("    ret")
    return "\n".join(lines) + "\n"


@given(arithmetic_trace())
@settings(max_examples=120, deadline=None)
def test_arithmetic_matches_oracle(case):
    start, ops = case
    result = run_unit(parse_unit(program(start, ops)))
    assert result.state.gp["rax"] == oracle(start, ops)


@st.composite
def flag_branch_case(draw):
    a = draw(st.integers(-1000, 1000))
    b = draw(st.integers(-1000, 1000))
    cond = draw(st.sampled_from(["e", "ne", "l", "le", "g", "ge",
                                 "b", "be", "a", "ae", "s", "ns"]))
    return a, b, cond


def condition_oracle(a, b, cond):
    ua, ub = a & MASK32, b & MASK32
    table = {
        "e": a == b, "ne": a != b,
        "l": a < b, "le": a <= b, "g": a > b, "ge": a >= b,
        "b": ua < ub, "be": ua <= ub, "a": ua > ub, "ae": ua >= ub,
        "s": (a - b) % (1 << 32) >> 31 == 1, "ns": (a - b) % (1 << 32)
        >> 31 == 0,
    }
    return table[cond]


@given(flag_branch_case())
@settings(max_examples=120, deadline=None)
def test_conditional_branches_match_oracle(case):
    a, b, cond = case
    source = f"""
.text
.globl main
main:
    movl ${a}, %eax
    movl ${b}, %ecx
    cmpl %ecx, %eax
    j{cond} .Ltaken
    movl $0, %ebx
    ret
.Ltaken:
    movl $1, %ebx
    ret
"""
    result = run_unit(parse_unit(source))
    expected = 1 if condition_oracle(a, b, cond) else 0
    assert result.state.gp["rbx"] == expected, (a, b, cond)


@given(st.integers(-10 ** 9, 10 ** 9), st.integers(1, 10 ** 6))
@settings(max_examples=80, deadline=None)
def test_division_matches_oracle(dividend, divisor):
    source = f"""
.text
.globl main
main:
    movl ${dividend}, %eax
    cltd
    movl ${divisor}, %ecx
    idivl %ecx
    ret
"""
    result = run_unit(parse_unit(source))
    quotient = int(dividend / divisor)      # x86 truncates toward zero
    remainder = dividend - quotient * divisor
    assert result.state.gp["rax"] & MASK32 == quotient & MASK32
    assert result.state.gp["rdx"] & MASK32 == remainder & MASK32
