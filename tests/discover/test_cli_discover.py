"""CLI surface tests: ``mao discover``, ``mao profiles``, profile errors.

A malformed or wrong-version ``--core file.json`` must always die with
a clean one-line ``mao ...: <reason>`` on stderr and exit code 1 —
never a traceback (ISSUE 10 satellite: the error path is part of the
user interface).
"""

import json

import pytest

from repro.cli import main
from repro.uarch import tables
from repro.uarch.profiles import core2

SOURCE = """
.text
.globl f
.type f, @function
f:
.L0:
    addq $1, %rax
    subq $1, %rdi
    jne .L0
    ret
"""


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "in.s"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def corrupt_profiles(tmp_path):
    """A zoo of broken profile files, each with its failure reason."""
    wrong_version = tmp_path / "wrong_version.json"
    wrong_version.write_text('{"schema": "pymao.uarch/99", "name": "x"}\n')
    not_json = tmp_path / "not_json.json"
    not_json.write_text("decode_line_bytes = 16\n")
    missing = tmp_path / "missing_sections.json"
    missing.write_text('{"schema": "pymao.uarch/1", "name": "x"}\n')
    return [str(wrong_version), str(not_json), str(missing)]


class TestProfilesVerb:
    def test_list_names_every_registry_profile(self, capsys):
        assert main(["profiles", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("core2", "opteron", "pentium4", "skylake", "zen"):
            assert name in out

    def test_show_round_trips(self, capsys):
        assert main(["profiles", "show", "core2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert tables.doc_to_model(doc) == core2()

    def test_show_unknown_is_clean_error(self, capsys):
        assert main(["profiles", "show", "i486"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("mao profiles:")
        assert "Traceback" not in err


class TestCorruptProfileErrors:
    def test_predict_core_file(self, asm_file, corrupt_profiles, capsys):
        for bad in corrupt_profiles:
            assert main(["predict", asm_file, "--core", bad]) == 1
            err = capsys.readouterr().err
            assert err.startswith("mao predict:"), (bad, err)
            assert "Traceback" not in err

    def test_driver_sim_core_file(self, asm_file, corrupt_profiles, capsys):
        for bad in corrupt_profiles:
            assert main(["--sim", bad, asm_file]) == 1
            err = capsys.readouterr().err
            assert err.startswith("mao:"), (bad, err)
            assert "Traceback" not in err

    def test_driver_predict_core_file(self, asm_file, corrupt_profiles,
                                      capsys):
        for bad in corrupt_profiles:
            assert main(["--predict", bad, asm_file]) == 1
            err = capsys.readouterr().err
            assert err.startswith("mao:"), (bad, err)
            assert "Traceback" not in err

    def test_discover_needs_exactly_one_target(self, capsys):
        assert main(["discover"]) == 2
        assert "exactly one of --seed or --core" in capsys.readouterr().err
        assert main(["discover", "--seed", "3", "--core", "core2"]) == 2
        assert "exactly one of --seed or --core" in capsys.readouterr().err


class TestGoodProfilePaths:
    def test_predict_accepts_profile_file(self, asm_file, tmp_path, capsys):
        path = str(tmp_path / "core2.json")
        tables.save_profile(core2(), path)
        assert main(["predict", asm_file, "--core", path, "--json"]) == 0
        by_path = json.loads(capsys.readouterr().out)
        assert main(["predict", asm_file, "--core", "core2", "--json"]) == 0
        by_name = json.loads(capsys.readouterr().out)
        assert by_path["cycles"] == by_name["cycles"]

    def test_version_lists_uarch_schemas(self, capsys):
        main(["--version"])
        out = capsys.readouterr().out
        assert "pymao.uarch/1" in out
        assert "mao-bench-discover/1" in out
        assert "pymao.discover/1" in out
