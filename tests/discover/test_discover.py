"""Tests for the parameter-discovery harness (``repro.discover``).

The contract under test: ``discover(seed=S)`` is a pure function of the
seed — byte-identical output at any ``--jobs`` count and on either pool
backend — and it recovers **every drawn parameter** of the hidden
``blinded_profile(S)`` exactly, with the assembled model cycle-exact
against the oracle on the cross-check battery.
"""

import json

import pytest

from repro import api
from repro.discover import DiscoverResult, discover
from repro.uarch import tables
from repro.uarch.profiles import blinded_profile, core2

SEED = 5


@pytest.fixture(scope="module")
def result():
    """One sequential discovery, shared by the exactness checks."""
    return discover(seed=SEED)


def canonical(res):
    return json.dumps(res.to_dict(), sort_keys=True)


class TestExactRecovery:
    def test_every_drawn_parameter_exact(self, result):
        hidden = blinded_profile(SEED)
        for path in tables.drawn_paths(tables.load_ranges()):
            assert result.params[path] == tables.param_value(hidden, path), \
                path

    def test_crosscheck_cycle_exact(self, result):
        assert result.crosscheck["matched"] == result.crosscheck["total"]
        assert result.crosscheck["total"] >= 8

    def test_inferred_assumed_partition(self, result):
        inferred, assumed = set(result.inferred), set(result.assumed)
        assert not (inferred & assumed)
        assert inferred | assumed == set(result.params)

    def test_model_matches_hidden_on_drawn_paths(self, result):
        model = result.model()
        hidden = blinded_profile(SEED)
        for path in tables.drawn_paths(tables.load_ranges()):
            assert tables.param_value(model, path) \
                == tables.param_value(hidden, path)


class TestDeterminism:
    def test_pure_in_seed(self, result):
        assert canonical(discover(seed=SEED)) == canonical(result)

    def test_jobs_invariant_threads(self, result):
        assert canonical(discover(seed=SEED, jobs=4)) == canonical(result)

    def test_jobs_invariant_processes(self, result):
        assert canonical(discover(seed=SEED, jobs=4,
                                  parallel_backend="process")) \
            == canonical(result)


class TestResultSurface:
    def test_profile_doc_valid(self, result):
        doc = result.profile_doc()
        tables.validate_doc(doc)
        meta = doc["meta"]["discovery"]
        assert meta["seed"] == SEED
        assert sorted(meta["inferred"]) == sorted(result.inferred)

    def test_round_trip(self, result):
        again = DiscoverResult.from_dict(result.to_dict())
        assert canonical(again) == canonical(result)

    def test_explain_mentions_partition(self, result):
        text = result.explain()
        assert "inferred" in text and "assumed" in text

    def test_api_discover_arg_validation(self):
        with pytest.raises(ValueError):
            api.discover()
        with pytest.raises(ValueError):
            api.discover("core2", seed=3)

    def test_discover_known_core(self):
        """Discovery against a registry core infers its line size."""
        res = api.discover("core2")
        assert res.params["frontend.decode_line_bytes"] \
            == core2().decode_line_bytes
        assert res.params["frontend.decode_width"] == core2().decode_width
