"""Unit tests for the forward/backward address simulation (§III.E.m)."""

import pytest

from repro.ir import parse_unit
from repro.passes.address_sim import (
    _backward_update,
    _forward_update,
    _memory_ea,
    recover_addresses,
)
from repro.x86.parser import parse_instruction, parse_operand


def insn(text):
    return parse_instruction(text).insn


class TestKnownValueTracking:
    def test_forward_mov_imm(self):
        known = {}
        _forward_update(known, insn("movq $100, %rax"))
        assert known["rax"] == 100

    def test_forward_add_imm(self):
        known = {"rax": 10}
        _forward_update(known, insn("addq $5, %rax"))
        assert known["rax"] == 15

    def test_forward_reg_copy(self):
        known = {"rax": 7}
        _forward_update(known, insn("movq %rax, %rbx"))
        assert known["rbx"] == 7

    def test_forward_lea(self):
        known = {"rax": 100, "rbx": 3}
        _forward_update(known, insn("leaq 8(%rax,%rbx,4), %rcx"))
        assert known["rcx"] == 120

    def test_forward_unknown_op_kills(self):
        known = {"rax": 7}
        _forward_update(known, insn("imulq %rbx, %rax"))
        assert "rax" not in known

    def test_forward_load_kills_dest(self):
        known = {"rax": 7, "rbx": 100}
        _forward_update(known, insn("movq (%rbx), %rax"))
        assert "rax" not in known
        assert known["rbx"] == 100

    def test_backward_inverts_add(self):
        known = {"rax": 15}
        _backward_update(known, insn("addq $5, %rax"))
        assert known["rax"] == 10

    def test_backward_inverts_dec(self):
        known = {"rcx": 9}
        _backward_update(known, insn("decq %rcx"))
        assert known["rcx"] == 10

    def test_backward_mov_imm_not_invertible(self):
        known = {"rax": 100}
        _backward_update(known, insn("movq $100, %rax"))
        assert "rax" not in known


class TestMemoryEa:
    def test_full_form(self):
        mem = parse_operand("8(%rax,%rbx,4)")
        assert _memory_ea(mem, {"rax": 100, "rbx": 2}, {}) == 116

    def test_missing_register_returns_none(self):
        mem = parse_operand("(%rax)")
        assert _memory_ea(mem, {}, {}) is None

    def test_symbolic(self):
        mem = parse_operand("buf(%rip)")
        assert _memory_ea(mem, {}, {"buf": 0x600000}) == 0x600000


class TestPaperExample:
    """The exact IP1/IP2/IP3 walk from §III.E.m."""

    SOURCE = """
.text
.globl main
main:
    movl -8(%rbp), %edx
    movl %edx, (%rax)
    addl $1, -4(%rbp)
    ret
"""

    def entries(self):
        unit = parse_unit(self.SOURCE)
        return [e for e in unit.entries() if e.is_instruction]

    def test_sample_on_ip1_recovers_ip2_forward(self):
        ip1, ip2, ip3, _ = self.entries()
        snapshot = {"rbp": 0x7000, "rax": 0x600000}
        recovered = recover_addresses(ip1, snapshot)
        by_entry = {id(r.entry): r for r in recovered}
        # IP1's own address (sample) and IP2's store address (forward:
        # %rax not killed by IP1).
        assert by_entry[id(ip1)].address == 0x7000 - 8
        assert by_entry[id(ip2)].address == 0x600000
        assert by_entry[id(ip2)].direction == "forward"

    def test_sample_on_ip3_recovers_ip2_backward(self):
        ip1, ip2, ip3, _ = self.entries()
        snapshot = {"rbp": 0x7000, "rax": 0x600000}
        recovered = recover_addresses(ip3, snapshot)
        by_entry = {id(r.entry): r for r in recovered}
        assert by_entry[id(ip3)].address == 0x7000 - 4
        assert by_entry[id(ip2)].direction == "backward"
        assert by_entry[id(ip2)].address == 0x600000
        # IP1's address is also derivable (rbp untouched in between).
        assert by_entry[id(ip1)].address == 0x7000 - 8

    def test_killed_register_stops_forward(self):
        source = """
.text
.globl main
main:
    movl -8(%rbp), %edx
    movq (%rdx), %rax
    movl %ecx, (%rax)
    ret
"""
        unit = parse_unit(source)
        entries = [e for e in unit.entries() if e.is_instruction]
        snapshot = {"rbp": 0x7000, "rdx": 0x600000, "rax": 0x500000}
        recovered = recover_addresses(entries[0], snapshot)
        directions = {id(r.entry): r.direction for r in recovered}
        # The store through %rax is NOT recoverable forward: the load at
        # entry 1 killed %rax.
        assert id(entries[2]) not in directions
