"""Tests for the pass registry, option parsing, and pipelines."""

import pytest

import repro.passes  # noqa: F401 — registers passes
from repro.ir import parse_unit
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import (
    PassPipeline,
    canonical_pass_spec,
    encode_pass_spec,
    get_pass,
    parse_pass_spec,
    register_func_pass,
    registered_passes,
    run_passes,
    spec_has_side_effects,
)


class TestSpecParsing:
    def test_single_pass(self):
        assert parse_pass_spec("REDTEST") == [("REDTEST", {})]

    def test_paper_example(self):
        """--mao=LFIND=trace[0]:ASM=o[/dev/null] from §III.A."""
        spec = parse_pass_spec("LFIND=trace[0]:ASM=o[/dev/null]")
        assert spec == [("LFIND", {"trace": "0"}),
                        ("ASM", {"o": "/dev/null"})]

    def test_multiple_options(self):
        spec = parse_pass_spec("NOPIN=seed[3]+density[0.1]")
        assert spec == [("NOPIN", {"seed": "3", "density": "0.1"})]

    def test_order_preserved(self):
        spec = parse_pass_spec("A:B:C")
        assert [name for name, _ in spec] == ["A", "B", "C"]

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            parse_pass_spec("FOO=what")

    def test_trailing_junk_rejected(self):
        # This used to parse silently, dropping "garbage" on the floor.
        with pytest.raises(ValueError):
            parse_pass_spec("LFIND=trace[3]garbage")

    def test_junk_between_options_rejected(self):
        with pytest.raises(ValueError):
            parse_pass_spec("NOPIN=seed[3]junk+density[0.1]")

    def test_trailing_plus_rejected(self):
        with pytest.raises(ValueError):
            parse_pass_spec("NOPIN=seed[3]+")

    def test_empty_spec(self):
        assert parse_pass_spec("") == []
        assert parse_pass_spec("  ") == []

    def test_empty_option_block(self):
        assert parse_pass_spec("REDTEST=") == [("REDTEST", {})]

    def test_plus_inside_bracket_value(self):
        spec = parse_pass_spec("ASM=o[a+b.s]")
        assert spec == [("ASM", {"o": "a+b.s"})]

    def test_empty_segments_skipped(self):
        # Like PATH, `::` is tolerated — but `=opts` with no name is not.
        assert parse_pass_spec("REDTEST::REDZEE") == [
            ("REDTEST", {}), ("REDZEE", {})]

    def test_missing_pass_name_rejected(self):
        with pytest.raises(ValueError):
            parse_pass_spec("=trace[3]")

    def test_unknown_pass_error_names_known_passes(self):
        unit = parse_unit(".text\nf:\n    ret\n")
        with pytest.raises(KeyError) as err:
            run_passes(unit, "NOSUCHPASS")
        assert "known:" in str(err.value)


class TestSpecEncoding:
    def test_injective_where_canonical_collides(self):
        """The --mao= rendering maps both of these to 'P=x[1]+y[2]'; the
        cache-key encoding must keep them distinct."""
        a = [("P", {"x": "1]+y[2"})]
        b = [("P", {"x": "1", "y": "2"})]
        assert canonical_pass_spec(a) == canonical_pass_spec(b)
        assert encode_pass_spec(a) != encode_pass_spec(b)

    def test_spelling_and_value_types_normalized(self):
        assert encode_pass_spec(parse_pass_spec("LOOP16=limit[8]")) \
            == encode_pass_spec([("LOOP16", {"limit": 8})])

    def test_pass_order_is_semantic(self):
        assert encode_pass_spec([("A", {}), ("B", {})]) \
            != encode_pass_spec([("B", {}), ("A", {})])

    def test_option_order_is_not(self):
        first = encode_pass_spec([("NOPIN", {"seed": "3",
                                             "density": "0.1"})])
        second = encode_pass_spec([("NOPIN", {"density": "0.1",
                                              "seed": "3"})])
        assert first == second


class TestSideEffectQuery:
    def test_asm_is_side_effecting(self):
        assert spec_has_side_effects(parse_pass_spec("REDTEST:ASM=o[x]"))

    def test_analysis_specs_are_not(self):
        assert not spec_has_side_effects(
            parse_pass_spec("REDZEE:REDTEST:LFIND"))

    def test_unknown_pass_counts_as_effect_free(self):
        assert not spec_has_side_effects([("NOSUCHPASS", {})])


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = registered_passes()
        for expected in ("REDZEE", "REDTEST", "REDMOV", "ADDADD",
                         "LOOP16", "LSDFIT", "BRALIGN", "NOPIN",
                         "NOPKILL", "PREFNTA", "INSTRUMENT", "ADDRSIM",
                         "SCHED", "UNREACH", "CONSTFOLD", "ASM", "LFIND"):
            assert expected in names

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError):
            get_pass("NOSUCHPASS")

    def test_register_custom_pass(self):
        """Writing a pass follows the paper's Fig. 3 template."""
        ran = []

        @register_func_pass("TESTPASS_FIG3")
        class Fig3Pass(MaoFunctionPass):
            def Go(self):
                self.Trace(3, "Func: %s", self.function.name)
                ran.append(self.function.name)
                return True

        unit = parse_unit(
            ".text\n.type f,@function\nf:\n    ret\n"
            ".type g,@function\ng:\n    ret\n")
        run_passes(unit, "TESTPASS_FIG3")
        assert ran == ["f", "g"]


class TestOptions:
    def test_defaults_applied(self):
        cls = get_pass("NOPIN")
        unit = parse_unit(".text\nf:\n    ret\n")
        pass_obj = cls({}, unit, unit.functions[0])
        assert pass_obj.option("density") == 0.05
        assert pass_obj.option("seed") == 0

    def test_type_coercion(self):
        cls = get_pass("NOPIN")
        unit = parse_unit(".text\nf:\n    ret\n")
        pass_obj = cls({"seed": "42", "density": "0.5"},
                       unit, unit.functions[0])
        assert pass_obj.option("seed") == 42
        assert pass_obj.option("density") == 0.5

    def test_unknown_option_rejected(self):
        cls = get_pass("NOPIN")
        unit = parse_unit(".text\nf:\n    ret\n")
        with pytest.raises(KeyError):
            cls({"bogus": "1"}, unit, unit.functions[0])

    def test_universal_trace_option(self):
        cls = get_pass("REDTEST")
        unit = parse_unit(".text\nf:\n    ret\n")
        pass_obj = cls({"trace": "3"}, unit, unit.functions[0])
        assert pass_obj.trace_level == 3


class TestPipelines:
    SOURCE = """
.text
.globl main
.type main, @function
main:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""

    def test_order_matters(self):
        unit = parse_unit(self.SOURCE)
        result = run_passes(unit, "REDZEE:REDTEST")
        assert result.total("REDZEE", "removed") == 1
        assert result.total("REDTEST", "removed") == 1

    def test_stats_per_function(self):
        unit = parse_unit(self.SOURCE)
        result = run_passes(unit, "REDZEE")
        assert result.reports[0].scope == "main"

    def test_add_api(self):
        unit = parse_unit(self.SOURCE)
        pipeline = PassPipeline().add("REDZEE").add("REDTEST")
        result = pipeline.run(unit)
        assert len({r.pass_name for r in result.reports}) == 2

    def test_asm_pass_writes_file(self, tmp_path):
        out = tmp_path / "out.s"
        unit = parse_unit(self.SOURCE)
        run_passes(unit, "ASM=o[%s]" % out)
        assert "main:" in out.read_text()

    def test_lfind_reports_loops(self):
        unit = parse_unit("""
.text
main:
.Ltop:
    subl $1, %eax
    jne .Ltop
    ret
""")
        result = run_passes(unit, "LFIND")
        assert result.total("LFIND", "loops") == 1


class TestParallelPipeline:
    """jobs=N must be indistinguishable from serial — same IR, same
    reports, in function order — whatever the backend."""

    MULTI = "\n".join(
        """
.globl f{i}
.type f{i}, @function
f{i}:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
""".format(i=i) for i in range(4))
    MULTI = ".text\n" + MULTI

    SPEC = "REDZEE:REDTEST:ADDADD"

    def _run(self, jobs, backend="thread"):
        unit = parse_unit(self.MULTI)
        result = run_passes(unit, self.SPEC, jobs=jobs,
                            parallel_backend=backend)
        return unit.to_asm(), [(r.pass_name, r.scope, r.stats)
                               for r in result.reports]

    def test_thread_backend_matches_serial(self):
        serial_asm, serial_reports = self._run(jobs=1)
        parallel_asm, parallel_reports = self._run(jobs=4)
        assert parallel_asm == serial_asm
        assert parallel_reports == serial_reports

    def test_process_backend_matches_serial(self):
        serial_asm, serial_reports = self._run(jobs=1)
        parallel_asm, parallel_reports = self._run(jobs=2,
                                                   backend="process")
        assert parallel_asm == serial_asm
        assert parallel_reports == serial_reports

    def test_reports_in_function_order(self):
        _, reports = self._run(jobs=4)
        for name in ("REDZEE", "REDTEST", "ADDADD"):
            scopes = [scope for pass_name, scope, _ in reports
                      if pass_name == name]
            assert scopes == ["f0", "f1", "f2", "f3"]

    def test_invalid_jobs_rejected(self):
        unit = parse_unit(self.MULTI)
        with pytest.raises(ValueError):
            run_passes(unit, self.SPEC, jobs=0)
        with pytest.raises(ValueError):
            run_passes(unit, self.SPEC, parallel_backend="fiber")
