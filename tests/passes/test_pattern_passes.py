"""Tests for the pattern-matching passes (paper §III.B)."""

import pytest

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import run_unit


def apply_passes(source, spec):
    unit = parse_unit(source)
    result = run_passes(unit, spec)
    return unit, result


def assert_same_semantics(source, spec, regs=("rax", "rbx", "rcx", "rdx",
                                              "rsi", "rdi", "r8", "r9")):
    """Run the program before and after the pass; architectural state must
    match (our stronger version of the paper's disassemble-and-compare)."""
    before = run_unit(parse_unit(source))
    unit, result = apply_passes(source, spec)
    after = run_unit(unit)
    for group in regs:
        assert before.state.gp[group] == after.state.gp[group], group
    return unit, result


def wrap(body):
    return ".text\n.globl main\n.type main, @function\nmain:\n%s\n    ret\n" % body


class TestRedZee:
    def test_removes_paper_pattern(self):
        source = wrap("""
    movl $300, %eax
    andl $255, %eax
    mov %eax, %eax
""")
        unit, result = assert_same_semantics(source, "REDZEE")
        assert result.total("REDZEE", "removed") == 1
        assert unit.instruction_count() == 3   # incl. ret

    def test_keeps_truncating_move(self):
        """After a 64-bit def, `mov %eax, %eax` truncates — not redundant."""
        source = wrap("""
    movq $0x1ffffffff, %rax
    mov %eax, %eax
""")
        unit, result = assert_same_semantics(source, "REDZEE")
        assert result.total("REDZEE", "removed") == 0

    def test_keeps_cross_block_candidate(self):
        source = wrap("""
    movq $0x1ffffffff, %rax
    testq %rbx, %rbx
    je .Lskip
    andl $255, %eax
.Lskip:
    mov %eax, %eax
""")
        unit, result = assert_same_semantics(source, "REDZEE")
        assert result.total("REDZEE", "removed") == 0
        assert result.total("REDZEE", "candidates") == 1

    def test_count_only_mode(self):
        source = wrap("    andl $255, %eax\n    mov %eax, %eax")
        unit = parse_unit(source)
        before = unit.instruction_count()
        result = run_passes(unit, "REDZEE=count_only[1]")
        assert result.total("REDZEE", "removed") == 1
        assert unit.instruction_count() == before


class TestRedTest:
    def test_removes_paper_pattern(self):
        source = wrap("""
    movl $100, %r15d
    subl $16, %r15d
    testl %r15d, %r15d
    je .Lzero
    movl $1, %ebx
.Lzero:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        assert result.total("REDTEST", "removed") == 1
        assert result.total("REDTEST", "tests") == 1

    def test_keeps_test_after_mov(self):
        """mov sets no flags, so the test is necessary."""
        source = wrap("""
    movl $5, %ecx
    testl %ecx, %ecx
    je .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        assert result.total("REDTEST", "removed") == 0

    def test_keeps_test_when_cf_consumer_follows_sub(self):
        """After sub, CF differs from test's cleared CF: a CF reader
        (jb) blocks removal — the precise condition-code modelling."""
        source = wrap("""
    movl $100, %edx
    subl $16, %edx
    testl %edx, %edx
    jb .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        assert result.total("REDTEST", "removed") == 0

    def test_removes_test_when_cf_consumer_follows_and(self):
        """and clears CF exactly like test: removal is safe even for jb."""
        source = wrap("""
    movl $100, %edx
    andl $0xf0, %edx
    testl %edx, %edx
    jb .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        assert result.total("REDTEST", "removed") == 1

    def test_keeps_test_when_register_modified_between(self):
        source = wrap("""
    movl $16, %edx
    subl $16, %edx
    movl $7, %edx
    testl %edx, %edx
    je .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        assert result.total("REDTEST", "removed") == 0

    def test_keeps_test_after_intervening_flag_write(self):
        source = wrap("""
    movl $16, %edx
    subl $16, %edx
    addl $1, %ecx
    testl %edx, %edx
    je .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        # addl wrote flags after the sub; test now reflects edx which the
        # addl's flags don't — the producer is the addl, of %ecx.
        assert result.total("REDTEST", "removed") == 0

    def test_width_mismatch_blocks_removal(self):
        source = wrap("""
    movq $0x100000000, %rdx
    subq $0, %rdx
    testl %edx, %edx
    je .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "REDTEST")
        assert result.total("REDTEST", "removed") == 0


class TestRedMov:
    def test_rewrites_paper_pattern(self):
        source = wrap("""
    movq $77, 24(%rsp)
    movq 24(%rsp), %rdx
    movq 24(%rsp), %rcx
""")
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 1
        text = unit.to_asm()
        assert "movq %rdx, %rcx" in text

    def test_intervening_store_blocks(self):
        source = wrap("""
    movq $77, 24(%rsp)
    movq 24(%rsp), %rdx
    movq $88, 24(%rsp)
    movq 24(%rsp), %rcx
""")
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 0

    def test_clobbered_first_register_blocks(self):
        source = wrap("""
    movq $77, 24(%rsp)
    movq 24(%rsp), %rdx
    movq $5, %rdx
    movq 24(%rsp), %rcx
""")
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 0

    def test_address_register_modified_blocks(self):
        source = wrap("""
    leaq 64(%rsp), %rax
    movq $77, 8(%rax)
    movq 8(%rax), %rdx
    addq $8, %rax
    movq 8(%rax), %rcx
""")
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 0

    def test_width_mismatch_blocks(self):
        source = wrap("""
    movq $0x1122334455667788, %rax
    movq %rax, 24(%rsp)
    movq 24(%rsp), %rdx
    movl 24(%rsp), %ecx
""")
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 0

    def test_self_addressed_load_not_reused(self):
        source = wrap("""
    leaq 32(%rsp), %rax
    movq %rax, (%rax)
    movq (%rax), %rax
    movq (%rax), %rcx
""")
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 0

    def test_call_clears_window(self):
        source = """
.text
.globl main
.type main, @function
main:
    movq $77, 24(%rsp)
    movq 24(%rsp), %rdx
    call helper
    movq 24(%rsp), %rcx
    ret
.type helper, @function
helper:
    ret
"""
        unit, result = assert_same_semantics(source, "REDMOV")
        assert result.total("REDMOV", "rewritten") == 0


class TestAddAdd:
    def test_folds_paper_pattern(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    addq $4, %rsi
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 1
        assert "addq $7, %rsi" in unit.to_asm()

    def test_folds_mixed_add_sub(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    subq $8, %rsi
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 1
        assert "subq $5, %rsi" in unit.to_asm()

    def test_intervening_use_blocks(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    movq %rsi, %rdi
    addq $4, %rsi
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 0

    def test_flag_read_between_blocks(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    je .L
    addq $4, %rsi
.L:
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 0

    def test_live_cf_after_second_blocks(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    addq $4, %rsi
    jb .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 0

    def test_zf_consumer_allows_fold(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    addq $4, %rsi
    je .L
    movl $1, %ebx
.L:
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 1

    def test_different_widths_not_folded(self):
        source = wrap("""
    movq $10, %rsi
    addq $3, %rsi
    addl $4, %esi
""")
        unit, result = assert_same_semantics(source, "ADDADD")
        assert result.total("ADDADD", "folded") == 0
