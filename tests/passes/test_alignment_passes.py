"""Tests for the alignment passes: LOOP16, LSDFIT, BRALIGN (paper §III.C)."""

import pytest

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import run_unit


def hot_offset(unit, label=".Lloop"):
    layout = relax_section(unit, unit.get_section(".text"))
    return layout.symtab[label]


MISALIGNED_LOOP = """
.text
.globl main
.type main, @function
main:
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    movl $100, %ecx
.Lloop:
    addl $1, %eax
    subl $1, %ecx
    jne .Lloop
    ret
"""


class TestLoop16:
    def test_aligns_misaligned_short_loop(self):
        unit = parse_unit(MISALIGNED_LOOP)
        assert hot_offset(unit) % 16 != 0
        result = run_passes(unit, "LOOP16")
        assert result.total("LOOP16", "aligned") == 1
        assert hot_offset(unit) % 16 == 0

    def test_skips_already_aligned_loop(self):
        source = MISALIGNED_LOOP.replace(".Lloop:",
                                         "    .p2align 4\n.Lloop:")
        unit = parse_unit(source)
        result = run_passes(unit, "LOOP16")
        assert result.total("LOOP16", "aligned") == 0

    def test_skips_big_loops(self):
        body = "".join("    addl $%d, %%eax\n" % i for i in range(40))
        source = MISALIGNED_LOOP.replace("    addl $1, %eax\n", body)
        unit = parse_unit(source)
        result = run_passes(unit, "LOOP16=max_size[64]")
        assert result.total("LOOP16", "aligned") == 0

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(MISALIGNED_LOOP))
        unit = parse_unit(MISALIGNED_LOOP)
        run_passes(unit, "LOOP16")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]

    def test_inserts_p2align_directive(self):
        unit = parse_unit(MISALIGNED_LOOP)
        run_passes(unit, "LOOP16")
        assert ".p2align\t4" in unit.to_asm() \
            or ".p2align 4" in unit.to_asm()


class TestLsdFit:
    def wide_loop(self, misalign):
        pre = "\n".join("    nop" for _ in range(misalign))
        body = "\n".join("    addl $%d, %%eax" % i for i in range(18))
        return f"""
.text
.globl main
.type main, @function
main:
    .p2align 4
{pre}
    movl $100, %ecx
.Lloop:
{body}
    subl $1, %ecx
    jne .Lloop
    ret
"""

    def test_shifts_loop_into_budget(self):
        # 18 x 3-byte adds + sub + jne = 60 bytes: fits 4 lines only when
        # placed well; at a bad offset it spans 5.
        source = self.wide_loop(17)   # .Lloop lands misaligned
        unit = parse_unit(source)
        layout = relax_section(unit, unit.get_section(".text"))
        start = layout.symtab[".Lloop"]
        result = run_passes(unit, "LSDFIT")
        if result.total("LSDFIT", "loops_shifted"):
            new_layout = relax_section(unit, unit.get_section(".text"))
            new_start = new_layout.symtab[".Lloop"]
            assert new_start != start
            assert result.total("LSDFIT", "nops_inserted") > 0

    def test_semantics_preserved(self):
        source = self.wide_loop(17)
        before = run_unit(parse_unit(source))
        unit = parse_unit(source)
        run_passes(unit, "LSDFIT")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]

    def test_oversized_loops_skipped(self):
        body = "\n".join("    addl $%d, %%eax" % i for i in range(40))
        source = f"""
.text
main:
    movl $10, %ecx
.Lloop:
{body}
    subl $1, %ecx
    jne .Lloop
    ret
"""
        unit = parse_unit(source)
        result = run_passes(unit, "LSDFIT")
        assert result.total("LSDFIT", "loops_shifted") == 0


class TestBranchAlign:
    ALIASED = """
.text
.globl main
.type main, @function
main:
    movl $50, %eax
.Louter:
    movl $1, %ecx
.Lc1:
    subl $1, %ecx
    jne .Lc1
    movl $1, %edx
.Lc2:
    subl $1, %edx
    jne .Lc2
    subl $1, %eax
    jne .Louter
    ret
"""

    def _branch_buckets(self, unit, shift=5):
        layout = relax_section(unit, unit.get_section(".text"))
        buckets = {}
        for entry, place in layout.placement.items():
            if entry.is_instruction and entry.insn.is_cond_jump:
                label = entry.insn.branch_target_label()
                buckets[label] = place.address >> shift
        return buckets

    def test_separates_aliased_branches(self):
        unit = parse_unit(self.ALIASED)
        before = self._branch_buckets(unit)
        assert before[".Lc1"] == before[".Lc2"]   # aliased at baseline
        result = run_passes(unit, "BRALIGN=shift[5]")
        assert result.total("BRALIGN", "pairs_separated") >= 1
        after = self._branch_buckets(unit)
        assert after[".Lc1"] != after[".Lc2"]     # the hot pair is fixed

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(self.ALIASED))
        unit = parse_unit(self.ALIASED)
        run_passes(unit, "BRALIGN")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]

    def test_count_only(self):
        unit = parse_unit(self.ALIASED)
        before = unit.instruction_count()
        run_passes(unit, "BRALIGN=count_only[1]")
        assert unit.instruction_count() == before
