"""Tests for PREFALIGN — the §III.C.h pass the paper left unimplemented."""

import pytest

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import load_unit, run_unit
from repro.uarch.pipeline import simulate_trace
from repro.uarch.profiles import core2


def streaming_loop(pad):
    nops = "\n".join("    nop" for _ in range(pad))
    return f"""
.text
.globl main
main:
    leaq buf(%rip), %rdi
    movq $1500, %rbp
    xorq %r9, %r9
{nops}
.Lloop:
    movq (%rdi,%r9,8), %rdx
    addq %rdx, %rax
    addq $8, %r9
    andq $0x1fff, %r9
    subq $1, %rbp
    jne .Lloop
    ret
.section .bss
.align 64
buf:
    .zero 65536
"""


def find_aliased_pad():
    for pad in range(300):
        program = load_unit(parse_unit(streaming_loop(pad)))
        if program.symtab[".Lloop"] % 256 == 0:
            return pad
    pytest.skip("no aliased placement found")


class TestMechanism:
    def test_aliased_load_gets_no_prefetch(self):
        pad = find_aliased_pad()
        result = run_unit(parse_unit(streaming_loop(pad)),
                          collect_trace=True, max_steps=1_000_000)
        stats = simulate_trace(result.trace, core2())
        # Every streamed line misses: the prefetcher is dead for this PC.
        assert stats["L1D_MISSES"] > 1000

    def test_non_aliased_load_is_prefetched(self):
        pad = find_aliased_pad()
        result = run_unit(parse_unit(streaming_loop(pad + 1)),
                          collect_trace=True, max_steps=1_000_000)
        stats = simulate_trace(result.trace, core2())
        assert stats["L1D_MISSES"] < 50

    def test_quirk_can_be_disabled(self):
        pad = find_aliased_pad()
        model = core2()
        model.prefetch_pc_alias_stride = 0
        result = run_unit(parse_unit(streaming_loop(pad)),
                          collect_trace=True, max_steps=1_000_000)
        stats = simulate_trace(result.trace, model)
        assert stats["L1D_MISSES"] < 50


class TestPass:
    def test_moves_aliased_load(self):
        pad = find_aliased_pad()
        unit = parse_unit(streaming_loop(pad))
        result = run_passes(unit, "PREFALIGN")
        assert result.total("PREFALIGN", "loads_moved") == 1
        layout = relax_section(unit, unit.get_section(".text"))
        for entry, place in layout.placement.items():
            if entry.is_instruction and entry.insn.reads_memory:
                assert place.address % 256 != 0

    def test_fixes_the_misses(self):
        pad = find_aliased_pad()
        unit = parse_unit(streaming_loop(pad))
        run_passes(unit, "PREFALIGN")
        result = run_unit(unit, collect_trace=True, max_steps=1_000_000)
        stats = simulate_trace(result.trace, core2())
        assert stats["L1D_MISSES"] < 50

    def test_leaves_clean_code_alone(self):
        pad = find_aliased_pad()
        unit = parse_unit(streaming_loop(pad + 3))
        result = run_passes(unit, "PREFALIGN")
        assert result.total("PREFALIGN", "loads_moved") == 0

    def test_semantics_preserved(self):
        pad = find_aliased_pad()
        before = run_unit(parse_unit(streaming_loop(pad)),
                          max_steps=1_000_000)
        unit = parse_unit(streaming_loop(pad))
        run_passes(unit, "PREFALIGN")
        after = run_unit(unit, max_steps=1_000_000)
        assert before.state.gp["rax"] == after.state.gp["rax"]

    def test_count_only(self):
        pad = find_aliased_pad()
        unit = parse_unit(streaming_loop(pad))
        before = unit.instruction_count()
        result = run_passes(unit, "PREFALIGN=count_only[1]")
        assert result.total("PREFALIGN", "loads_moved") == 1
        assert unit.instruction_count() == before
