"""Tests for the EBB scheduling extension and plug-in loading."""

import textwrap

import pytest

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import run_unit

SPLIT_KERNEL = """
.text
.globl main
.type main, @function
main:
    movl $10, %ecx
.Lloop:
    imull $3, %ebx, %r10d
    addl $1, %ebx
.Lsplit:
    movl %ebx, %edx
    xorl %r10d, %edx
    subl $1, %ecx
    jne .Lloop
    movl %edx, %eax
    ret
"""


class TestEbbScheduling:
    def test_merges_unreferenced_labels(self):
        unit = parse_unit(SPLIT_KERNEL)
        result = run_passes(unit, "SCHED=ebb[1]")
        assert result.total("SCHED", "labels_merged") == 1
        assert ".Lsplit" not in unit.to_asm()

    def test_referenced_labels_kept(self):
        source = SPLIT_KERNEL.replace(
            "    movl %edx, %eax",
            "    testl %eax, %eax\n    je .Lsplit\n    movl %edx, %eax")
        unit = parse_unit(source)
        run_passes(unit, "SCHED=ebb[1]")
        assert ".Lsplit" in unit.to_asm()

    def test_can_move_across_former_boundary(self):
        unit = parse_unit(SPLIT_KERNEL)
        single = run_passes(parse_unit(SPLIT_KERNEL), "SCHED")
        extended = run_passes(unit, "SCHED=ebb[1]")
        assert extended.total("SCHED", "instructions_moved") \
            >= single.total("SCHED", "instructions_moved")

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(SPLIT_KERNEL))
        unit = parse_unit(SPLIT_KERNEL)
        run_passes(unit, "SCHED=ebb[1]")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]

    def test_loop_headers_never_merged(self):
        unit = parse_unit(SPLIT_KERNEL)
        run_passes(unit, "SCHED=ebb[1]")
        assert ".Lloop" in unit.to_asm()


class TestPlugins:
    def test_plugin_registers_pass(self, tmp_path):
        from repro.cli import load_plugin, main
        from repro.passes.manager import registered_passes

        plugin = tmp_path / "plug.py"
        plugin.write_text(textwrap.dedent("""
            from repro.passes import MaoFunctionPass
            from repro.passes.manager import register_func_pass

            @register_func_pass("TESTPLUGIN_X")
            class TestPluginPass(MaoFunctionPass):
                def Go(self):
                    self.bump("seen")
                    return True
        """))
        load_plugin(str(plugin))
        assert "TESTPLUGIN_X" in registered_passes()

        asm = tmp_path / "in.s"
        asm.write_text(".text\nf:\n    ret\n")
        assert main(["--mao=TESTPLUGIN_X", str(asm)]) == 0

    def test_plugin_flag_loads_before_spec(self, tmp_path, capsys):
        from repro.cli import main

        plugin = tmp_path / "plug2.py"
        plugin.write_text(textwrap.dedent("""
            from repro.passes import MaoFunctionPass
            from repro.passes.manager import register_func_pass

            @register_func_pass("TESTPLUGIN_Y")
            class TestPluginPass(MaoFunctionPass):
                def Go(self):
                    self.bump("seen")
                    return True
        """))
        asm = tmp_path / "in.s"
        asm.write_text(".text\nf:\n    ret\n")
        assert main(["--plugin", str(plugin), "--mao=TESTPLUGIN_Y",
                     "--stats", str(asm)]) == 0
        assert "TESTPLUGIN_Y" in capsys.readouterr().err
