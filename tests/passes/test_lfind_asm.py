"""Extra coverage for the LFIND/ASM utility passes and pass aborts."""

import pytest

from repro.ir import parse_unit
from repro.passes import MaoFunctionPass, run_passes
from repro.passes.manager import PassPipeline, register_func_pass


class TestLfind:
    def test_counts_blocks_and_loops(self):
        unit = parse_unit("""
.text
.type f, @function
f:
.Louter:
    movl $5, %ecx
.Linner:
    subl $1, %ecx
    jne .Linner
    subl $1, %eax
    jne .Louter
    ret
""")
        result = run_passes(unit, "LFIND")
        assert result.total("LFIND", "loops") == 2
        assert result.total("LFIND", "blocks") >= 3

    def test_reports_unresolved_branches(self):
        unit = parse_unit(".text\nf:\n    jmp *%rax\n")
        result = run_passes(unit, "LFIND")
        assert result.total("LFIND", "unresolved_branches") == 1

    def test_reports_irreducible(self):
        unit = parse_unit("""
.text
f:
    testl %eax, %eax
    je .Lb
.La:
    subl $1, %eax
    jmp .Lbody
.Lb:
    subl $1, %ebx
.Lbody:
    testl %ebx, %ebx
    jne .La
    ret
""")
        result = run_passes(unit, "LFIND")
        assert result.total("LFIND", "irreducible") >= 1


class TestAsm:
    def test_stdout_emission(self, capsys, tmp_path):
        unit = parse_unit(".text\nf:\n    nop\n    ret\n")
        run_passes(unit, "ASM")
        out = capsys.readouterr().out
        assert "f:" in out and "nop" in out

    def test_emitted_file_reparses_identically(self, tmp_path):
        source = """
.text
.globl f
.type f, @function
f:
    movl $5, -4(%rbp)
    movsbl 1(%rdi,%r8,4), %edx
    ret
"""
        out = tmp_path / "o.s"
        unit = parse_unit(source)
        run_passes(unit, "ASM=o[%s]" % out)
        reparsed = parse_unit(out.read_text())
        assert reparsed.to_asm() == unit.to_asm()


class TestPipelineAbort:
    def test_pass_returning_false_stops_pipeline(self):
        ran = []

        @register_func_pass("ABORTER")
        class Aborter(MaoFunctionPass):
            def Go(self):
                ran.append("abort")
                return False

        @register_func_pass("NEVER_RUNS")
        class Never(MaoFunctionPass):
            def Go(self):
                ran.append("never")
                return True

        unit = parse_unit(".text\nf:\n    ret\n")
        PassPipeline([("ABORTER", {}), ("NEVER_RUNS", {})]).run(unit)
        assert ran == ["abort"]
