"""Tests for NOPIN, NOPKILL, INSTRUMENT, PREFNTA, scalar passes (§III.D/E)."""

import pytest

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.passes.prefetch_nta import register_profile
from repro.sim import run_unit

LOOPY = """
.text
.globl main
.type main, @function
main:
    movl $20, %ecx
    .p2align 4
.Lloop:
    addl $1, %eax
    subl $1, %ecx
    jne .Lloop
    ret
"""


class TestNopinizer:
    def test_inserts_nops(self):
        unit = parse_unit(LOOPY)
        before = unit.instruction_count()
        result = run_passes(unit, "NOPIN=seed[1]+density[0.5]")
        inserted = result.total("NOPIN", "nops_inserted")
        assert inserted > 0
        assert unit.instruction_count() == before + inserted

    def test_seed_reproducibility(self):
        counts = []
        for _ in range(2):
            unit = parse_unit(LOOPY)
            result = run_passes(unit, "NOPIN=seed[7]+density[0.5]")
            counts.append(result.total("NOPIN", "nops_inserted"))
        assert counts[0] == counts[1]

    def test_different_seeds_differ(self):
        outcomes = set()
        for seed in range(8):
            unit = parse_unit(LOOPY)
            run_passes(unit, "NOPIN=seed[%d]+density[0.4]" % seed)
            outcomes.add(unit.to_asm())
        assert len(outcomes) > 1

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(LOOPY))
        unit = parse_unit(LOOPY)
        run_passes(unit, "NOPIN=seed[3]+density[0.5]+maxlen[4]")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]


class TestNopKiller:
    def test_removes_directives_and_nops(self):
        source = """
.text
.globl main
main:
    nop
    .p2align 4
    nop
    nop
    movl $1, %eax
    ret
"""
        unit = parse_unit(source)
        result = run_passes(unit, "NOPKILL")
        assert result.total("NOPKILL", "nops_removed") == 3
        assert result.total("NOPKILL", "directives_removed") == 1
        assert ".p2align" not in unit.to_asm()

    def test_code_size_shrinks(self):
        source = LOOPY
        unit = parse_unit(source)
        size_before = relax_section(unit, unit.get_section(".text")).size
        run_passes(unit, "NOPKILL")
        size_after = relax_section(unit, unit.get_section(".text")).size
        assert size_after < size_before   # the paper's ~1% size win

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(LOOPY))
        unit = parse_unit(LOOPY)
        run_passes(unit, "NOPKILL")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]


class TestInstrument:
    def test_inserts_5_byte_nops(self):
        unit = parse_unit(LOOPY)
        result = run_passes(unit, "INSTRUMENT")
        assert result.total("INSTRUMENT", "entry_points") == 1
        assert result.total("INSTRUMENT", "exit_points") == 1
        text = unit.to_asm()
        assert text.count("nopl") == 2

    def test_no_cache_line_crossing(self):
        # Push the entry nop close to a 64-byte boundary.
        filler = "\n".join("    addl $1, %%ebx  # %d" % i
                           for i in range(20))
        source = f"""
.text
.globl main
.type main, @function
main:
{filler}
    ret
"""
        unit = parse_unit(source)
        run_passes(unit, "INSTRUMENT")
        layout = relax_section(unit, unit.get_section(".text"))
        for entry, place in layout.placement.items():
            if entry.is_instruction and entry.insn.mnemonic == "nopl":
                first_line = place.address // 64
                last_line = (place.address + place.size - 1) // 64
                assert first_line == last_line

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(LOOPY))
        unit = parse_unit(LOOPY)
        run_passes(unit, "INSTRUMENT")
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"]


class TestPrefetchNta:
    STREAMING = """
.text
.globl main
.type main, @function
main:
    leaq buf(%rip), %rdi
    movl $64, %ecx
    xorq %rax, %rax
.Lloop:
    movq (%rdi,%rax,8), %rdx
    addq %rdx, %rbx
    addq $1, %rax
    subl $1, %ecx
    jne .Lloop
    ret
.section .bss
buf:
    .zero 4096
"""

    def test_inserts_prefetch_for_profiled_load(self):
        unit = parse_unit(self.STREAMING)
        load_entry = next(e for e in unit.entries()
                          if e.is_instruction and e.insn.reads_memory)
        register_profile("test-prof", {load_entry.lineno: 10000.0})
        result = run_passes(unit, "PREFNTA=profile[test-prof]")
        assert result.total("PREFNTA", "loads_marked") == 1
        assert "prefetchnta" in unit.to_asm()

    def test_threshold_respected(self):
        unit = parse_unit(self.STREAMING)
        load_entry = next(e for e in unit.entries()
                          if e.is_instruction and e.insn.reads_memory)
        register_profile("test-prof2", {load_entry.lineno: 10.0})
        result = run_passes(unit, "PREFNTA=profile[test-prof2]")
        assert result.total("PREFNTA", "loads_marked") == 0

    def test_no_profile_is_noop(self):
        unit = parse_unit(self.STREAMING)
        result = run_passes(unit, "PREFNTA")
        assert result.total("PREFNTA", "loads_marked") == 0

    def test_semantics_preserved(self):
        before = run_unit(parse_unit(self.STREAMING))
        unit = parse_unit(self.STREAMING)
        load_entry = next(e for e in unit.entries()
                          if e.is_instruction and e.insn.reads_memory)
        register_profile("test-prof3", {load_entry.lineno: 10000.0})
        run_passes(unit, "PREFNTA=profile[test-prof3]")
        after = run_unit(unit)
        assert before.state.gp["rbx"] == after.state.gp["rbx"]


class TestScalar:
    def test_unreachable_code_removed(self):
        source = """
.text
.globl main
.type main, @function
main:
    movl $1, %eax
    jmp .Ldone
.Ldead:
    movl $999, %eax
    addl $1, %ebx
.Ldone:
    ret
"""
        unit = parse_unit(source)
        result = run_passes(unit, "UNREACH")
        assert result.total("UNREACH", "blocks_removed") == 1
        assert result.total("UNREACH", "instructions_removed") == 2
        assert "999" not in unit.to_asm()

    def test_jump_table_targets_kept(self):
        source = """
.text
.type f, @function
f:
    jmp *.Ltab(,%rax,8)
.Lcase:
    ret
.section .rodata
.Ltab:
    .quad .Lcase
"""
        unit = parse_unit(source)
        result = run_passes(unit, "UNREACH")
        assert ".Lcase" in unit.to_asm()

    def test_constant_folding(self):
        source = """
.text
.globl main
main:
    movl $5, %eax
    addl $3, %eax
    ret
"""
        unit = parse_unit(source)
        before = run_unit(parse_unit(source))
        result = run_passes(unit, "CONSTFOLD")
        assert result.total("CONSTFOLD", "folded") == 1
        assert "movl $8, %eax" in unit.to_asm()
        after = run_unit(unit)
        assert before.state.gp["rax"] == after.state.gp["rax"] == 8

    def test_fold_blocked_by_live_flags(self):
        source = """
.text
.globl main
main:
    movl $5, %eax
    addl $3, %eax
    je .L
    movl $1, %ebx
.L:
    ret
"""
        unit = parse_unit(source)
        result = run_passes(unit, "CONSTFOLD")
        assert result.total("CONSTFOLD", "folded") == 0

    def test_fold_chain(self):
        source = """
.text
.globl main
main:
    movl $1, %eax
    shll $4, %eax
    xorl $0xff, %eax
    ret
"""
        unit = parse_unit(source)
        run_passes(unit, "CONSTFOLD:CONSTFOLD")
        after = run_unit(unit)
        assert after.state.gp["rax"] == (1 << 4) ^ 0xFF
