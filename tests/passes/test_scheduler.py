"""Tests for the list-scheduling pass (paper §III.F)."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.passes.scheduler import (
    DependenceDAG,
    critical_path_cost,
    list_schedule,
)
from repro.sim import run_unit
from repro.uarch.profiles import core2
from repro.workloads import kernels


def block_of(source):
    unit = parse_unit(source)
    cfg = build_cfg(unit.functions[0], unit)
    return unit, cfg.blocks[0]


class TestDependenceDAG:
    def test_raw_dependence(self):
        unit, block = block_of("""
.text
f:
    movl $1, %eax
    movl %eax, %ebx
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert 1 in dag.succs[0]

    def test_waw_dependence(self):
        unit, block = block_of("""
.text
f:
    movl $1, %eax
    movl $2, %eax
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert 1 in dag.succs[0]

    def test_war_dependence(self):
        unit, block = block_of("""
.text
f:
    movl %eax, %ebx
    movl $1, %eax
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert 1 in dag.succs[0]

    def test_independent_instructions_unordered(self):
        unit, block = block_of("""
.text
f:
    movl $1, %eax
    movl $2, %ebx
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert not dag.succs[0] and not dag.preds[1]

    def test_memory_ordering(self):
        unit, block = block_of("""
.text
f:
    movl %eax, (%rdi)
    movl (%rsi), %ebx
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert 1 in dag.succs[0]     # store then load: conservative order

    def test_loads_can_reorder(self):
        unit, block = block_of("""
.text
f:
    movl (%rdi), %eax
    movl (%rsi), %ebx
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert 1 not in dag.succs[0]

    def test_flags_dependence(self):
        unit, block = block_of("""
.text
f:
    cmpl $1, %eax
    sete %bl
    ret
""")
        dag = DependenceDAG(block.entries[:2], core2())
        assert 1 in dag.succs[0]


class TestListSchedule:
    def test_topological_validity(self):
        unit, block = block_of("""
.text
f:
    movl $1, %eax
    movl %eax, %ebx
    movl $9, %ecx
    movl %ebx, %edx
    ret
""")
        dag = DependenceDAG(block.entries[:4], core2())
        order = list_schedule(dag)
        position = {node: i for i, node in enumerate(order)}
        for i in range(4):
            for succ in dag.succs[i]:
                assert position[i] < position[succ]

    def test_critical_path_prioritized(self):
        unit, block = block_of("""
.text
f:
    movl $9, %ecx
    imull %ebx, %eax
    movl %eax, %edx
    ret
""")
        dag = DependenceDAG(block.entries[:3], core2())
        cost = critical_path_cost(dag)
        # The imul chain (latency 3 + 1) outweighs the standalone mov.
        assert cost[1] > cost[0]

    def test_schedule_is_deterministic(self):
        source = kernels.hash_bench(False)
        orders = []
        for _ in range(2):
            unit = parse_unit(source)
            run_passes(unit, "SCHED")
            orders.append(unit.to_asm())
        assert orders[0] == orders[1]


class TestSchedPass:
    def test_moves_instructions_in_hash_kernel(self):
        unit = parse_unit(kernels.hash_bench(False))
        result = run_passes(unit, "SCHED")
        assert result.total("SCHED", "instructions_moved") > 0

    def test_semantics_preserved_on_hash_kernel(self):
        source = kernels.hash_bench(False, trip=50)
        before = run_unit(parse_unit(source))
        unit = parse_unit(source)
        run_passes(unit, "SCHED")
        after = run_unit(unit)
        for group in ("rax", "rbx", "rcx", "rdx", "rdi", "r8"):
            assert before.state.gp[group] == after.state.gp[group], group

    def test_terminator_stays_last(self):
        unit = parse_unit(kernels.hash_bench(False))
        run_passes(unit, "SCHED")
        cfg = build_cfg(unit.functions[0], unit)
        for block in cfg.blocks:
            for entry in block.entries[:-1]:
                assert not entry.insn.is_control_transfer

    def test_custom_cost_function(self):
        """The paper: different heuristics plug in via the cost function."""
        from repro.passes.scheduler import ListSchedulingPass

        def source_order_cost(dag):
            return [float(len(dag.entries) - i)
                    for i in range(len(dag.entries))]

        class SourceOrderSched(ListSchedulingPass):
            cost_function = staticmethod(source_order_cost)

        unit = parse_unit(kernels.hash_bench(False))
        from repro.passes.manager import PassReport
        for function in unit.functions:
            pass_obj = SourceOrderSched({}, unit, function)
            pass_obj.Go()
            # Source order priority: nothing should move.
            assert pass_obj.stats.get("instructions_moved", 0) == 0
