"""Tests for sampling, IR annotation, and reuse-distance profiling."""

import pytest

from repro.ir import parse_unit
from repro.profiling import (
    annotate_samples,
    annotate_unit,
    collect_samples,
    reuse_distance_profile,
)
from repro.sim import run_unit

LOOP = """
.text
.globl main
.type main, @function
main:
    movl $50, %ecx
.Lloop:
    addl $1, %eax
    imull $3, %eax, %eax
    subl $1, %ecx
    jne .Lloop
    ret
"""


class TestSampling:
    def test_collect_samples(self):
        samples = collect_samples(parse_unit(LOOP), period=10)
        assert len(samples) == samples.steps // 10
        entry, snapshot = samples.samples[0]
        assert entry.is_instruction
        assert "rax" in snapshot

    def test_counts_by_entry_concentrate_in_loop(self):
        samples = collect_samples(parse_unit(LOOP), period=3)
        counts = samples.counts_by_entry()
        assert sum(counts.values()) == len(samples)
        # Hot loop instructions dominate the samples.
        assert max(counts.values()) >= len(samples) // 5


class TestAnnotation:
    def test_annotate_unit_by_address(self):
        """Paper §II: samples map to individual instructions because MAO
        has instruction sizes available."""
        from repro.sim.loader import TEXT_BASE

        unit = parse_unit(LOOP)
        program_samples = collect_samples(unit, period=7)
        # Samples arrive as absolute addresses; the annotator works on the
        # unit's own (base-0) layout, like oprofile's per-DSO offsets.
        address_counts = {}
        for entry, snapshot in program_samples.samples:
            offset = entry.insn.address - TEXT_BASE
            address_counts[offset] = address_counts.get(offset, 0) + 1
        annotations = annotate_unit(unit, address_counts)
        assert sum(annotations.values()) == len(program_samples)
        hot = max(annotations, key=annotations.get)
        assert hot.insn.base in ("add", "imul", "sub", "j")

    def test_mid_instruction_offsets_attributed(self):
        """A sample at any byte inside an instruction belongs to it."""
        unit = parse_unit(".text\nf:\n    movl $5, %eax\n    ret\n")
        function = unit.functions[0]
        # movl $5,%eax is 5 bytes at offset 0; sample lands at offset 3.
        annotations = annotate_samples(function, {3: 7})
        assert len(annotations) == 1
        entry, count = next(iter(annotations.items()))
        assert entry.insn.base == "mov"
        assert count == 7

    def test_offset_annotation_full_function(self):
        unit = parse_unit(LOOP)
        function = unit.functions[0]
        annotations = annotate_samples(function, {0: 1, 5: 2})
        assert sum(annotations.values()) == 3


class TestReuseDistance:
    STREAM_VS_HOT = """
.text
.globl main
main:
    leaq hot(%rip), %rdi
    leaq cold(%rip), %rsi
    movq $40, %rbx
    xorq %r9, %r9
.Louter:
    movq (%rdi), %rdx          # hot: same line every iteration
    movq (%rsi,%r9,8), %rcx    # cold: new line every iteration
    addq $8, %r9
    subq $1, %rbx
    jne .Louter
    ret
.section .bss
.align 64
hot:
    .zero 64
cold:
    .zero 32768
"""

    def test_distinguishes_streaming_from_hot(self):
        result = run_unit(parse_unit(self.STREAM_VS_HOT),
                          collect_trace=True)
        profile = reuse_distance_profile(result.trace)
        values = sorted(profile.values())
        assert len(values) == 2
        hot_distance, cold_distance = values
        assert hot_distance <= 4
        assert cold_distance == float("inf")

    def test_empty_trace(self):
        assert reuse_distance_profile([]) == {}
