"""Tests for edge-profile construction (paper §II future work)."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.ir import parse_unit
from repro.profiling.edges import (
    block_samples_from_trace,
    edge_profile_from_samples,
    true_edge_counts,
)
from repro.sim import run_unit

BIASED_DIAMOND = """
.text
.globl main
.type main, @function
main:
    movq $200, %rbx
.Louter:
    testq $7, %rbx
    je .Lrare            # taken 1 time in 8
    addl $1, %eax
    jmp .Ljoin
.Lrare:
    addl $100, %ecx
.Ljoin:
    subq $1, %rbx
    jne .Louter
    ret
"""


def _setup():
    unit = parse_unit(BIASED_DIAMOND)
    cfg = build_cfg(unit.functions[0], unit)
    result = run_unit(unit, collect_trace=True)
    return cfg, result.trace


class TestGroundTruth:
    def test_true_edge_counts_conserve_flow(self):
        cfg, trace = _setup()
        counts = true_edge_counts(cfg, trace)
        join = cfg.label_to_block[".Ljoin"].index
        incoming = sum(v for (s, d), v in counts.items() if d == join)
        outgoing = sum(v for (s, d), v in counts.items() if s == join)
        # Every join entry is followed by an exit except the final one.
        assert abs(incoming - outgoing) <= 1

    def test_bias_visible_in_truth(self):
        cfg, trace = _setup()
        counts = true_edge_counts(cfg, trace)
        entry = cfg.entry.index if cfg.entry.labels else None
        rare = cfg.label_to_block[".Lrare"].index
        rare_in = sum(v for (s, d), v in counts.items() if d == rare)
        total = sum(v for (s, d), v in counts.items() if d == rare
                    or (s, d) in counts and d != rare)
        assert 0 < rare_in < 60     # ~25 of 200 iterations


class TestEstimation:
    def test_profile_recovers_branch_bias(self):
        cfg, trace = _setup()
        samples = block_samples_from_trace(cfg, trace, period=3)
        profile = edge_profile_from_samples(cfg, samples)
        test_block = cfg.label_to_block[".Louter"]
        probability = profile.taken_probability(test_block)
        assert probability is not None
        # True taken (to .Lrare) rate is 1/8; the estimate must land on
        # the biased side, not 50/50.
        assert probability < 0.3

    def test_flow_conservation_approximate(self):
        cfg, trace = _setup()
        samples = block_samples_from_trace(cfg, trace, period=1)
        profile = edge_profile_from_samples(cfg, samples)
        for block in cfg.blocks:
            outgoing = sum(profile.frequency(block, s)
                           for s in block.successors if s is not cfg.exit)
            if outgoing == 0:
                continue
            weight = profile.block_weight[block.index]
            assert abs(outgoing - weight) / max(weight, 1) < 0.35

    def test_estimate_correlates_with_truth(self):
        cfg, trace = _setup()
        truth = true_edge_counts(cfg, trace)
        samples = block_samples_from_trace(cfg, trace, period=2)
        profile = edge_profile_from_samples(cfg, samples)
        # Rank correlation on shared edges: the hottest true edge must be
        # among the estimated top edges.
        hottest_true = max(truth, key=truth.get)
        top_estimated = [e for e, _ in profile.hottest_edges(4)]
        assert hottest_true in top_estimated

    def test_zero_sample_blocks_smoothed(self):
        cfg, trace = _setup()
        samples = block_samples_from_trace(cfg, trace, period=3)
        rare = cfg.label_to_block[".Lrare"].index
        samples.pop(rare, None)          # pretend sampling missed it
        profile = edge_profile_from_samples(cfg, samples)
        assert profile.block_weight[rare] > 0

    def test_empty_cfg(self):
        unit = parse_unit(".text\nf:\n    ret\n")
        cfg = build_cfg(unit.functions[0], unit)
        profile = edge_profile_from_samples(cfg, {})
        assert profile.edge_weight == {} or \
            all(v == 0 for v in profile.edge_weight.values())
