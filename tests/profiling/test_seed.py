"""Deterministic sampling: explicit seeds, and jobs-independence."""

from repro.ir import parse_unit
from repro.pgo import profile_many
from repro.profiling.sampler import collect_samples, sample_phase_for
from repro.workloads.kernels import eon_loop, fig4_loop, hash_bench


class TestSamplePhase:
    def test_none_seed_keeps_the_historical_phase_zero(self):
        assert sample_phase_for(None, 1000) == 0

    def test_phase_is_a_pure_function_of_seed_and_period(self):
        assert sample_phase_for(7, 1000) == sample_phase_for(7, 1000)
        assert sample_phase_for(7, 1000) != sample_phase_for(8, 1000) \
            or sample_phase_for(7, 500) != sample_phase_for(8, 500)

    def test_phase_stays_inside_the_period(self):
        for seed in range(50):
            assert 0 <= sample_phase_for(seed, 97) < 97

    def test_period_one_always_phase_zero(self):
        assert sample_phase_for(12345, 1) == 0


class TestSeededCollection:
    def test_same_seed_reproduces_the_sample_stream(self):
        unit = parse_unit(fig4_loop())
        first = collect_samples(unit, 37, seed=11)
        second = collect_samples(parse_unit(fig4_loop()), 37, seed=11)
        assert first.steps == second.steps
        assert len(first) == len(second)
        assert [id_counts for id_counts in first.counts_by_entry().values()] \
            == [id_counts for id_counts in second.counts_by_entry().values()]

    def test_no_seed_matches_phase_zero_byte_for_byte(self):
        unit = parse_unit(fig4_loop())
        legacy = collect_samples(unit, 37)
        seeded_zero = collect_samples(parse_unit(fig4_loop()), 37, seed=None)
        assert len(legacy) == len(seeded_zero)
        assert legacy.steps == seeded_zero.steps

    def test_different_seeds_can_shift_the_phase(self):
        phases = {sample_phase_for(seed, 1000) for seed in range(20)}
        assert len(phases) > 1


class TestJobsDeterminism:
    def test_profiles_identical_at_jobs_1_and_4(self):
        """The satellite contract: a corpus profiled with one worker and
        with four workers yields byte-identical documents."""
        inputs = [("fig4", fig4_loop()), ("eon", eon_loop()),
                  ("hash", hash_bench()), ("fig4-2", fig4_loop())]
        serial = profile_many(inputs, period=73, seed=5, jobs=1)
        parallel = profile_many(inputs, period=73, seed=5, jobs=4)
        assert serial == parallel
        assert [name for name, _, _ in serial] \
            == [name for name, _ in inputs]
        assert all(error == "" for _, _, error in serial)

    def test_process_backend_matches_thread_backend(self):
        inputs = [("fig4", fig4_loop()), ("eon", eon_loop())]
        threads = profile_many(inputs, period=73, seed=5, jobs=2,
                               parallel_backend="thread")
        processes = profile_many(inputs, period=73, seed=5, jobs=2,
                                 parallel_backend="process")
        assert threads == processes

    def test_bad_input_reports_error_without_poisoning_the_rest(self):
        results = profile_many([("ok", fig4_loop()), ("bad", "not asm ((")],
                               period=73, jobs=2)
        assert results[0][1] is not None
        assert results[1][1] is None
        assert results[1][2] != ""
