"""The unified request surface: one source-resolution convention, one
``core=`` convention, deprecation shims for the old keyword names, and
the shared ApiResult schema registry."""

import warnings

import pytest

from repro import api
from repro.ir import parse_unit
from repro.result import (
    iter_schemas,
    load_result,
    register_schema,
    result_type_for,
    schema_registry,
)
from repro.workloads import kernels

SOURCE = """\
.text
.globl main
main:
  movq $0, %rax
loop:
  addq $1, %rax
  cmpq $16, %rax
  jl loop
  ret
"""


class TestResolveSource:
    def test_kernel_name_matches_kernel_text(self):
        by_name = api.predict("fig4_loop", "core2")
        by_text = api.predict(kernels.fig4_loop(), "core2")
        assert by_name.cycles == by_text.cycles

    def test_workload_keyword_accepts_name_and_callable(self):
        by_name = api.predict(workload="fig4_loop", core="core2")
        by_callable = api.predict(workload=kernels.fig4_loop,
                                  core="core2")
        assert by_name.cycles == by_callable.cycles

    def test_unit_passes_through_unparsed(self):
        unit = api.optimize(SOURCE, "LOOP16").unit
        result = api.predict(unit, "core2")
        assert result.cycles == api.predict(unit.to_asm(), "core2").cycles

    def test_source_and_workload_together_rejected(self):
        with pytest.raises(ValueError):
            api.predict(SOURCE, "core2", workload="fig4_loop")

    def test_missing_source_rejected(self):
        with pytest.raises(ValueError):
            api.optimize()

    def test_unknown_workload_name_rejected(self):
        with pytest.raises(ValueError):
            api.predict(workload="not_a_kernel", core="core2")

    def test_non_kernel_identifier_treated_as_source(self):
        """A bare identifier that is NOT a kernel factory falls through
        to the parser instead of silently resolving to nothing."""
        with pytest.raises(Exception):
            api.predict("source_sha256", "core2")   # helper, not a kernel

    def test_missing_core_is_a_type_error(self):
        with pytest.raises(TypeError):
            api.predict(SOURCE)
        with pytest.raises(TypeError):
            api.simulate(SOURCE)
        with pytest.raises(TypeError):
            api.tune(SOURCE)

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            api.predict(SOURCE, "z80")


class TestDeprecatedKeywords:
    def test_optimize_src_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="src="):
            shimmed = api.optimize(src=SOURCE, spec="LOOP16")
        assert shimmed.to_asm() == api.optimize(SOURCE, "LOOP16").to_asm()

    def test_predict_src_or_unit_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="src_or_unit="):
            shimmed = api.predict(src_or_unit=SOURCE, core="core2")
        assert shimmed.cycles == api.predict(SOURCE, "core2").cycles

    def test_simulate_src_or_unit_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="src_or_unit="):
            shimmed = api.simulate(src_or_unit=SOURCE, core="core2")
        assert shimmed.cycles == api.simulate(SOURCE, "core2").cycles

    def test_verify_src_or_result_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="src_or_result="):
            api.verify(src_or_result=SOURCE)

    def test_both_new_and_old_keyword_is_an_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                api.optimize(SOURCE, src=SOURCE)
            with pytest.raises(TypeError):
                api.predict(SOURCE, "core2", src_or_unit=SOURCE)

    def test_new_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.optimize(SOURCE, "LOOP16")
            api.predict(SOURCE, "core2")


class TestSchemaRegistry:
    def test_full_surface_registers_every_schema(self):
        # Importing the surface modules is all registration takes.
        import repro.batch.cache     # noqa: F401
        import repro.batch.engine    # noqa: F401
        import repro.obs.span        # noqa: F401
        import repro.passes.manager  # noqa: F401
        import repro.server.app      # noqa: F401
        import repro.server.fleet    # noqa: F401
        import repro.tune            # noqa: F401
        import repro.uarch.static_model  # noqa: F401

        registry = schema_registry()
        for label, schema in (
                ("optimize", "pymao.optimize/1"),
                ("sim", "pymao.sim/1"),
                ("tune", "pymao.tune/1"),
                ("batch", "pymao.batch/1"),
                ("predict", "pymao.predict/1"),
                ("pipeline", "pymao.pipeline/1"),
                ("artifact", "pymao.artifact/1"),
                ("trace", "pymao.trace/1"),
                ("server", "pymao.server/1"),
                ("fleet", "pymao.fleet/1"),
                ("bench-tune", "mao-bench-tune/1"),
                ("bench-predict", "mao-bench-predict/1")):
            assert registry.get(label) == schema

    def test_iter_schemas_sorted_by_label(self):
        labels = [label for label, _ in iter_schemas()]
        assert labels == sorted(labels)

    def test_label_collision_with_different_schema_rejected(self):
        register_schema("collision-probe", "pymao.collision/1")
        # Idempotent for the identical pair...
        register_schema("collision-probe", "pymao.collision/1")
        # ...an error for a different schema under the same label.
        with pytest.raises(ValueError):
            register_schema("collision-probe", "pymao.collision/2")

    def test_load_result_dispatches_on_schema(self):
        doc = api.optimize(SOURCE, "LOOP16").to_dict()
        rebuilt = load_result(doc)
        assert isinstance(rebuilt, api.OptimizeResult)
        assert rebuilt.to_dict() == doc

    def test_load_result_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            load_result({"schema": "pymao.nope/1"})
        with pytest.raises(ValueError):
            load_result("not a dict")

    def test_result_type_for_maps_result_object_schemas(self):
        assert result_type_for("pymao.optimize/1") is api.OptimizeResult
        assert result_type_for("pymao.sim/1") is api.SimResult
        # Document-only schemas register a label but no result type.
        assert result_type_for("pymao.trace/1") is None


class TestResultRoundTrips:
    def test_optimize_result_round_trip(self):
        result = api.optimize(SOURCE, "REDTEST:LOOP16")
        doc = result.to_dict()
        assert doc["schema"] == "pymao.optimize/1"
        rebuilt = api.OptimizeResult.from_dict(doc)
        assert rebuilt.to_asm() == result.to_asm()
        assert rebuilt.to_dict() == doc

    def test_sim_result_round_trip(self):
        result = api.simulate(SOURCE, "core2")
        doc = result.to_dict()
        assert doc["schema"] == "pymao.sim/1"
        rebuilt = api.SimResult.from_dict(doc)
        assert rebuilt.cycles == result.cycles
        assert rebuilt.counters == result.counters
        assert rebuilt.to_dict() == doc

    def test_batch_result_round_trip(self):
        batch = api.optimize_many(
            [("a.s", SOURCE), ("b.s", SOURCE + "# b\n")], "LOOP16")
        doc = batch.to_dict()
        assert doc["schema"] == "pymao.batch/1"
        from repro.batch.engine import BatchResult
        rebuilt = BatchResult.from_dict(doc)
        assert rebuilt.to_dict() == doc

    def test_wrong_schema_rejected_by_each_result(self):
        with pytest.raises(ValueError):
            api.OptimizeResult.from_dict({"schema": "pymao.sim/1"})
        with pytest.raises(ValueError):
            api.SimResult.from_dict({"schema": "pymao.optimize/1"})

    def test_unit_round_trips_through_parse(self):
        unit = parse_unit(SOURCE)
        assert parse_unit(unit.to_asm()).to_asm() == unit.to_asm()
